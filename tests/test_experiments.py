"""Tests of the parallel experiment-sweep subsystem (PR 2 tentpole)."""

import json
import math
import os

import pytest

from repro.engine.errors import ConfigurationError, ExperimentError
from repro.experiments import (
    BudgetPolicy,
    SweepRunner,
    SweepSpec,
    build_document,
    builtin_names,
    builtin_specs,
    completed_cell_ids,
    execute_cell,
    fit_power_law,
    load_document,
    merge_cells,
    resolve_builtin,
    resolve_protocol,
    sample_stats,
    sweep_json_path,
    write_sweep,
)
from repro.experiments.cli import main as sweep_main


def _tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        protocol="one-way-epidemic",
        ns=[8, 16],
        seeds_per_cell=2,
        backend="batch",
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


# ---------------------------------------------------------------------- spec
def test_spec_json_round_trip():
    spec = _tiny_spec(param_grid={"source_count": [1, 2]}, description="round trip")
    clone = SweepSpec.from_json(spec.to_json())
    assert clone.to_dict() == spec.to_dict()
    assert [cell.cell_id for cell in clone.cells()] == [
        cell.cell_id for cell in spec.cells()
    ]


def test_spec_validation_errors():
    with pytest.raises(ConfigurationError):
        _tiny_spec(protocol="no-such-protocol")
    with pytest.raises(ConfigurationError):
        _tiny_spec(ns=[])
    with pytest.raises(ConfigurationError):
        _tiny_spec(backend="gpu")
    with pytest.raises(ConfigurationError):
        _tiny_spec(seeds_per_cell=0)
    with pytest.raises(ConfigurationError):
        SweepSpec.from_dict({"name": "x", "protocol": "one-way-epidemic", "ns": [8], "bogus": 1})
    with pytest.raises(ConfigurationError):
        SweepSpec.from_json("{not json")


def test_cell_seeds_are_deterministic_and_distinct():
    spec = _tiny_spec()
    cells_a = spec.cells()
    cells_b = _tiny_spec().cells()
    assert [cell.seeds for cell in cells_a] == [cell.seeds for cell in cells_b]
    all_seeds = [seed for cell in cells_a for seed in cell.seeds]
    assert len(set(all_seeds)) == len(all_seeds)
    reseeded = _tiny_spec(base_seed=1).cells()
    assert [cell.seeds for cell in reseeded] != [cell.seeds for cell in cells_a]


def test_param_grid_expands_cartesian_product():
    spec = _tiny_spec(param_grid={"source_count": [1, 2, 3]})
    cells = spec.cells()
    assert len(cells) == 3 * len(spec.ns)
    assert len({cell.cell_id for cell in cells}) == len(cells)
    assert {cell.params["source_count"] for cell in cells} == {1, 2, 3}


def test_budget_policy_and_check_interval():
    policy = BudgetPolicy(factor=2.0, n_exponent=2.0, log_exponent=0.0)
    assert policy.budget(100) == 20_000
    spec = _tiny_spec(budget=policy, max_checks=10)
    # The cadence is stretched so a run never makes more than max_checks checks.
    assert spec.check_interval(100) == 2_000


# ----------------------------------------------------------------- aggregate
def test_sample_stats_quantiles():
    stats = sample_stats([1, 2, 3, 4, 5])
    assert stats["count"] == 5
    assert stats["mean"] == 3
    assert stats["median"] == 3
    assert stats["min"] == 1 and stats["max"] == 5
    assert sample_stats([]) is None


def test_fit_power_law_recovers_exact_exponent():
    points = [(n, 3.0 * n**2) for n in (100, 1_000, 10_000)]
    fit = fit_power_law(points)
    assert abs(fit["exponent"] - 2.0) < 1e-9
    assert abs(fit["coefficient"] - 3.0) < 1e-6
    assert fit["r_squared"] > 0.999999
    assert fit_power_law([(100, 5.0)]) is None  # one size cannot be fitted


# -------------------------------------------------------------------- runner
def test_execute_cell_runs_and_summarises():
    spec = _tiny_spec()
    cell = spec.cells()[0]
    from repro.experiments.runner import cell_payload

    record = execute_cell(cell_payload(spec, cell))
    assert record["error"] is None
    assert len(record["runs"]) == spec.seeds_per_cell
    assert record["stats"]["converged_runs"] == spec.seeds_per_cell
    assert record["stats"]["convergence_interactions"]["mean"] > 0


def test_execute_cell_captures_failures_per_cell():
    spec = _tiny_spec()
    cell = spec.cells()[0]
    from repro.experiments.runner import cell_payload

    payload = cell_payload(spec, cell)
    payload["backend"] = "gpu"  # force a ConfigurationError inside the worker
    record = execute_cell(payload)
    assert record["error"] is not None and "gpu" in record["error"]
    assert record["runs"] == []


def test_runner_serial_and_parallel_agree_on_results():
    spec = _tiny_spec()
    serial = SweepRunner(spec, workers=1).run()
    parallel = SweepRunner(spec, workers=2).run()
    assert [record["cell_id"] for record in serial] == [
        record["cell_id"] for record in parallel
    ]
    # Same derived seeds -> identical run summaries, no matter the strategy.
    strip = lambda records: [
        [{k: run[k] for k in ("seed", "interactions", "converged")} for run in record["runs"]]
        for record in records
    ]
    assert strip(serial) == strip(parallel)


# ----------------------------------------------------------------- artifacts
def test_artifact_write_load_resume_cycle(tmp_path):
    spec = _tiny_spec()
    records = SweepRunner(spec, workers=1).run()
    document = build_document(spec, records, workers=1)
    paths = write_sweep(document, str(tmp_path), spec)
    assert os.path.exists(paths["json"]) and os.path.exists(paths["csv"])

    loaded = load_document(paths["json"])
    assert loaded["name"] == spec.name
    assert completed_cell_ids(loaded, spec) == {cell.cell_id for cell in spec.cells()}

    # Raising seeds_per_cell invalidates every resumed cell.
    widened = _tiny_spec(seeds_per_cell=3)
    assert completed_cell_ids(loaded, widened) == set()

    # merge_cells prefers fresh records and keeps grid order.
    fresh = [dict(records[0], wall_time_s=123.0)]
    merged = merge_cells(loaded, fresh, spec)
    assert [cell["cell_id"] for cell in merged] == [cell.cell_id for cell in spec.cells()]
    assert merged[0]["wall_time_s"] == 123.0


def test_merge_cells_keeps_previous_success_over_fresh_failure():
    spec = _tiny_spec()
    cells = spec.cells()

    def record(cell, error=None):
        return {
            "cell_id": cell.cell_id,
            "seeds": list(cell.seeds),
            "runs": [] if error else [{"seed": seed} for seed in cell.seeds],
            "stats": None if error else {},
            "error": error,
        }

    previous = {"cells": [record(cell) for cell in cells]}
    # A transient re-run failure must not downgrade a complete success ...
    merged = merge_cells(previous, [record(cells[0], error="worker lost")], spec)
    assert merged[0]["error"] is None
    assert merged[0]["runs"]
    # ... but a fresh success still wins over the previous record,
    fresh_ok = dict(record(cells[0]), marker=True)
    assert merge_cells(previous, [fresh_ok], spec)[0]["marker"] is True
    # and a fresh failure does replace a previously *failed* cell.
    broken_previous = {"cells": [record(cells[0], error="old")]}
    merged = merge_cells(broken_previous, [record(cells[0], error="new")], spec)
    assert merged[0]["error"] == "new"


def test_documents_from_other_code_versions_are_stale():
    from repro.fingerprint import code_fingerprint, spec_sha256

    spec = _tiny_spec()
    records = SweepRunner(spec, workers=1).run()
    document = build_document(spec, records, workers=1)
    assert document["code_fingerprint"] == code_fingerprint()
    assert document["spec_sha256"] == spec_sha256(spec.to_dict())

    # A matching stamp resumes; any other stamp invalidates everything.
    assert completed_cell_ids(document, spec)
    foreign = dict(document, code_fingerprint="0.0.0+000000000000")
    assert completed_cell_ids(foreign, spec) == set()
    assert merge_cells(foreign, [], spec) == []
    # Pre-stamp documents (no field) are still accepted.
    unstamped = {key: value for key, value in document.items() if key != "code_fingerprint"}
    assert completed_cell_ids(unstamped, spec)


def test_load_document_rejects_foreign_json(tmp_path):
    path = tmp_path / "SWEEP_bogus.json"
    path.write_text('{"hello": 1}')
    with pytest.raises(ExperimentError):
        load_document(str(path))
    assert load_document(str(tmp_path / "missing.json")) is None


def test_sweep_fits_appear_in_document():
    spec = _tiny_spec(ns=[8, 16, 32])
    records = SweepRunner(spec, workers=1).run()
    document = build_document(spec, records, workers=1)
    fit = document["fits"]["convergence_interactions"]
    assert fit is not None and fit["points"] == 3
    # The epidemic completes in O(n log n): the exponent sits near 1.
    assert 0.5 < fit["exponent"] < 2.0


# ---------------------------------------------------------------------- CLI
def test_cli_smoke_and_resume(tmp_path, capsys):
    assert sweep_main(["--smoke", "--workers", "1", "--output-dir", str(tmp_path), "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "scaling fit" in out and "SWEEP_counting-smoke.json" in out

    # Second invocation resumes every cell without re-running anything.
    assert sweep_main(
        ["--smoke", "--workers", "1", "--output-dir", str(tmp_path), "--quiet", "--resume"]
    ) == 0
    out = capsys.readouterr().out
    assert "0 run now, 2 resumed" in out


def test_cli_list_and_dump(capsys):
    assert sweep_main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in builtin_names():
        assert name in out
    assert sweep_main(["--dump-spec", "counting-curve"]) == 0
    dumped = json.loads(capsys.readouterr().out)
    assert SweepSpec.from_dict(dumped).name == "counting-curve"
    assert sweep_main(["--dump-spec", "nope"]) == 2


def test_cli_custom_spec_file(tmp_path):
    spec = _tiny_spec(name="custom")
    spec_path = tmp_path / "custom.json"
    spec_path.write_text(spec.to_json())
    assert sweep_main(
        ["--spec", str(spec_path), "--workers", "1", "--output-dir", str(tmp_path), "--quiet"]
    ) == 0
    document = load_document(str(tmp_path / "SWEEP_custom.json"))
    assert len(document["cells"]) == len(spec.cells())
    assert not document["failed_cells"]


# ------------------------------------------------------------------ builtins
def test_builtin_specs_are_valid_and_cover_counting():
    specs = builtin_specs()
    assert "counting-curve" in specs
    headline = specs["counting-curve"]
    assert headline.ns == [1_000, 10_000, 100_000]
    assert headline.seeds_per_cell >= 5
    assert resolve_protocol(headline.protocol).counting
    for spec in specs.values():
        assert spec.cells()  # expands without error
    with pytest.raises(ConfigurationError):
        resolve_builtin("definitely-not-a-builtin")

"""Tests of the simulation-as-a-service job server (PR 7 tentpole).

The manager tests run with ``workers=1`` — the shared pool's serial
in-process mode — so non-picklable instrumented executors can be injected
through the ``executor_overrides`` seam and lifecycle transitions are
deterministic.  The HTTP tests bind a real :class:`ReproServer` on an
ephemeral port and drive it through :class:`ReproClient`.
"""

import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.errors import ConfigurationError
from repro.experiments import BudgetPolicy, SweepRunner, SweepSpec
from repro.experiments import build_document as build_sweep_document
from repro.fingerprint import code_fingerprint, spec_sha256
from repro.scenarios import (
    DimensionSpec,
    EventSpec,
    GuaranteeSpec,
    ScenarioSpec,
    SearchSpec,
)
from repro.obs.metrics import counter_value, parse_exposition
from repro.server import (
    JobManager,
    JobNotReady,
    ReproClient,
    ResultCache,
    ServerError,
    UnknownJob,
    cache_key,
    stable_document,
)
from repro.server.app import make_server
from repro.server.cache import VOLATILE_KEYS
from repro.server.client import parse_sse


# --------------------------------------------------------------------------
# Fixtures
# --------------------------------------------------------------------------


def tiny_sweep(**overrides):
    defaults = dict(
        name="tiny-serve",
        protocol="one-way-epidemic",
        ns=[8, 16],
        seeds_per_cell=1,
        backend="batch",
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def tiny_scenario(**overrides):
    defaults = dict(
        name="tiny-serve-chaos",
        protocol="one-way-epidemic",
        ns=[16],
        backends=["batch"],
        seeds_per_cell=1,
        events=[
            EventSpec(
                kind="leave",
                fraction=0.25,
                at=BudgetPolicy(factor=4.0, n_exponent=1.0, log_exponent=1.0),
            )
        ],
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def tiny_search(**overrides):
    defaults = dict(
        name="tiny-serve-search",
        scenario=tiny_scenario(name="tiny-serve-search-base"),
        dimensions=[
            DimensionSpec(event=0, dimension="fraction", low=0.1, high=0.9)
        ],
        guarantee=GuaranteeSpec(kind="recovered"),
        strategy="bisect",
        seeds_per_probe=1,
        tolerance=0.1,
    )
    defaults.update(overrides)
    return SearchSpec(**defaults)


def oracle_search_executor(breaks_above=0.5):
    """A fake scenario-cell executor: runs converge below the threshold."""

    def execute(payload):
        value = payload["spec"]["events"][0]["fraction"]
        broken = value > breaks_above
        runs = [
            {
                "seed": seed,
                "converged": not broken,
                "post_accuracy": 0.0 if broken else 1.0,
                "stopped_reason": "budget" if broken else "converged",
                "interactions": 100,
            }
            for seed in payload["seeds"]
        ]
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": runs,
            "stats": None,
            "error": None,
            "wall_time_s": 0.0,
        }

    return execute


def wait_terminal(manager, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while True:
        status = manager.status(job_id)
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        assert time.monotonic() < deadline, f"job {job_id} stuck: {status}"
        time.sleep(0.02)


@pytest.fixture
def manager():
    mgr = JobManager(workers=1)
    yield mgr
    mgr.close()


# --------------------------------------------------------------------------
# Cache key and stable projection
# --------------------------------------------------------------------------


def test_cache_key_is_deterministic_and_content_addressed():
    payload = {"cell_id": "c", "n": 8, "seeds": [1, 2]}
    assert cache_key(payload) == cache_key(dict(payload))
    assert cache_key(payload) != cache_key({**payload, "n": 16})
    assert cache_key(payload, "v1") != cache_key(payload, "v2")
    assert cache_key(payload) == cache_key(payload, code_fingerprint())


def test_stable_document_strips_volatile_keys_recursively():
    document = {
        "generated_unix": 123,
        "workers": 8,
        "cells": [
            {"cell_id": "a", "wall_time_s": 1.5, "runs": [{"wall_time_s": 0.2}]}
        ],
    }
    stable = stable_document(document)
    assert "generated_unix" not in stable
    assert "workers" not in stable
    assert "wall_time_s" not in stable["cells"][0]
    assert stable["cells"][0]["runs"] == [{}]
    # The original is untouched.
    assert document["cells"][0]["wall_time_s"] == 1.5
    assert VOLATILE_KEYS == {"generated_unix", "workers", "wall_time_s"}


# --------------------------------------------------------------------------
# ResultCache
# --------------------------------------------------------------------------


def test_result_cache_round_trip_isolates_stored_records():
    cache = ResultCache()
    record = {"cell_id": "a", "error": None, "stats": {"runs": 2}}
    assert cache.put("k", record)
    record["stats"]["runs"] = 99  # caller mutation must not reach the cache
    first = cache.get("k")
    assert first["stats"]["runs"] == 2
    first["stats"]["runs"] = 77  # nor must mutating a served copy
    assert cache.get("k")["stats"]["runs"] == 2


def test_result_cache_refuses_failed_records():
    cache = ResultCache()
    assert not cache.put("k", {"cell_id": "a", "error": "boom"})
    assert not cache.put("k", {})
    assert cache.get("k") is None
    assert cache.stats()["entries"] == 0


def test_result_cache_evicts_least_recently_used():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"cell_id": "a"})
    cache.put("b", {"cell_id": "b"})
    assert cache.get("a") is not None  # refresh "a"; "b" is now LRU
    cache.put("c", {"cell_id": "c"})
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None
    assert cache.stats()["evictions"] == 1


def test_result_cache_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        ResultCache(max_entries=0)


# --------------------------------------------------------------------------
# JobManager lifecycle
# --------------------------------------------------------------------------


def test_sweep_job_lifecycle_then_full_cache_hit(manager):
    spec = tiny_sweep()
    first = manager.submit("sweep", spec.to_dict())
    assert first["state"] in ("queued", "running", "done")
    status = wait_terminal(manager, first["job_id"])
    assert status["state"] == "done"
    assert status["progress"]["executed_cells"] == 2
    assert status["progress"]["cached_cells"] == 0
    assert status["progress"]["failed_cells"] == []
    artifact = manager.artifact(first["job_id"])
    assert artifact["code_fingerprint"] == code_fingerprint()
    assert artifact["spec_sha256"] == spec_sha256(spec.to_dict())
    assert [cell["cell_id"] for cell in artifact["cells"]] == [
        cell.cell_id for cell in spec.cells()
    ]

    second = manager.submit("sweep", spec.to_dict())
    status = wait_terminal(manager, second["job_id"])
    assert status["state"] == "done"
    assert status["progress"]["cached_cells"] == 2
    assert status["progress"]["executed_cells"] == 0
    assert set(status["progress"]["cells"].values()) == {"cached"}
    again = manager.artifact(second["job_id"])
    assert stable_document(again) == stable_document(artifact)
    stats = manager.cache.stats()
    assert stats["hits"] == 2 and stats["puts"] == 2


def test_served_sweep_matches_inline_runner_document(manager):
    spec = tiny_sweep(name="tiny-serve-equiv")
    job = manager.submit("sweep", spec.to_dict())
    wait_terminal(manager, job["job_id"])
    served = manager.artifact(job["job_id"])
    cells = SweepRunner(spec, workers=1).run()
    inline = build_sweep_document(spec, cells, workers=1)
    assert stable_document(served) == stable_document(inline)


def test_scenario_job_lifecycle(manager):
    spec = tiny_scenario()
    job = manager.submit("scenario", spec.to_dict())
    status = wait_terminal(manager, job["job_id"])
    assert status["state"] == "done"
    artifact = manager.artifact(job["job_id"])
    assert artifact["spec"] == spec.to_dict()
    assert artifact["code_fingerprint"] == code_fingerprint()
    assert len(artifact["cells"]) == 1
    assert artifact["cells"][0]["error"] is None


def test_search_job_reuses_probe_cache_across_jobs():
    manager = JobManager(
        workers=1,
        executor_overrides={"search": oracle_search_executor(breaks_above=0.5)},
    )
    try:
        spec = tiny_search()
        first = manager.submit("search", spec.to_dict())
        status = wait_terminal(manager, first["job_id"])
        assert status["state"] == "done", status["error"]
        assert status["progress"]["executed_cells"] > 0
        artifact = manager.artifact(first["job_id"])
        assert artifact["result"]["critical"] == pytest.approx(0.5, abs=0.1)

        second = manager.submit("search", spec.to_dict())
        status = wait_terminal(manager, second["job_id"])
        assert status["state"] == "done", status["error"]
        # Every probe of the identical search replays from the cache.
        assert status["progress"]["cached_cells"] == len(artifact["history"])
        assert status["progress"]["executed_cells"] == 0
        again = manager.artifact(second["job_id"])
        assert stable_document(again) == stable_document(artifact)
    finally:
        manager.close()


def test_submit_rejects_unknown_kind_and_invalid_spec(manager):
    with pytest.raises(ConfigurationError, match="unknown job kind"):
        manager.submit("bake", {"name": "x"})
    with pytest.raises(ConfigurationError):
        manager.submit("sweep", {"name": "x", "protocol": "no-such", "ns": [8]})
    with pytest.raises(ConfigurationError):
        manager.submit("sweep", "not-a-dict")
    # Nothing was enqueued by the rejected submissions.
    assert manager.jobs() == []


def test_unknown_job_and_artifact_not_ready(manager):
    with pytest.raises(UnknownJob):
        manager.status("nope")
    with pytest.raises(UnknownJob):
        manager.artifact("nope")
    with pytest.raises(UnknownJob):
        manager.cancel("nope")
    job = manager.submit("sweep", tiny_sweep().to_dict())
    wait_terminal(manager, job["job_id"])
    assert manager.artifact(job["job_id"])["spec"]["name"] == "tiny-serve"


def test_cancel_queued_job_is_immediate_and_running_job_stops_at_boundary():
    started = threading.Event()
    release = threading.Event()

    def gated(payload):
        started.set()
        assert release.wait(timeout=60)
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": [{"seed": seed, "converged": True} for seed in payload["seeds"]],
            "stats": {},
            "error": None,
            "wall_time_s": 0.0,
        }

    manager = JobManager(
        workers=1, max_inflight=1, executor_overrides={"sweep": gated}
    )
    try:
        spec = tiny_sweep()
        running = manager.submit("sweep", spec.to_dict())
        assert started.wait(timeout=30)
        queued = manager.submit("sweep", tiny_sweep(name="tiny-serve-b").to_dict())

        verdict = manager.cancel(queued["job_id"])
        assert verdict == {
            "job_id": queued["job_id"],
            "state": "cancelled",
            "cancelled": True,
        }
        assert manager.status(queued["job_id"])["state"] == "cancelled"

        # Cancel the running job: it stops after the in-flight cell, so the
        # second cell of its two-cell grid never runs.
        manager.cancel(running["job_id"])
        release.set()
        status = wait_terminal(manager, running["job_id"])
        assert status["state"] == "cancelled"
        assert status["progress"]["completed_cells"] <= 1
        with pytest.raises(JobNotReady):
            manager.artifact(running["job_id"])
        # Cancelling a finished job is a no-op.
        assert manager.cancel(queued["job_id"])["cancelled"] is False
    finally:
        release.set()
        manager.close()


def test_fresh_failure_does_not_displace_cached_success():
    calls = {"count": 0}

    def flaky(payload):
        calls["count"] += 1
        record = {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": [{"seed": seed, "converged": True} for seed in payload["seeds"]],
            "stats": {},
            "error": None,
            "wall_time_s": 0.0,
        }
        if calls["count"] > 2:
            record["error"] = "transient crash"
            record["runs"] = []
        return record

    manager = JobManager(workers=1, executor_overrides={"sweep": flaky})
    try:
        spec = tiny_sweep()
        first = manager.submit("sweep", spec.to_dict())
        assert wait_terminal(manager, first["job_id"])["state"] == "done"
        # Identical resubmission: both cells are cache hits, the flaky
        # executor is never consulted again, and nothing fails.
        second = manager.submit("sweep", spec.to_dict())
        status = wait_terminal(manager, second["job_id"])
        assert status["state"] == "done"
        assert status["progress"]["failed_cells"] == []
        assert calls["count"] == 2
    finally:
        manager.close()


def test_concurrent_submissions_all_complete(manager):
    ids = [
        manager.submit("sweep", tiny_sweep(name=f"tiny-serve-{index}").to_dict())[
            "job_id"
        ]
        for index in range(3)
    ]
    assert len(set(ids)) == 3
    for job_id in ids:
        assert wait_terminal(manager, job_id)["state"] == "done"
    listed = [status["job_id"] for status in manager.jobs()]
    assert listed == ids  # submission order is preserved
    counts = manager.counts()
    assert counts["done"] == 3 and counts["failed"] == 0


# --------------------------------------------------------------------------
# HTTP layer
# --------------------------------------------------------------------------


@pytest.fixture
def http_server():
    mgr = JobManager(workers=1)
    server = make_server("127.0.0.1", 0, mgr)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield ReproClient(f"http://{host}:{port}", timeout_s=30.0)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    mgr.close()


def test_http_end_to_end_lifecycle(http_server):
    client = http_server
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["code_fingerprint"] == code_fingerprint()

    spec = tiny_sweep(name="tiny-http")
    submitted = client.submit("sweep", spec.to_dict())
    assert submitted["kind"] == "sweep"
    status = client.wait(submitted["job_id"], timeout_s=120.0)
    assert status["state"] == "done"
    artifact = client.artifact(submitted["job_id"])
    assert artifact["spec"] == spec.to_dict()
    assert [job["job_id"] for job in client.jobs()] == [submitted["job_id"]]

    # The one-shot helper resolves entirely from the cache the second time.
    again = client.run("sweep", spec.to_dict(), timeout_s=120.0)
    assert stable_document(again) == stable_document(artifact)
    stats = client.cache_stats()
    assert stats["hits"] >= len(spec.cells())


def test_http_error_codes(http_server):
    client = http_server
    with pytest.raises(ServerError) as excinfo:
        client.submit("bake", {"name": "x"})
    assert excinfo.value.status == 400
    with pytest.raises(ServerError) as excinfo:
        client.submit("sweep", {"name": "x", "protocol": "no-such", "ns": [8]})
    assert excinfo.value.status == 400 and "no-such" in excinfo.value.message
    with pytest.raises(ServerError) as excinfo:
        client.status("missing-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        client.artifact("missing-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        client.cancel("missing-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServerError) as excinfo:
        client._request("GET", "/no/such/route")
    assert excinfo.value.status == 404

    # Malformed bodies: not JSON, and JSON that is not an object.
    for raw in (b"{not json", b"[1, 2]"):
        request = urllib.request.Request(
            f"{client.base_url}/jobs",
            data=raw,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


def test_http_artifact_conflict_while_unfinished():
    started = threading.Event()
    release = threading.Event()

    def gated(payload):
        started.set()
        assert release.wait(timeout=60)
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": [{"seed": seed} for seed in payload["seeds"]],
            "stats": {},
            "error": None,
            "wall_time_s": 0.0,
        }

    mgr = JobManager(workers=1, executor_overrides={"sweep": gated})
    server = make_server("127.0.0.1", 0, mgr)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ReproClient(f"http://{host}:{port}")
    try:
        job = client.submit("sweep", tiny_sweep(name="tiny-409").to_dict())
        assert started.wait(timeout=30)
        with pytest.raises(ServerError) as excinfo:
            client.artifact(job["job_id"])
        assert excinfo.value.status == 409
        cancelled = client.cancel(job["job_id"])
        assert cancelled["cancelled"] is True
        release.set()
        status = client.wait(job["job_id"], timeout_s=60.0)
        assert status["state"] == "cancelled"
        with pytest.raises(ServerError) as excinfo:
            client.artifact(job["job_id"])
        assert excinfo.value.status == 409  # cancelled jobs have no artifact
    finally:
        release.set()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        mgr.close()


# --------------------------------------------------------------------------
# Job event log (SSE source of truth)
# --------------------------------------------------------------------------


def test_job_event_log_is_replayable_ordered_and_end_terminated(manager):
    spec = tiny_sweep(name="tiny-events")
    job = manager.submit("sweep", spec.to_dict())
    wait_terminal(manager, job["job_id"])
    events, ended = manager.events_after(job["job_id"], -1)
    assert ended
    # seq == index: the log is append-only and replayable from any point.
    assert [event["seq"] for event in events] == list(range(len(events)))
    assert events[0]["event"] == "job"
    assert events[0]["data"]["state"] == "queued"
    cell_events = [event for event in events if event["event"] == "cell"]
    assert len(cell_events) == len(spec.cells())
    assert {event["data"]["cell_id"] for event in cell_events} == {
        cell.cell_id for cell in spec.cells()
    }
    assert [event["event"] for event in events].count("end") == 1
    assert events[-1]["event"] == "end"
    assert events[-1]["data"]["state"] == "done"
    # Resuming from the middle yields exactly the tail.
    tail, ended = manager.events_after(job["job_id"], events[1]["seq"])
    assert ended
    assert [event["seq"] for event in tail] == [e["seq"] for e in events[2:]]
    # Resuming past the end neither blocks nor yields anything.
    empty, ended = manager.events_after(job["job_id"], events[-1]["seq"], wait_s=0.5)
    assert empty == [] and ended


def test_every_terminal_path_emits_exactly_one_end_event():
    started = threading.Event()
    release = threading.Event()

    def gated(payload):
        started.set()
        assert release.wait(timeout=60)
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": [{"seed": seed} for seed in payload["seeds"]],
            "stats": {},
            "error": None,
            "wall_time_s": 0.0,
        }

    manager = JobManager(
        workers=1, max_inflight=1, executor_overrides={"sweep": gated}
    )
    try:
        running = manager.submit("sweep", tiny_sweep(name="tiny-end-a").to_dict())
        assert started.wait(timeout=30)
        queued = manager.submit("sweep", tiny_sweep(name="tiny-end-b").to_dict())
        manager.cancel(queued["job_id"])
        events, ended = manager.events_after(queued["job_id"], -1)
        assert ended
        assert [event["event"] for event in events].count("end") == 1
        assert events[-1]["data"]["state"] == "cancelled"

        manager.cancel(running["job_id"])
        release.set()
        wait_terminal(manager, running["job_id"])
        events, ended = manager.events_after(running["job_id"], -1)
        assert ended
        assert [event["event"] for event in events].count("end") == 1
        assert events[-1]["data"]["state"] == "cancelled"
    finally:
        release.set()
        manager.close()


def test_manager_metrics_render_matches_lifecycle(manager):
    spec = tiny_sweep(name="tiny-metrics")
    job = manager.submit("sweep", spec.to_dict())
    wait_terminal(manager, job["job_id"])
    parsed = parse_exposition(manager.render_metrics())
    assert counter_value(parsed, "repro_jobs_submitted_total", kind="sweep") == 1.0
    assert (
        counter_value(parsed, "repro_jobs_finished_total", kind="sweep", state="done")
        == 1.0
    )
    assert (
        counter_value(parsed, "repro_cells_total", kind="sweep", outcome="executed")
        == len(spec.cells())
    )
    stats = manager.cache.stats()
    for field in ("hits", "misses", "puts", "evictions"):
        assert counter_value(parsed, f"repro_cache_{field}_total") == stats[field]
    assert counter_value(parsed, "repro_cache_entries") == stats["entries"]
    assert counter_value(parsed, "repro_jobs", state="done") == 1.0
    assert parsed["repro_job_duration_seconds_count"][(("kind", "sweep"),)] == 1.0


# --------------------------------------------------------------------------
# HTTP: /metrics and the SSE stream
# --------------------------------------------------------------------------


def test_http_metrics_counters_match_cache_stats_and_stay_monotone(http_server):
    client = http_server
    before = parse_exposition(client.metrics())
    spec = tiny_sweep(name="tiny-http-metrics")
    for _ in range(2):
        job = client.submit("sweep", spec.to_dict())
        assert client.wait(job["job_id"], timeout_s=120.0)["state"] == "done"
    after = parse_exposition(client.metrics())
    stats = client.cache_stats()
    for field in ("hits", "misses", "puts", "evictions"):
        assert counter_value(after, f"repro_cache_{field}_total") == stats[field]
    assert (
        counter_value(after, "repro_jobs_finished_total", kind="sweep", state="done")
        == 2.0
    )
    assert (
        counter_value(after, "repro_cells_total", kind="sweep", outcome="cached")
        == len(spec.cells())
    )
    for name, samples in before.items():
        if not name.endswith("_total"):
            continue
        for labels, value in samples.items():
            assert after.get(name, {}).get(labels, 0.0) >= value


def test_http_sse_stream_is_ordered_replayable_and_resumable(http_server):
    client = http_server
    spec = tiny_sweep(name="tiny-http-sse")
    job = client.submit("sweep", spec.to_dict())
    assert client.wait(job["job_id"], timeout_s=120.0)["state"] == "done"

    # A finished job replays its whole history and closes after "end".
    events = list(client.watch(job["job_id"]))
    seqs = [int(event["id"]) for event in events]
    assert seqs == sorted(set(seqs))
    assert events[-1]["event"] == "end"
    assert {
        event["data"]["cell_id"] for event in events if event["event"] == "cell"
    } == {cell.cell_id for cell in spec.cells()}
    assert all(event["data"]["job_id"] == job["job_id"] for event in events)

    # Last-Event-ID resumes mid-log: only strictly later frames arrive.
    request = urllib.request.Request(
        f"{client.base_url}/jobs/{job['job_id']}/events",
        headers={"Last-Event-ID": str(seqs[1])},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        resumed = list(parse_sse(response))
    assert [int(event["id"]) for event in resumed] == seqs[2:]


def test_http_sse_unknown_job_is_a_permanent_404(http_server):
    with pytest.raises(ServerError) as excinfo:
        list(http_server.watch("missing-job"))
    assert excinfo.value.status == 404


def test_parse_sse_frames_comments_and_multiline_data():
    lines = [
        b": keepalive\n",
        b"id: 3\n",
        b"event: cell\n",
        b'data: {"a":\n',
        b'data: 1}\n',
        b"\n",
        b'data: {"b": 2}\n',
        b"\n",
    ]
    frames = list(parse_sse(iter(lines)))
    assert frames == [
        {"id": "3", "event": "cell", "data": {"a": 1}},
        {"id": None, "event": "message", "data": {"b": 2}},
    ]

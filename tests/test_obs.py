"""Tests of the observability layer (PR 8 tentpole).

Three fronts:

* the metrics primitives — counters/gauges/histograms, the Prometheus
  text-exposition renderer, and the strict parser used by the smoke to
  validate every exposed line;
* run tracing — ``extra["telemetry"]`` emitted by both backends, its
  deprecated ``extra["sampler"]``/``extra["accel"]`` aliases, and the
  determinism contract (tracing never touches an RNG stream);
* profile aggregation — the ``--profile`` fold over cells and the
  double-retirement regression: no sampler-replacement chain may drop a
  retired sampler's counters.
"""

import pytest

from repro.counting.backup import ExactBackupProtocol
from repro.engine import all_outputs_equal, simulate
from repro.engine.vectorized import FactorisedPairKernel, numpy_available
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_value,
    parse_exposition,
)
from repro.obs.profile import (
    aggregate_telemetry,
    merge_profiles,
    profile_from_cells,
    render_profile,
)
from repro.obs.trace import EVENT_LIMIT, TELEMETRY_SCHEMA, RunTracer
from repro.primitives.epidemic import OneWayEpidemic

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy unavailable (or vetoed by REPRO_NO_NUMPY)"
)


# --------------------------------------------------------------------------
# Metrics primitives and the exposition round trip
# --------------------------------------------------------------------------


def test_counter_labels_and_render_parse_round_trip():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "Jobs by kind.", labelnames=("kind",))
    jobs.inc(kind="sweep")
    jobs.inc(2, kind="search")
    plain = registry.counter("restarts_total", "Restarts.")
    plain.inc()
    text = registry.render()
    assert "# HELP jobs_total Jobs by kind." in text
    assert "# TYPE jobs_total counter" in text
    parsed = parse_exposition(text)
    assert counter_value(parsed, "jobs_total", kind="sweep") == 1.0
    assert counter_value(parsed, "jobs_total", kind="search") == 2.0
    assert counter_value(parsed, "restarts_total") == 1.0
    assert counter_value(parsed, "jobs_total", kind="absent") is None
    assert counter_value(parsed, "no_such_metric") is None


def test_counter_rejects_decrement_and_unknown_labels():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "h", labelnames=("kind",))
    with pytest.raises(ValueError):
        jobs.inc(-1, kind="sweep")
    with pytest.raises(ValueError):
        jobs.inc(colour="red")
    with pytest.raises(ValueError):
        jobs.inc()  # missing the declared label


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("inflight", "h")
    gauge.set(3)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 2.0
    parsed = parse_exposition(registry.render())
    assert parsed["inflight"][()] == 2.0


def test_histogram_buckets_are_cumulative_and_parse():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "latency_seconds", "h", buckets=(0.1, 1.0)
    )
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.count() == 3
    parsed = parse_exposition(registry.render())
    buckets = parsed["latency_seconds_bucket"]
    assert buckets[(("le", "0.1"),)] == 1.0
    assert buckets[(("le", "1"),)] == 2.0
    assert buckets[(("le", "+Inf"),)] == 3.0
    assert parsed["latency_seconds_count"][()] == 3.0
    assert parsed["latency_seconds_sum"][()] == pytest.approx(5.55)


def test_registry_registration_is_idempotent_but_type_checked():
    registry = MetricsRegistry()
    first = registry.counter("a_total", "h")
    assert registry.counter("a_total", "h") is first
    with pytest.raises(ValueError):
        registry.gauge("a_total", "h")


def test_collectors_run_at_render_time():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "h")
    live = {"hits": 0}
    registry.add_collector(lambda: hits.set_total(live["hits"]))
    live["hits"] = 7
    parsed = parse_exposition(registry.render())
    assert counter_value(parsed, "hits_total") == 7.0
    live["hits"] = 9
    parsed = parse_exposition(registry.render())
    assert counter_value(parsed, "hits_total") == 9.0


def test_parse_exposition_rejects_malformed_lines():
    for bad in (
        "jobs_total 1",  # sample with no preceding # TYPE
        "# TYPE jobs_total counter\njobs_total",  # no value
        "# TYPE jobs_total counter\njobs_total{kind= 1",  # broken labels
        "garbage line",
    ):
        with pytest.raises(ValueError):
            parse_exposition(bad)


def test_metric_name_and_label_validation():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("0bad", "h")
    with pytest.raises(ValueError):
        registry.counter("ok_total", "h", labelnames=("bad-label",))


# --------------------------------------------------------------------------
# RunTracer
# --------------------------------------------------------------------------


def test_run_tracer_accumulates_phases_and_events():
    tracer = RunTracer()
    tracer.add("sampling", 0.25)
    tracer.add("sampling", 0.25, ops=3)
    tracer.add("transition", 0.5)
    tracer.note_event("sampler-swap", at=10, reason="thrash")
    assert tracer.phase_seconds("sampling") == pytest.approx(0.5)
    record = tracer.as_dict()
    assert record["schema"] == TELEMETRY_SCHEMA
    assert record["phases"]["sampling"] == {"wall_time_s": 0.5, "ops": 4}
    assert record["phases"]["transition"]["ops"] == 1
    assert record["events"] == [{"kind": "sampler-swap", "at": 10, "reason": "thrash"}]
    assert "events_dropped" not in record


def test_run_tracer_caps_the_event_log():
    tracer = RunTracer()
    for index in range(EVENT_LIMIT + 5):
        tracer.note_event("spam", at=index)
    assert len(tracer.events) == EVENT_LIMIT
    assert tracer.as_dict()["events_dropped"] == 5


# --------------------------------------------------------------------------
# Engine telemetry: both backends, the shim, and determinism
# --------------------------------------------------------------------------


def test_batch_backend_emits_telemetry_with_consistent_skips():
    result = simulate(
        OneWayEpidemic(),
        64,
        seed=7,
        backend="batch",
        convergence=all_outputs_equal(1),
        max_interactions=50_000,
    )
    telemetry = result.extra["telemetry"]
    assert telemetry["schema"] == TELEMETRY_SCHEMA
    assert telemetry["backend"] == "batch"
    assert {"sampling", "transition"} <= set(telemetry["phases"])
    skips = telemetry["skips"]
    assert skips["interactions"] == result.interactions
    assert (
        skips["applied_events"] + skips["skipped_interactions"]
        == skips["interactions"]
    )
    assert 0.0 <= skips["efficiency"] <= 1.0
    checkpoints = telemetry["checkpoints"]
    assert checkpoints["count"] >= checkpoints["satisfied"] >= 1
    # The deprecated top-level blobs are aliases of the telemetry sections.
    assert result.extra["sampler"] is telemetry["sampler"]
    assert result.extra["accel"] is telemetry["accel"]


def test_agent_backend_emits_telemetry_without_batch_sections():
    result = simulate(
        OneWayEpidemic(),
        32,
        seed=3,
        backend="agent",
        convergence=all_outputs_equal(1),
        max_interactions=20_000,
    )
    telemetry = result.extra["telemetry"]
    assert telemetry["backend"] == "agent"
    assert {"sampling", "transition"} <= set(telemetry["phases"])
    assert "skips" not in telemetry
    assert "sampler" not in telemetry
    assert "sampler" not in result.extra


def test_tracing_is_stream_transparent():
    # The determinism contract: identical seeds produce identical
    # trajectories and identical non-timing telemetry.
    results = [
        simulate(
            ExactBackupProtocol(),
            64,
            seed=5,
            backend="batch",
            max_interactions=10_000,
        )
        for _ in range(2)
    ]
    assert results[0].output_counts == results[1].output_counts
    assert results[0].interactions == results[1].interactions
    first, second = (r.extra["telemetry"] for r in results)
    assert first["events"] == second["events"]
    assert first["skips"] == second["skips"]
    assert [p["ops"] for p in first["phases"].values()] == [
        p["ops"] for p in second["phases"].values()
    ]


# --------------------------------------------------------------------------
# Retirement funnel: no swap chain drops a sampler's counters
# --------------------------------------------------------------------------


@requires_numpy
def test_engage_then_capacity_fallback_retains_every_retired_snapshot(monkeypatch):
    # auto-accel engages the factorised kernel on alias thrash, then the
    # clamped activity matrix forces a fallback: the alias sampler AND the
    # kernel must both survive in the retired list, each stamped with why
    # and when it was replaced.
    monkeypatch.setattr(FactorisedPairKernel, "MATRIX_LIMIT", 8)
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=1,
        backend="batch",
        accel="numpy",
        max_interactions=30_000,
    )
    assert result.extra["accel"]["active"] == "python"
    retired = result.extra["telemetry"]["sampler"]["retired"]
    assert len(retired) >= 2
    for snapshot in retired:
        assert snapshot["retired_by"] in ("thrash", "accel-engage", "accel-fallback")
        assert snapshot["regime"] in ("pruning", "dense")
        assert isinstance(snapshot["retired_at"], int)
    reasons = [snapshot["retired_by"] for snapshot in retired]
    assert "accel-fallback" in reasons
    kinds = [event["kind"] for event in result.extra["telemetry"]["events"]]
    assert "accel-fallback" in kinds
    assert kinds.count("sampler-retired") == len(retired)


def test_dense_fallback_retires_a_live_count_sampler():
    # Unit-level pin of the latent drop: a dense-regime fallback must not
    # overwrite a live histogram sampler without snapshotting its counters.
    from repro.engine.backends import BatchBackend
    from repro.engine.samplers import make_sampler

    class _Sim:
        protocol = OneWayEpidemic()
        hooks = ()

    backend = BatchBackend.__new__(BatchBackend)
    backend.tracer = RunTracer()
    backend.interactions = 123
    backend.sampler_mode = "auto"
    backend.counts = {0: 10, 1: 6}
    backend._prunes = False
    backend._pair_kernel = None
    backend._dense_kernel = None
    backend._pair_sampler = None
    backend._retired_samplers = []
    backend._count_sampler = make_sampler("auto", backend.counts)
    backend._accel_fallback = None
    backend._accel_pending = False
    backend.accel_active = "numpy"

    backend._fallback_to_python("unit test")
    assert backend.accel_active == "python"
    assert len(backend._retired_samplers) == 1
    snapshot = backend._retired_samplers[0]
    assert snapshot["retired_by"] == "accel-fallback"
    assert snapshot["regime"] == "dense"
    assert snapshot["retired_at"] == 123
    assert backend._count_sampler is not None


# --------------------------------------------------------------------------
# Profile aggregation
# --------------------------------------------------------------------------


def _fake_trace(sampling=0.5, ops=10, skips=None):
    trace = {
        "schema": 1,
        "backend": "batch",
        "phases": {"sampling": {"wall_time_s": sampling, "ops": ops}},
        "events": [{"kind": "sampler-swap", "at": 1}],
        "checkpoints": {"count": 4, "satisfied": 1},
    }
    if skips is not None:
        trace["skips"] = skips
    return trace


def test_aggregate_telemetry_folds_phases_events_and_skips():
    skips = {"interactions": 100, "applied_events": 30, "skipped_interactions": 70}
    profile = aggregate_telemetry([_fake_trace(skips=skips), _fake_trace(skips=skips)])
    assert profile["runs"] == 2
    assert profile["backends"] == {"batch": 2}
    assert profile["phases"]["sampling"] == {"wall_time_s": 1.0, "ops": 20}
    assert profile["events"] == {"sampler-swap": 2}
    assert profile["checkpoints"] == {"count": 8, "satisfied": 2}
    assert profile["skips"]["interactions"] == 200
    assert profile["skips"]["efficiency"] == pytest.approx(0.7)


def test_profile_from_cells_walks_run_extras():
    cells = [
        {"cell_id": "a", "runs": [{"extra": {"telemetry": _fake_trace()}}]},
        {"cell_id": "b", "runs": [{"extra": {}}], "error": "boom"},
    ]
    profile = profile_from_cells(cells)
    assert profile["runs"] == 1
    assert "skips" not in profile


def test_merge_profiles_matches_direct_aggregation():
    skips = {"interactions": 50, "applied_events": 20, "skipped_interactions": 30}
    traces = [_fake_trace(skips=skips) for _ in range(4)]
    direct = aggregate_telemetry(traces)
    merged = merge_profiles(
        [aggregate_telemetry(traces[:2]), aggregate_telemetry(traces[2:])]
    )
    assert merged == direct


def test_render_profile_mentions_every_phase_and_the_skip_line():
    skips = {"interactions": 100, "applied_events": 30, "skipped_interactions": 70}
    table = render_profile(aggregate_telemetry([_fake_trace(skips=skips)]), title="t")
    assert "profile: t" in table
    assert "sampling" in table
    assert "geometric skips" in table
    assert "sampler-swap x1" in table


def test_sweep_document_embeds_the_aggregated_profile():
    from repro.experiments import BudgetPolicy, SweepRunner, SweepSpec
    from repro.experiments import build_document

    spec = SweepSpec(
        name="tiny-obs",
        protocol="one-way-epidemic",
        ns=[8],
        seeds_per_cell=1,
        backend="batch",
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
    )
    cells = SweepRunner(spec, workers=1).run()
    document = build_document(spec, cells, workers=1)
    profile = document["telemetry"]
    assert profile["runs"] == 1
    assert profile["backends"] == {"batch": 1}
    assert "sampling" in profile["phases"]

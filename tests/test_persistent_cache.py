"""Durability tests for the persistent layer of :class:`ResultCache`.

The contract under test (PR 10 tentpole): with a ``cache_dir`` the cache
survives the process — entries land as atomic ``<key>.json`` envelope
files, a fresh cache over the same directory serves them lazily, anything
unreadable or untrustworthy (truncation, corruption, foreign fingerprint,
wrong key, failed record) is a *miss* that gets quarantined rather than
crashing or, worse, silently serving garbage, and an optional bytes budget
evicts least-recently-used files.
"""

import json
import os
import threading

import pytest

from repro.fingerprint import code_fingerprint
from repro.server import ResultCache
from repro.server.cache import DISK_FORMAT, QUARANTINE_DIR


def record_for(cell_id, payload_size=0):
    record = {
        "cell_id": cell_id,
        "n": 8,
        "params": {},
        "seeds": [1],
        "runs": [{"seed": 1, "converged": True}],
        "stats": {"mean": 1.0},
        "error": None,
        "wall_time_s": 0.5,
    }
    if payload_size:
        record["padding"] = "x" * payload_size
    return record


def entry_path(cache_dir, key):
    return os.path.join(str(cache_dir), f"{key}.json")


def quarantine_dir(cache_dir):
    return os.path.join(str(cache_dir), QUARANTINE_DIR)


KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


# --------------------------------------------------------------------------
# Round trip and lazy reload
# --------------------------------------------------------------------------


def test_put_writes_envelope_file_and_survives_restart(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.put(KEY_A, record_for("cell-a"))
    path = entry_path(tmp_path, KEY_A)
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        envelope = json.load(handle)
    assert envelope["format"] == DISK_FORMAT
    assert envelope["key"] == KEY_A
    assert envelope["code_fingerprint"] == code_fingerprint()
    assert envelope["record"]["cell_id"] == "cell-a"

    # A brand new cache over the same directory serves the entry from disk.
    reborn = ResultCache(cache_dir=str(tmp_path))
    assert reborn.stats()["disk_entries"] == 1
    assert reborn.stats()["disk_loads"] == 0  # nothing read yet: lazy
    record = reborn.get(KEY_A)
    assert record is not None and record["cell_id"] == "cell-a"
    stats = reborn.stats()
    assert stats["disk_loads"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 0


def test_disk_load_promotes_into_memory(tmp_path):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_A) is not None
    assert cache.get(KEY_A) is not None
    # Only the first get touched the file; the second was a memory hit.
    assert cache.stats()["disk_loads"] == 1
    assert cache.stats()["entries"] == 1


def test_clear_drops_memory_but_not_disk(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    cache.put(KEY_A, record_for("cell-a"))
    cache.clear()
    assert cache.stats()["entries"] == 0
    assert cache.get(KEY_A) is not None  # reloaded from disk
    assert cache.stats()["disk_loads"] == 1


def test_failed_records_are_refused_and_never_persisted(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path))
    assert not cache.put(KEY_A, {**record_for("cell-a"), "error": "boom"})
    assert not cache.put(KEY_B, {})
    assert not os.path.exists(entry_path(tmp_path, KEY_A))
    assert cache.stats()["disk_entries"] == 0


def test_memory_only_cache_is_unaffected(tmp_path):
    cache = ResultCache()  # no cache_dir
    cache.put(KEY_A, record_for("cell-a"))
    assert cache.get(KEY_A) is not None
    stats = cache.stats()
    assert stats["cache_dir"] is None
    assert stats["disk_entries"] == 0


# --------------------------------------------------------------------------
# Corruption: miss + quarantine, never crash, never serve garbage
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "corruption",
    [
        pytest.param(lambda data: b"{not json", id="corrupt-json"),
        pytest.param(lambda data: data[: len(data) // 2], id="truncated"),
        pytest.param(lambda data: b"", id="empty-file"),
        pytest.param(lambda data: b"[1, 2, 3]", id="wrong-shape"),
    ],
)
def test_unreadable_entry_is_a_miss_and_quarantined(tmp_path, corruption):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    path = entry_path(tmp_path, KEY_A)
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(corruption(data))

    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_A) is None
    stats = cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    assert stats["quarantined"] == 1
    assert not os.path.exists(path)
    assert os.path.exists(os.path.join(quarantine_dir(tmp_path), f"{KEY_A}.json"))
    # Quarantine is once-per-entry: the next get is a plain cheap miss.
    assert cache.get(KEY_A) is None
    assert cache.stats()["quarantined"] == 1


def _rewrite_envelope(tmp_path, key, mutate):
    path = entry_path(tmp_path, key)
    with open(path, encoding="utf-8") as handle:
        envelope = json.load(handle)
    mutate(envelope)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)


def test_fingerprint_mismatch_on_reload_is_a_miss(tmp_path):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    _rewrite_envelope(
        tmp_path, KEY_A, lambda e: e.update(code_fingerprint="0.0.0+dead")
    )
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_A) is None
    assert cache.stats()["quarantined"] == 1


def test_wrong_key_in_envelope_is_a_miss(tmp_path):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    # The file claims to be KEY_A but sits at KEY_B's address (e.g. a bad
    # copy between cache directories).
    os.rename(entry_path(tmp_path, KEY_A), entry_path(tmp_path, KEY_B))
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_B) is None
    assert cache.stats()["quarantined"] == 1


def test_future_disk_format_is_quarantined_not_misread(tmp_path):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    _rewrite_envelope(tmp_path, KEY_A, lambda e: e.update(format=DISK_FORMAT + 1))
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_A) is None
    assert cache.stats()["quarantined"] == 1


def test_persisted_failed_record_is_not_served(tmp_path):
    ResultCache(cache_dir=str(tmp_path)).put(KEY_A, record_for("cell-a"))
    _rewrite_envelope(
        tmp_path,
        KEY_A,
        lambda e: e["record"].update(error="poisoned after the fact"),
    )
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.get(KEY_A) is None
    assert cache.stats()["quarantined"] == 1


def test_unrelated_files_are_ignored_by_the_scan(tmp_path):
    (tmp_path / "README.txt").write_text("not a cache entry")
    (tmp_path / ("f" * 63 + ".json")).write_text("{}")  # too-short stem
    (tmp_path / (".%s.123.1.tmp" % KEY_A)).write_text("in-flight temp")
    cache = ResultCache(cache_dir=str(tmp_path))
    assert cache.stats()["disk_entries"] == 0


# --------------------------------------------------------------------------
# Concurrent writers and atomicity
# --------------------------------------------------------------------------


def test_concurrent_writers_leave_only_complete_entries(tmp_path):
    caches = [ResultCache(cache_dir=str(tmp_path)) for _ in range(4)]
    keys = [format(i, "x") * 64 for i in range(10)]  # '0'*64 .. '9'*64

    def hammer(cache, worker):
        for _ in range(25):
            for key in keys:
                cache.put(key, record_for(f"cell-{key[0]}-{worker}"))

    threads = [
        threading.Thread(target=hammer, args=(cache, i))
        for i, cache in enumerate(caches)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # No temp files survive, and every entry is complete valid JSON.
    leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
    assert leftovers == []
    reader = ResultCache(cache_dir=str(tmp_path))
    for key in keys:
        record = reader.get(key)
        assert record is not None
        assert record["cell_id"].startswith(f"cell-{key[0]}-")
    assert reader.stats()["quarantined"] == 0


def test_cross_process_write_is_visible_without_a_rescan(tmp_path):
    writer = ResultCache(cache_dir=str(tmp_path))
    reader = ResultCache(cache_dir=str(tmp_path))  # scanned an empty dir
    writer.put(KEY_A, record_for("cell-a"))
    record = reader.get(KEY_A)  # not in reader's startup index
    assert record is not None and record["cell_id"] == "cell-a"
    # The late-discovered file is indexed so byte accounting stays honest.
    assert reader.stats()["disk_entries"] == 1
    assert reader.stats()["disk_bytes"] > 0


# --------------------------------------------------------------------------
# LRU bytes budget
# --------------------------------------------------------------------------


def test_lru_eviction_under_bytes_budget(tmp_path):
    probe = ResultCache(cache_dir=str(tmp_path))
    probe.put(KEY_A, record_for("cell-a", payload_size=256))
    entry_bytes = probe.stats()["disk_bytes"]
    os.remove(entry_path(tmp_path, KEY_A))

    budget = int(entry_bytes * 2.5)  # room for two entries, not three
    cache = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=budget)
    cache.put(KEY_A, record_for("cell-a", payload_size=256))
    cache.put(KEY_B, record_for("cell-b", payload_size=256))
    cache.put(KEY_C, record_for("cell-c", payload_size=256))

    stats = cache.stats()
    assert stats["disk_evictions"] >= 1
    assert stats["disk_bytes"] <= budget
    assert not os.path.exists(entry_path(tmp_path, KEY_A))  # oldest went
    assert os.path.exists(entry_path(tmp_path, KEY_C))  # newest stays

    # The evicted entry is gone for a *fresh* cache too (not just memory).
    reborn = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=budget)
    assert reborn.get(KEY_C) is not None
    assert reborn.stats()["disk_entries"] == 2


def test_disk_get_refreshes_lru_order(tmp_path):
    probe = ResultCache(cache_dir=str(tmp_path))
    probe.put(KEY_A, record_for("cell-a", payload_size=256))
    entry_bytes = probe.stats()["disk_bytes"]
    budget = int(entry_bytes * 2.5)

    cache = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=budget)
    cache.put(KEY_B, record_for("cell-b", payload_size=256))
    # Touch A from a fresh cache so it is the most recently used on disk.
    reader = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=budget)
    assert reader.get(KEY_A) is not None
    reader.put(KEY_C, record_for("cell-c", payload_size=256))
    # B (least recently used in reader's view) was evicted, A survived.
    assert os.path.exists(entry_path(tmp_path, KEY_A))
    assert not os.path.exists(entry_path(tmp_path, KEY_B))


def test_newest_entry_is_never_the_eviction_victim(tmp_path):
    cache = ResultCache(cache_dir=str(tmp_path), max_disk_bytes=1)
    cache.put(KEY_A, record_for("cell-a", payload_size=256))
    # Budget is absurdly small, but the entry just written must survive.
    assert os.path.exists(entry_path(tmp_path, KEY_A))
    assert cache.stats()["disk_entries"] == 1

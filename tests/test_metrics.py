"""Unit tests for metrics trackers and recorders."""

from collections import Counter

from repro.engine import (
    AggregateInteractionCounter,
    InteractionCounter,
    OutputTraceRecorder,
    StateHistogramRecorder,
    StateSpaceTracker,
    all_outputs_equal,
    simulate,
)
from repro.primitives.epidemic import OneWayEpidemic


def test_state_space_tracker_counts_and_field_ranges():
    tracker = StateSpaceTracker()
    tracker.observe((0, True))
    tracker.observe((0, True))  # duplicate ignored
    tracker.observe((1, True))
    tracker.observe((1, False))
    assert tracker.distinct_states == 3
    assert tracker.field_range_sizes == (2, 2)
    assert tracker.field_range_product == 4
    assert tracker.as_dict()["distinct_states"] == 3


def test_interaction_counter_participation():
    counter = InteractionCounter(3)
    counter.record(0, 1)
    counter.record(0, 2)
    assert counter.total == 2
    assert counter.per_agent == [2, 1, 1]
    assert counter.initiated == [2, 0, 0]
    assert counter.min_participation == 1
    assert counter.agents_never_interacted == 0


def test_aggregate_interaction_counter_interface():
    counter = AggregateInteractionCounter(100)
    counter.total = 12345
    assert counter.min_participation == 0
    assert counter.agents_never_interacted == 0
    assert counter.as_dict() == {"total": 12345, "per_agent_tracked": False}


def test_recorders_work_on_both_backends():
    for backend in ("agent", "batch"):
        trace = OutputTraceRecorder()
        histogram = StateHistogramRecorder()
        result = simulate(
            OneWayEpidemic(),
            32,
            seed=4,
            backend=backend,
            convergence=all_outputs_equal(1),
            hooks=[trace, histogram],
        )
        assert result.converged
        # Start + checkpoints + end were all snapshotted from the histogram.
        assert len(trace.snapshots) >= 2
        assert trace.snapshots[0].output_histogram == Counter({0: 31, 1: 1})
        assert trace.snapshots[-1].output_histogram == Counter({1: 32})
        assert trace.agreement_trajectory()[-1][1] == 1.0
        assert histogram.final_histogram == Counter({1: 32})

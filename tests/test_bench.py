"""Smoke tests for the repro-bench harness."""

import json

from repro.bench import run_benchmark, run_sampler_benchmark
from repro.bench.cli import main
from repro.bench.runner import BenchCase, run_case, write_report
from repro.bench.samplers import (
    SAMPLER_STRATEGIES,
    SamplerBenchCase,
    StaticTableProtocol,
)
from repro.counting.backup import ExactBackupProtocol
from repro.engine.convergence import all_outputs_equal
from repro.primitives.epidemic import OneWayEpidemic


def _tiny_case(backend):
    return BenchCase(
        protocol_name="one-way-epidemic",
        make_protocol=lambda n: OneWayEpidemic(),
        make_convergence=lambda n: all_outputs_equal(1),
        backend=backend,
        n=64,
    )


def test_run_case_produces_entry():
    entry = run_case(_tiny_case("batch"), base_seed=1)
    assert entry.backend == "batch"
    assert entry.n == 64
    assert entry.converged
    assert entry.transition_calls <= entry.interactions


def test_run_benchmark_pairs_backends_into_comparisons(tmp_path):
    report = run_benchmark(cases=[_tiny_case("agent"), _tiny_case("batch")])
    assert len(report["entries"]) == 2
    assert len(report["comparisons"]) == 1
    comparison = report["comparisons"][0]
    assert comparison["transition_call_reduction"] >= 1
    # No headline-size case in this grid.
    assert report["headline"] is None
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert json.loads(path.read_text())["benchmark"] == "batch_backend"


def test_cli_smoke_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_batch_backend.json"
    exit_code = main(["--smoke", "--quiet", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["smoke"] is True
    assert report["entries"]
    captured = capsys.readouterr()
    assert "wrote" in captured.out


def _tiny_sampler_cases():
    return [
        SamplerBenchCase(
            "backup-exact-churn", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=64, max_interactions=10_000,
        ),
        SamplerBenchCase(
            "static-table", "static-table",
            lambda n: StaticTableProtocol(keys=12), "pruning",
            n=64, max_interactions=2_000,
        ),
    ]


def test_sampler_benchmark_runs_every_strategy_per_case():
    report = run_sampler_benchmark(cases=_tiny_sampler_cases(), base_seed=1)
    assert len(report["entries"]) == 2 * len(SAMPLER_STRATEGIES)
    assert {entry["sampler"] for entry in report["entries"]} == set(SAMPLER_STRATEGIES)
    assert len(report["comparisons"]) == 2
    static = next(c for c in report["comparisons"] if c["case"] == "static-table")
    # Static weights never thrash: auto must have stayed on the alias table.
    assert static["auto_strategy"] == "alias"
    assert static["auto_switched"] is False
    # Budget-bound (or provably terminal) runs keep wall times comparable.
    for entry in report["entries"]:
        assert entry["stopped_reason"] in ("budget", "terminal")


def test_sampler_cli_writes_report(tmp_path):
    output = tmp_path / "BENCH_samplers.json"
    exit_code = main(["--smoke", "--samplers", "--quiet", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "samplers"
    assert report["smoke"] is True
    # The smoke grid never judges the acceptance criteria.
    assert report["headline_met"] is None
    assert report["entries"]

"""Smoke tests for the repro-bench harness."""

import json

from repro.bench import run_benchmark
from repro.bench.cli import main
from repro.bench.runner import BenchCase, run_case, write_report
from repro.engine.convergence import all_outputs_equal
from repro.primitives.epidemic import OneWayEpidemic


def _tiny_case(backend):
    return BenchCase(
        protocol_name="one-way-epidemic",
        make_protocol=lambda n: OneWayEpidemic(),
        make_convergence=lambda n: all_outputs_equal(1),
        backend=backend,
        n=64,
    )


def test_run_case_produces_entry():
    entry = run_case(_tiny_case("batch"), base_seed=1)
    assert entry.backend == "batch"
    assert entry.n == 64
    assert entry.converged
    assert entry.transition_calls <= entry.interactions


def test_run_benchmark_pairs_backends_into_comparisons(tmp_path):
    report = run_benchmark(cases=[_tiny_case("agent"), _tiny_case("batch")])
    assert len(report["entries"]) == 2
    assert len(report["comparisons"]) == 1
    comparison = report["comparisons"][0]
    assert comparison["transition_call_reduction"] >= 1
    # No headline-size case in this grid.
    assert report["headline"] is None
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert json.loads(path.read_text())["benchmark"] == "batch_backend"


def test_cli_smoke_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_batch_backend.json"
    exit_code = main(["--smoke", "--quiet", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["smoke"] is True
    assert report["entries"]
    captured = capsys.readouterr()
    assert "wrote" in captured.out

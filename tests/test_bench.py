"""Smoke tests for the repro-bench harness."""

import json

import pytest

from repro.bench import run_benchmark, run_sampler_benchmark
from repro.bench.cli import main
from repro.bench.runner import (
    BUDGET_FAIL_FACTOR,
    SMOKE_BUDGETS_S,
    BenchCase,
    check_smoke_budgets,
    run_case,
    smoke_cases,
    write_report,
)
from repro.bench.samplers import (
    SAMPLER_STRATEGIES,
    SamplerBenchCase,
    StaticTableProtocol,
)
from repro.counting.backup import ExactBackupProtocol
from repro.engine.convergence import all_outputs_equal
from repro.primitives.epidemic import OneWayEpidemic


def _tiny_case(backend):
    return BenchCase(
        protocol_name="one-way-epidemic",
        make_protocol=lambda n: OneWayEpidemic(),
        make_convergence=lambda n: all_outputs_equal(1),
        backend=backend,
        n=64,
    )


def test_run_case_produces_entry():
    entry = run_case(_tiny_case("batch"), base_seed=1)
    assert entry.backend == "batch"
    assert entry.n == 64
    assert entry.converged
    assert entry.transition_calls <= entry.interactions


def test_run_benchmark_pairs_backends_into_comparisons(tmp_path):
    report = run_benchmark(cases=[_tiny_case("agent"), _tiny_case("batch")])
    assert len(report["entries"]) == 2
    assert len(report["comparisons"]) == 1
    comparison = report["comparisons"][0]
    assert comparison["transition_call_reduction"] >= 1
    # No headline-size case in this grid.
    assert report["headline"] is None
    path = tmp_path / "bench.json"
    write_report(report, str(path))
    assert json.loads(path.read_text())["benchmark"] == "batch_backend"


def test_cli_smoke_writes_report(tmp_path, capsys):
    output = tmp_path / "BENCH_batch_backend.json"
    exit_code = main(["--smoke", "--quiet", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["smoke"] is True
    assert report["entries"]
    captured = capsys.readouterr()
    assert "wrote" in captured.out


# --------------------------------------------------------------------------
# The perf canary (--check-budget)
# --------------------------------------------------------------------------


def test_smoke_budgets_cover_the_smoke_grid_exactly():
    # Drift guard: every smoke workload must have a committed budget and
    # every committed budget must name a smoke workload — otherwise the
    # canary silently checks less (or nothing) after a grid edit.
    grid = {(case.protocol_name, case.backend, case.n) for case in smoke_cases()}
    assert grid == set(SMOKE_BUDGETS_S)


def _canary_report(walls=None, extra_entries=()):
    """Synthetic smoke report covering every committed budget key."""
    walls = walls or {}
    entries = [
        {
            "protocol": protocol,
            "backend": backend,
            "n": n,
            "wall_time_s": walls.get((protocol, backend, n), 0.01),
        }
        for (protocol, backend, n) in SMOKE_BUDGETS_S
    ]
    entries.extend(extra_entries)
    return {"entries": entries}


def test_check_smoke_budgets_passes_within_budget():
    rows, ok = check_smoke_budgets(_canary_report())
    assert ok
    assert len(rows) == len(SMOKE_BUDGETS_S)
    assert all(row["ok"] and row["ratio"] <= 1.0 for row in rows)


def test_check_smoke_budgets_fails_on_gross_regression():
    key = ("one-way-epidemic", "agent", 256)
    gross = SMOKE_BUDGETS_S[key] * BUDGET_FAIL_FACTOR * 2
    rows, ok = check_smoke_budgets(_canary_report(walls={key: gross}))
    assert not ok
    regressed = next(row for row in rows if row["workload"] == key)
    assert not regressed["ok"]
    assert regressed["ratio"] > BUDGET_FAIL_FACTOR
    # A slow-but-not-gross workload (within the fail factor) still passes.
    mild = SMOKE_BUDGETS_S[key] * (BUDGET_FAIL_FACTOR - 1)
    _rows, ok = check_smoke_budgets(_canary_report(walls={key: mild}))
    assert ok


def test_check_smoke_budgets_tolerates_uncovered_new_workloads():
    new_entry = {
        "protocol": "brand-new-protocol",
        "backend": "batch",
        "n": 64,
        "wall_time_s": 99.0,
    }
    rows, ok = check_smoke_budgets(_canary_report(extra_entries=[new_entry]))
    assert ok  # adding a smoke case must not break the canary
    uncovered = next(
        row for row in rows if row["workload"][0] == "brand-new-protocol"
    )
    assert uncovered["budget_s"] is None and uncovered["ok"]


def test_check_smoke_budgets_fails_on_stale_budget_keys():
    # A budget whose workload vanished from the grid means the canary was
    # quietly disconnected — that must fail loudly, not pass vacuously.
    report = _canary_report()
    report["entries"] = report["entries"][1:]  # drop one budgeted workload
    rows, ok = check_smoke_budgets(report)
    assert not ok
    stale = [row for row in rows if row.get("stale")]
    assert len(stale) == 1 and not stale[0]["ok"]


def test_check_budget_cli_requires_the_smoke_grid():
    with pytest.raises(SystemExit):
        main(["--check-budget", "--quiet"])
    with pytest.raises(SystemExit):
        main(["--smoke", "--samplers", "--check-budget", "--quiet"])


def test_check_budget_cli_passes_on_the_real_smoke_grid(tmp_path, capsys):
    output = tmp_path / "BENCH_batch_backend.json"
    exit_code = main(["--smoke", "--check-budget", "--quiet", "--output", str(output)])
    captured = capsys.readouterr()
    assert "perf canary" in captured.out
    assert "REGRESSION" not in captured.out
    assert "STALE" not in captured.out
    assert exit_code == 0


def _tiny_sampler_cases():
    return [
        SamplerBenchCase(
            "backup-exact-churn", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=64, max_interactions=10_000,
        ),
        SamplerBenchCase(
            "static-table", "static-table",
            lambda n: StaticTableProtocol(keys=12), "pruning",
            n=64, max_interactions=2_000,
        ),
    ]


def test_sampler_benchmark_runs_every_strategy_per_case():
    report = run_sampler_benchmark(cases=_tiny_sampler_cases(), base_seed=1)
    assert len(report["entries"]) == 2 * len(SAMPLER_STRATEGIES)
    assert {entry["sampler"] for entry in report["entries"]} == set(SAMPLER_STRATEGIES)
    assert len(report["comparisons"]) == 2
    static = next(c for c in report["comparisons"] if c["case"] == "static-table")
    # Static weights never thrash: auto must have stayed on the alias table.
    assert static["auto_strategy"] == "alias"
    assert static["auto_switched"] is False
    # Budget-bound (or provably terminal) runs keep wall times comparable.
    for entry in report["entries"]:
        assert entry["stopped_reason"] in ("budget", "terminal")


def test_sampler_cli_writes_report(tmp_path):
    output = tmp_path / "BENCH_samplers.json"
    exit_code = main(["--smoke", "--samplers", "--quiet", "--output", str(output)])
    assert exit_code == 0
    report = json.loads(output.read_text())
    assert report["benchmark"] == "samplers"
    assert report["smoke"] is True
    # The smoke grid never judges the acceptance criteria.
    assert report["headline_met"] is None
    assert report["entries"]

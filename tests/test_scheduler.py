"""Unit tests for the interaction schedulers."""

import pytest

from repro.engine.errors import ConfigurationError, SimulationError
from repro.engine.rng import make_rng
from repro.engine.scheduler import (
    RoundRobinScheduler,
    SequenceScheduler,
    UniformRandomScheduler,
)


def test_uniform_scheduler_returns_distinct_in_range_pairs():
    scheduler = UniformRandomScheduler()
    rng = make_rng(0, "scheduler")
    for interaction in range(500):
        initiator, responder = scheduler.next_pair(10, rng, interaction)
        assert 0 <= initiator < 10
        assert 0 <= responder < 10
        assert initiator != responder


def test_uniform_scheduler_covers_all_ordered_pairs():
    scheduler = UniformRandomScheduler()
    rng = make_rng(1, "scheduler")
    seen = {scheduler.next_pair(3, rng, i) for i in range(300)}
    assert seen == {(a, b) for a in range(3) for b in range(3) if a != b}


def test_uniform_scheduler_rejects_tiny_population():
    with pytest.raises(ConfigurationError):
        UniformRandomScheduler().next_pair(1, make_rng(0), 0)


def test_sequence_scheduler_replays_and_exhausts():
    scheduler = SequenceScheduler([(0, 1), (1, 2)])
    rng = make_rng(0)
    assert scheduler.next_pair(3, rng, 0) == (0, 1)
    assert scheduler.next_pair(3, rng, 1) == (1, 2)
    with pytest.raises(SimulationError):
        scheduler.next_pair(3, rng, 2)
    scheduler.reset()
    assert scheduler.next_pair(3, rng, 0) == (0, 1)


def test_sequence_scheduler_validates_pairs():
    with pytest.raises(ConfigurationError):
        SequenceScheduler([(1, 1)])
    with pytest.raises(ConfigurationError):
        SequenceScheduler([])


def test_round_robin_scheduler_covers_every_ordered_pair_each_round():
    scheduler = RoundRobinScheduler()
    rng = make_rng(0)
    n = 4
    pairs = [scheduler.next_pair(n, rng, i) for i in range(n * (n - 1))]
    assert len(set(pairs)) == n * (n - 1)

"""Batch-backend unit tests and agent/batch equivalence checks.

The batch backend simulates the same Markov chain as the agent backend,
marginalised over agent identities.  For small populations the two must
therefore agree exactly on reachable state-key sets and consensus outputs,
and statistically on convergence times.
"""

import math
from collections import Counter

import pytest

from repro.engine import (
    ConfigurationError,
    SimulationError,
    Simulator,
    all_outputs_equal,
    outputs_in,
    simulate,
)
from repro.engine.backends import BatchBackend, LiftedKeyTransitions
from repro.engine.rng import make_rng
from repro.engine.scheduler import RoundRobinScheduler
from repro.primitives.epidemic import MaximumBroadcast, OneWayEpidemic
from repro.primitives.junta import JuntaProtocol
from repro.primitives.load_balancing import (
    EMPTY,
    ClassicalLoadBalancing,
    PowersOfTwoLoadBalancing,
)
from repro.primitives.phase_clock import JuntaPhaseClockProtocol
from repro.primitives.synthetic_coin import ParityCoinProtocol


def _protocol_grid(n):
    kappa = max(0, (3 * n // 4).bit_length() - 1)
    return [
        (OneWayEpidemic(), all_outputs_equal(1)),
        (JuntaProtocol(), None),
        (ClassicalLoadBalancing([n]), None),
        (PowersOfTwoLoadBalancing(kappa=kappa), outputs_in({EMPTY, 0})),
        (ParityCoinProtocol(), None),
    ]


@pytest.mark.parametrize("n", [8, 32, 64])
def test_backends_agree_on_consensus_outputs(n):
    protocol = OneWayEpidemic()
    agent = simulate(protocol, n, seed=101, convergence=all_outputs_equal(1), backend="agent")
    batch = simulate(protocol, n, seed=202, convergence=all_outputs_equal(1), backend="batch")
    assert agent.consensus_output == batch.consensus_output == 1
    assert agent.n == batch.n
    assert batch.extra["backend"] == "batch"
    assert batch.extra["transition_calls"] <= agent.extra["transition_calls"]


@pytest.mark.parametrize("n", [8, 32, 64])
def test_backends_reach_identical_state_key_sets(n):
    # Run each backend over several seeds and compare the union of observed
    # state keys; the chains explore the same reachable key space.
    for protocol_factory, budget in (
        (lambda: OneWayEpidemic(), 64 * n),
        (lambda: PowersOfTwoLoadBalancing(kappa=max(0, (3 * n // 4).bit_length() - 1)), 64 * n),
    ):
        agent_keys = set()
        batch_keys = set()
        for seed in range(5):
            simulator = Simulator(protocol_factory(), n, seed=seed, backend="agent")
            simulator.run(max_interactions=budget)
            agent_keys.update(simulator.state_space._seen)
            simulator = Simulator(protocol_factory(), n, seed=seed, backend="batch")
            simulator.run(max_interactions=budget)
            batch_keys.update(simulator.state_space._seen)
        assert agent_keys == batch_keys


@pytest.mark.parametrize("n", [8, 32, 64])
def test_batch_conserves_population_and_tokens(n):
    protocol = ClassicalLoadBalancing([n])
    simulator = Simulator(protocol, n, seed=9, backend="batch")
    result = simulator.run(max_interactions=64 * n)
    counts = simulator.state_key_counts()
    assert sum(counts.values()) == n
    assert sum(load * count for load, count in counts.items()) == protocol.total_tokens
    assert result.interactions <= 64 * n


def test_degenerate_single_pair_type_is_exact():
    # n = 2 with loads {4, 0}: the only configuration-changing pair types are
    # (4, 0) and (0, 4), both mapping to {2, 2}, and every drawn pair is
    # active (p = 1).  Both backends must therefore resolve the first
    # interaction identically, for any seed.
    for seed in range(10):
        agent = Simulator(ClassicalLoadBalancing([4]), 2, seed=seed, backend="agent")
        agent.run(max_interactions=1)
        batch = Simulator(ClassicalLoadBalancing([4]), 2, seed=seed, backend="batch")
        batch.run(max_interactions=1)
        assert agent.state_key_counts() == batch.state_key_counts() == Counter({2: 2})
    # After that single interaction the configuration is a fixed point, which
    # the batch backend detects structurally.
    batch = Simulator(ClassicalLoadBalancing([4]), 2, seed=0, backend="batch")
    result = batch.run(max_interactions=100)
    assert result.stopped_reason == "terminal"
    assert result.interactions == 1


from repro.engine.stats import ks_statistic as _ks_statistic  # noqa: E402  (shared statistical harness)


@pytest.mark.stats
def test_convergence_time_distributions_are_compatible():
    # KS-style tolerance check on epidemic convergence interactions at n = 32.
    n = 32
    samples = 40
    agent_times = []
    batch_times = []
    for seed in range(samples):
        agent = simulate(
            OneWayEpidemic(), n, seed=seed, backend="agent",
            convergence=all_outputs_equal(1), check_interval=1, confirm_checks=1,
        )
        batch = simulate(
            OneWayEpidemic(), n, seed=1000 + seed, backend="batch",
            convergence=all_outputs_equal(1), check_interval=1, confirm_checks=1,
        )
        assert agent.converged and batch.converged
        agent_times.append(agent.convergence_interaction)
        batch_times.append(batch.convergence_interaction)
    statistic = _ks_statistic(agent_times, batch_times)
    # Critical value at alpha = 0.01 for 40-vs-40 samples is ~0.364.
    assert statistic < 0.364, (statistic, agent_times, batch_times)


def test_batch_terminal_detection_on_junta():
    # The junta process stabilises (everyone inactive on a common level); the
    # batch backend must detect the fixed point and stop early.
    result = simulate(JuntaProtocol(), 64, seed=4, backend="batch")
    assert result.stopped_reason == "terminal"
    assert all(not active for (_level, active, _junta) in result.output_counts)
    assert result.extra["transition_calls"] < result.interactions


def test_batch_transition_call_reduction_on_epidemic():
    n = 4096
    agent = simulate(OneWayEpidemic(), n, seed=5, convergence=all_outputs_equal(1), backend="agent")
    batch = simulate(OneWayEpidemic(), n, seed=5, convergence=all_outputs_equal(1), backend="batch")
    assert agent.extra["transition_calls"] == agent.interactions
    # The epidemic delta is deterministic, so the batch backend memoises the
    # single active pair type: one Python-level transition call in total.
    assert batch.extra["transition_calls"] == 1
    assert agent.extra["transition_calls"] / batch.extra["transition_calls"] >= 50


def test_lifted_adapter_runs_protocols_without_delta_key():
    protocol = JuntaPhaseClockProtocol()
    assert not protocol.supports_key_transitions()
    result = simulate(protocol, 16, seed=3, backend="batch", max_interactions=2000)
    assert result.interactions == 2000
    assert sum(result.output_counts.values()) == 16


def test_lifted_adapter_matches_direct_transitions():
    protocol = ParityCoinProtocol()
    lifted = LiftedKeyTransitions(protocol)
    state_a = protocol.initial_state(0)
    state_b = protocol.initial_state(1)
    key_a = lifted.register(state_a)
    key_b = lifted.register(state_b)
    rng = make_rng(0)
    lifted_keys = lifted.delta_key(key_a, key_b, rng)
    native_keys = protocol.delta_key(key_a, key_b, rng)
    protocol.transition(state_a, state_b, rng)
    direct_keys = (protocol.state_key(state_a), protocol.state_key(state_b))
    assert lifted_keys == native_keys == direct_keys
    assert lifted.output_key(lifted_keys[0]) == protocol.output_key(lifted_keys[0])


def test_batch_rejects_custom_schedulers_and_stepping():
    with pytest.raises(ConfigurationError):
        Simulator(OneWayEpidemic(), 8, scheduler=RoundRobinScheduler(), backend="batch")
    simulator = Simulator(OneWayEpidemic(), 8, backend="batch")
    with pytest.raises(SimulationError):
        simulator.step()
    with pytest.raises(SimulationError):
        simulator.states


def test_auto_backend_selection():
    assert Simulator(OneWayEpidemic(), 8, backend="auto").backend_name == "batch"
    # No native key-level API: auto falls back to the per-agent loop.
    assert Simulator(JuntaPhaseClockProtocol(), 8, backend="auto").backend_name == "agent"
    # Custom scheduler forces the per-agent loop.
    assert (
        Simulator(
            OneWayEpidemic(), 8, scheduler=RoundRobinScheduler(), backend="auto"
        ).backend_name
        == "agent"
    )


def test_agent_only_hooks_are_rejected_by_batch_and_demote_auto():
    from repro.engine import FailureInjectionHook

    hook = FailureInjectionHook(10, lambda simulator: None)
    # Silent no-op would report falsely clean stability results; reject.
    with pytest.raises(ConfigurationError):
        Simulator(OneWayEpidemic(), 8, hooks=[hook], backend="batch")
    simulator = Simulator(OneWayEpidemic(), 8, hooks=[hook], backend="auto")
    assert simulator.backend_name == "agent"


def test_batch_initial_key_counts_match_per_agent_construction():
    n = 33
    for protocol in (
        OneWayEpidemic(source_count=3, source_value=9),
        MaximumBroadcast([7, 3, 3]),
        JuntaProtocol(),
        ClassicalLoadBalancing([5, 5]),
        PowersOfTwoLoadBalancing(kappa=4, loaded_agents=2),
        ParityCoinProtocol(),
    ):
        explicit = Counter(
            protocol.state_key(protocol.initial_state(i)) for i in range(n)
        )
        assert protocol.initial_key_counts(n) == explicit


def test_delta_key_matches_transition_on_random_pairs():
    # Drive an agent-backend simulation and check, at every step, that the
    # key-level transition agrees with the mutating one.
    for protocol in (
        OneWayEpidemic(),
        JuntaProtocol(),
        ClassicalLoadBalancing([16]),
        PowersOfTwoLoadBalancing(kappa=3),
        ParityCoinProtocol(),
    ):
        simulator = Simulator(protocol, 12, seed=8, backend="agent")
        rng = make_rng(99)
        for _ in range(300):
            initiator, responder = simulator.scheduler.next_pair(
                12, simulator._scheduler_rng, simulator.interactions
            )
            state_a = simulator.states[initiator]
            state_b = simulator.states[responder]
            keys_before = (protocol.state_key(state_a), protocol.state_key(state_b))
            expected = protocol.delta_key(*keys_before, rng)
            protocol.transition(state_a, state_b, rng)
            observed = (protocol.state_key(state_a), protocol.state_key(state_b))
            assert observed == expected, (protocol.name, keys_before)


def test_can_interaction_change_is_exact_for_key_protocols():
    # A False answer from can_interaction_change must guarantee that the
    # interaction preserves the configuration multiset; exhaustively check
    # all key pairs observed during a run.
    rng = make_rng(5)
    for protocol, n in (
        (OneWayEpidemic(), 16),
        (JuntaProtocol(), 16),
        (ClassicalLoadBalancing([16]), 16),
        (PowersOfTwoLoadBalancing(kappa=3), 16),
    ):
        simulator = Simulator(protocol, n, seed=6, backend="agent")
        simulator.run(max_interactions=32 * n)
        keys = set(simulator.state_space._seen)
        for key_a in keys:
            for key_b in keys:
                if not protocol.can_interaction_change(key_a, key_b):
                    new_a, new_b = protocol.delta_key(key_a, key_b, rng)
                    assert Counter([new_a, new_b]) == Counter([key_a, key_b]), (
                        protocol.name,
                        key_a,
                        key_b,
                    )

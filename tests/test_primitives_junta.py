"""Unit tests for the junta process (Section 2, Lemma 4)."""

import math

from repro.engine import Simulator, simulate
from repro.primitives.junta import (
    JuntaProtocol,
    JuntaState,
    junta_summary,
    junta_update,
    junta_update_pair,
)


def test_two_active_agents_on_same_level_both_climb():
    u, v = JuntaState(), JuntaState()
    saw_u, saw_v = junta_update_pair(u, v)
    assert (u.level, v.level) == (1, 1)
    assert u.active and v.active
    assert (saw_u, saw_v) == (False, False)
    assert u.reached_level == v.reached_level == 1


def test_active_agent_meeting_different_level_becomes_inactive():
    u = JuntaState(level=0)
    v = JuntaState(level=2, active=False)
    junta_update_pair(u, v)
    assert not u.active
    assert u.level == 2  # adopted the higher level
    assert not u.junta  # cleared on seeing a higher level


def test_inactive_agent_adopts_higher_level_and_clears_junta():
    u = JuntaState(level=1, active=False, junta=True)
    v = JuntaState(level=3, active=False, junta=False)
    saw_u, saw_v = junta_update_pair(u, v)
    assert saw_u and not saw_v
    assert u.level == 3
    assert not u.junta
    assert v.level == 3 and not v.junta


def test_one_way_junta_update_matches_documented_events():
    u = JuntaState(level=1, active=False)
    v = JuntaState(level=4)
    assert junta_update(u, v) is True
    assert u.level == 4 and not u.junta


def test_junta_process_stabilises_with_lemma4_level_bound(caplog=None):
    n = 256
    result = simulate(JuntaProtocol(), n, seed=5, backend="batch")
    assert result.stopped_reason == "terminal"
    levels = {level for (level, _active, _junta) in result.output_counts}
    assert len(levels) == 1  # everyone agrees on the maximal level
    max_level = levels.pop()
    # Lemma 4: max level in [log log n - 4, log log n + 8].
    loglog = math.log2(math.log2(n))
    assert loglog - 4 <= max_level <= loglog + 8
    assert all(not active for (_level, active, _junta) in result.output_counts)


def test_junta_summary_reports_lemma4_quantities():
    states = [
        JuntaState(level=2, active=False, junta=True, reached_level=2),
        JuntaState(level=2, active=False, junta=False, reached_level=1),
        JuntaState(level=1, active=False, junta=False, reached_level=1),
    ]
    summary = junta_summary(states)
    assert summary["max_level"] == 2
    assert summary["agents_on_max_level"] == 2
    assert summary["agents_reached_max_level"] == 1
    assert summary["junta_size"] == 1
    assert summary["active_agents"] == 0
    assert junta_summary([])["junta_size"] == 0


def test_can_interaction_change_accepts_full_state_keys():
    # Regression: the predicate used to unpack a 3-tuple from the 4-tuple
    # state key and crashed on any real key.
    protocol = JuntaProtocol()
    inactive_same = (2, False, False, 1)
    assert not protocol.can_interaction_change(inactive_same, inactive_same)
    assert protocol.can_interaction_change((2, True, True, 2), inactive_same)
    assert protocol.can_interaction_change((1, False, False, 1), (2, False, False, 2))
    assert protocol.can_interaction_change((2, False, False, 1), (1, False, False, 1))


def test_junta_stability_detected_by_simulator():
    simulator = Simulator(JuntaProtocol(), 32, seed=2, backend="agent")
    simulator.run()  # default budget is ample for n = 32
    assert simulator.is_stable_configuration()

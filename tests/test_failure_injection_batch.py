"""Batch-mode failure injection and alias-table sampling (PR 2 satellites)."""

import random
from collections import Counter

import pytest

from repro.engine import (
    AliasTable,
    ConfigurationError,
    FailureInjectionHook,
    Simulator,
    all_outputs_equal,
    simulate,
)
from repro.engine.protocol import Protocol
from repro.engine.rng import make_rng
from repro.primitives.epidemic import OneWayEpidemic


# ---------------------------------------------------------------- AliasTable
def test_alias_table_matches_weights():
    weights = {"a": 1, "b": 3, "c": 6}
    table = AliasTable(weights)
    rng = make_rng(7)
    draws = Counter(table.sample(rng) for _ in range(30_000))
    for value, weight in weights.items():
        expected = weight / 10
        assert abs(draws[value] / 30_000 - expected) < 0.02, (value, draws)


def test_alias_table_single_and_invalid_inputs():
    table = AliasTable({"only": 5})
    assert table.sample(make_rng(0)) == "only"
    with pytest.raises(ConfigurationError):
        AliasTable({})
    with pytest.raises(ConfigurationError):
        AliasTable({"a": 0})
    with pytest.raises(ConfigurationError):
        AliasTable({"a": -1, "b": 2})


def test_batch_sampling_regimes_are_detected():
    # Epidemic overrides can_interaction_change -> pruning; a protocol with
    # the conservative default -> dense.
    pruning = Simulator(OneWayEpidemic(), 16, backend="batch").backend
    assert pruning._prunes
    dense = Simulator(_MaxConsensus(), 16, backend="batch").backend
    assert not dense._prunes


class _MaxState:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def key(self):
        return self.value


class _MaxConsensus(Protocol):
    """Dense-regime fixture: epidemic dynamics *without* a can_change override."""

    name = "max-consensus-dense"
    deterministic_transitions = True

    def initial_state(self, agent_id):
        return _MaxState(agent_id % 4)

    def transition(self, initiator, responder, rng):
        if responder.value > initiator.value:
            initiator.value = responder.value

    def output(self, state):
        return state.value

    def copy_state(self, state):
        return _MaxState(state.value)

    def delta_key(self, key_a, key_b, rng):
        return max(key_a, key_b), key_b

    def output_key(self, key):
        return key

    def initial_key_counts(self, n):
        counts = Counter()
        for agent_id in range(n):
            counts[agent_id % 4] += 1
        return counts


def test_dense_regime_detects_deterministic_fixed_point():
    # Once every agent holds the maximum the single remaining key is a
    # provable no-op under a deterministic delta, despite the conservative
    # can_interaction_change.
    result = simulate(_MaxConsensus(), 32, seed=3, backend="batch", max_interactions=100_000)
    assert result.stopped_reason == "terminal"
    assert result.output_counts == Counter({3: 32})
    assert result.interactions < 100_000


def test_dense_regime_matches_agent_reachable_keys():
    agent_keys = set()
    batch_keys = set()
    for seed in range(5):
        simulator = Simulator(_MaxConsensus(), 24, seed=seed, backend="agent")
        simulator.run(max_interactions=2_000)
        agent_keys.update(simulator.state_space._seen)
        simulator = Simulator(_MaxConsensus(), 24, seed=seed, backend="batch")
        simulator.run(max_interactions=2_000)
        batch_keys.update(simulator.state_space._seen)
    assert agent_keys == batch_keys


# ------------------------------------------------------- failure injection
def test_hook_requires_some_corruption_mode():
    with pytest.raises(ConfigurationError):
        FailureInjectionHook(10)
    with pytest.raises(ConfigurationError):
        FailureInjectionHook(10, corrupt=lambda simulator: None, victims=0)


def test_agent_only_hook_still_rejected_by_batch():
    hook = FailureInjectionHook(10, corrupt=lambda simulator: None)
    assert hook.requires_agent_backend
    with pytest.raises(ConfigurationError):
        Simulator(OneWayEpidemic(), 8, hooks=[hook], backend="batch")
    assert Simulator(OneWayEpidemic(), 8, hooks=[hook], backend="auto").backend_name == "agent"


def test_key_only_hook_rejected_by_agent_backend_at_start():
    hook = FailureInjectionHook(10, corrupt_key=lambda key, rng: 0)
    simulator = Simulator(OneWayEpidemic(), 8, hooks=[hook], backend="agent")
    with pytest.raises(ConfigurationError):
        simulator.run(max_interactions=100)


def test_corrupt_histogram_conserves_population_and_rebuilds_weights():
    # accel="python": the test asserts the Python pair-weight table's
    # post-corruption invariant (the NumPy kernel has its own differential
    # test in tests/test_vectorized.py).
    simulator = Simulator(
        OneWayEpidemic(source_count=4), 32, seed=1, backend="batch", accel="python"
    )
    simulator.run(max_interactions=64)
    backend = simulator.backend
    changed = backend.corrupt_histogram(6, lambda key, rng: 0, make_rng(5))
    counts = backend.state_key_counts()
    assert sum(counts.values()) == 32
    assert 0 <= changed <= 6
    # The weight table must equal a from-scratch rebuild after corruption.
    weights_after = dict(backend._pair_weights)
    total_after = backend._active_weight
    backend._rebuild_pair_weights()
    assert backend._pair_weights == weights_after
    assert backend._active_weight == total_after


def test_batch_failure_injection_fires_and_epidemic_recovers():
    hook = FailureInjectionHook(
        200, corrupt_key=lambda key, rng: 0, victims=4, seed=9
    )
    result = simulate(
        OneWayEpidemic(source_count=8),
        64,
        seed=3,
        backend="batch",
        hooks=[hook],
        convergence=all_outputs_equal(1),
        check_interval=64,
    )
    assert hook.fired
    assert result.converged
    assert result.consensus_output == 1


def test_before_checkpoint_precedes_predicate_evaluation():
    # Checkpoint-triggered interventions must be visible to the predicate
    # evaluated at the same checkpoint (the batch injection relies on this).
    from repro.engine import CallbackHook

    order = []
    hook = CallbackHook(
        before_checkpoint=lambda simulator: order.append("before"),
        on_checkpoint=lambda simulator, satisfied: order.append("after"),
    )
    predicate_calls = []

    def predicate(outputs):
        predicate_calls.append(len(order))
        return False

    simulate(
        OneWayEpidemic(), 8, seed=1, backend="batch", hooks=[hook],
        convergence=predicate, max_interactions=32, check_interval=8,
    )
    assert order[:2] == ["before", "after"]
    # At the first checkpoint the predicate ran after before_checkpoint (one
    # entry in `order`) and before on_checkpoint.
    assert predicate_calls[0] == 1


def test_corrupt_histogram_victims_are_distinct_agents():
    simulator = Simulator(OneWayEpidemic(source_count=4), 12, seed=1, backend="batch")
    backend = simulator.backend
    # Corrupting every agent to key 0 must hit all 12 distinct agents.
    changed = backend.corrupt_histogram(12, lambda key, rng: 0, make_rng(3))
    assert backend.state_key_counts() == Counter({0: 12})
    assert changed == 4  # only the 4 informed agents actually changed key
    with pytest.raises(ConfigurationError):
        backend.corrupt_histogram(13, lambda key, rng: 0, make_rng(3))


def test_corrupt_histogram_rejects_unseen_keys_under_lifted_adapter():
    from repro.engine import SimulationError
    from repro.primitives.phase_clock import JuntaPhaseClockProtocol

    protocol = JuntaPhaseClockProtocol()
    assert not protocol.supports_key_transitions()
    simulator = Simulator(protocol, 16, seed=1, backend="batch")
    simulator.run(max_interactions=200)
    with pytest.raises(SimulationError):
        simulator.backend.corrupt_histogram(
            1, lambda key, rng: ("bogus", "key"), make_rng(0)
        )


def test_injection_after_run_end_reports_unfired():
    # A run that converges/terminates before at_interaction finishes without
    # firing — under either backend; callers must assert hook.fired.
    for backend in ("agent", "batch"):
        hook = FailureInjectionHook(
            10**9, corrupt=lambda simulator: None, corrupt_key=lambda key, rng: 0
        )
        result = simulate(
            OneWayEpidemic(), 32, seed=2, backend=backend, hooks=[hook],
            convergence=all_outputs_equal(1),
        )
        assert result.converged
        assert not hook.fired


from repro.engine.stats import ks_statistic as _ks_statistic  # noqa: E402  (shared statistical harness)


@pytest.mark.stats
def test_agent_batch_injection_equivalence():
    # The same fault model — 4 uniformly chosen victims reset to state 0 at
    # interaction 100 — expressed per agent (agent backend) and per key
    # histogram (batch backend) must leave the convergence-time distribution
    # statistically unchanged between backends (KS, alpha=0.01, 25-vs-25
    # critical value ~0.45).
    n = 48
    samples = 25
    agent_times = []
    batch_times = []
    for seed in range(samples):
        def corrupt(simulator, _seed=seed):
            rng = make_rng(_seed, "victims")
            for index in rng.sample(range(n), 4):
                simulator.states[index].value = 0

        agent_hook = FailureInjectionHook(100, corrupt=corrupt)
        agent = simulate(
            OneWayEpidemic(source_count=8), n, seed=seed, backend="agent",
            hooks=[agent_hook], convergence=all_outputs_equal(1),
            check_interval=1, confirm_checks=1,
        )
        batch_hook = FailureInjectionHook(
            100, corrupt_key=lambda key, rng: 0, victims=4, seed=seed
        )
        batch = simulate(
            OneWayEpidemic(source_count=8), n, seed=1_000 + seed, backend="batch",
            hooks=[batch_hook], convergence=all_outputs_equal(1),
            check_interval=1, confirm_checks=1,
        )
        assert agent_hook.fired and batch_hook.fired
        assert agent.converged and batch.converged
        agent_times.append(agent.convergence_interaction)
        batch_times.append(batch.convergence_interaction)
    statistic = _ks_statistic(agent_times, batch_times)
    assert statistic < 0.45, (statistic, agent_times, batch_times)

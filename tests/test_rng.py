"""Unit tests for the deterministic randomness utilities."""

from repro.engine.rng import derive_seed, make_rng, mix_seed, spawn_rngs, spawn_seeds


def test_derive_seed_is_deterministic():
    assert derive_seed(1234, "sweep", 64, 3) == derive_seed(1234, "sweep", 64, 3)


def test_derive_seed_distinguishes_keys():
    seeds = {
        derive_seed(0),
        derive_seed(0, "scheduler"),
        derive_seed(0, "agents"),
        derive_seed(1, "scheduler"),
        derive_seed(0, "scheduler", 1),
    }
    assert len(seeds) == 5


def test_string_seeds_are_supported_and_stable():
    assert derive_seed("experiment-1") == derive_seed("experiment-1")
    assert derive_seed("experiment-1") != derive_seed("experiment-2")


def test_make_rng_streams_are_independent():
    first = make_rng(42, "scheduler")
    second = make_rng(42, "agents")
    assert [first.random() for _ in range(4)] != [second.random() for _ in range(4)]


def test_mix_seed_stays_in_64_bits_and_avalanches():
    for value in (0, 1, 2, 2**63, 2**64 - 1):
        mixed = mix_seed(value)
        assert 0 <= mixed < 2**64
    assert mix_seed(1) != mix_seed(2)


def test_spawn_seeds_and_rngs():
    seeds = spawn_seeds(7, 5, "reps")
    assert len(seeds) == 5
    assert len(set(seeds)) == 5
    rngs = spawn_rngs(7, 3, "reps")
    assert len(rngs) == 3
    assert rngs[0].random() != rngs[1].random()

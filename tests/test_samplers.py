"""The statistical test harness of the pluggable sampler architecture (PR 4).

Correct weighted sampling dies silently — a broken sampler still converges
and its means look fine; only the distribution drifts.  So every strategy is
checked at the *distribution* level (chi-square goodness of fit against the
exact target weights, KS compatibility of end-to-end convergence-time laws)
on top of exact differential tests made possible by the canonical draw
contract: all strategies evaluate the same inverse CDF, so static-weight
draw sequences must be *identical*, not merely equidistributed.
"""

import random
from collections import Counter

import pytest

from repro.bench.samplers import StaticTableProtocol
from repro.counting.backup import ExactBackupProtocol
from repro.engine import (
    CallbackHook,
    ConfigurationError,
    Simulator,
    all_outputs_equal,
    simulate,
)
from repro.engine.samplers import (
    SAMPLER_NAMES,
    AliasSampler,
    FenwickSampler,
    ScanSampler,
    make_sampler,
)
from repro.engine.stats import (
    chi_square_gof,
    ks_pvalue,
    ks_statistic,
)

STRATEGIES = ("scan", "alias", "fenwick")

#: Generous significance threshold: a correct sampler fails a fixed-seed run
#: with probability 10^-3; a broken one fails with p-values ~ 10^-30.
ALPHA = 1e-3


def _wide_weights(size, salt=0):
    return {f"k{index}": (index * 37 + salt) % 11 + 1 for index in range(size)}


# --------------------------------------------------------------------------
# Chi-square goodness of fit (every strategy, both table sizes)
# --------------------------------------------------------------------------


@pytest.mark.stats
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("size", [12, 80])  # below / above the alias SMALL_TABLE
def test_sampler_draws_from_exact_target_distribution(strategy, size):
    weights = _wide_weights(size)
    sampler = make_sampler(strategy, weights)
    rng = random.Random(1234 + size)
    observed = Counter(sampler.sample(rng) for _ in range(20_000))
    p_value = chi_square_gof(observed, weights)
    assert p_value > ALPHA, (strategy, size, p_value)


@pytest.mark.stats
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_sampler_distribution_survives_randomized_mutations(strategy):
    # A scripted storm of updates (including zeroing and resurrecting keys)
    # and wholesale rebuilds, then a goodness-of-fit check against the final
    # weights: stale internal state would shift the distribution.
    rng = random.Random(4242)
    sampler = make_sampler(strategy, {f"s{index}": 1 for index in range(50)})
    shadow = {f"s{index}": 1 for index in range(50)}
    for step in range(600):
        if step % 151 == 150:
            shadow = {
                f"r{step}-{index}": rng.randrange(1, 8)
                for index in range(rng.randrange(40, 70))
            }
            sampler.rebuild(shadow)
            continue
        key = f"s{rng.randrange(70)}" if step < 151 else rng.choice(list(shadow))
        weight = rng.randrange(0, 9)
        sampler.update(key, weight)
        if weight:
            shadow[key] = weight
        else:
            shadow.pop(key, None)
    if not shadow:  # pragma: no cover - the script above keeps keys alive
        shadow = {"fallback": 1}
        sampler.rebuild(shadow)
    assert sampler.total == sum(shadow.values())
    assert sampler.weights() == shadow
    draw_rng = random.Random(97)
    observed = Counter(sampler.sample(draw_rng) for _ in range(20_000))
    p_value = chi_square_gof(observed, shadow)
    assert p_value > ALPHA, (strategy, p_value)


def test_ks_statistic_measures_between_distinct_values_only():
    # Interaction counts tie often at small n; the gap must be measured
    # after both CDFs step past a shared value, never mid-tie.
    assert ks_statistic([1], [1]) == 0.0
    assert ks_statistic([5, 5, 5], [5, 5, 5]) == 0.0
    assert ks_statistic([1, 2], [1, 2]) == 0.0
    assert ks_statistic([1], [2]) == 1.0
    assert ks_statistic([1, 1, 2], [1, 2, 2]) == pytest.approx(1 / 3)


def test_chi_square_harness_rejects_a_broken_distribution():
    # The harness itself must have power: draws from visibly wrong weights
    # (uniform instead of linear) must be rejected decisively.
    weights = {index: index + 1 for index in range(20)}
    rng = random.Random(5)
    observed = Counter(rng.randrange(20) for _ in range(20_000))
    assert chi_square_gof(observed, weights) < 1e-12


# --------------------------------------------------------------------------
# Fenwick differential: prefix sums vs a naive list under random mutations
# --------------------------------------------------------------------------


def test_fenwick_prefix_sums_match_naive_list_under_mutations():
    rng = random.Random(31337)
    fenwick = FenwickSampler()
    naive = {}
    keys = [f"m{index}" for index in range(90)]
    for step in range(1_000):
        if step % 211 == 210:
            naive = {key: rng.randrange(1, 12) for key in rng.sample(keys, 25)}
            fenwick.rebuild(naive)
        else:
            key = rng.choice(keys)
            weight = rng.randrange(0, 10)
            fenwick.update(key, weight)
            if weight:
                naive[key] = weight
            else:
                naive.pop(key, None)
        assert fenwick.total == sum(naive.values()), step
        assert fenwick.weights() == naive, step
        # Every prefix sum must match a brute-force accumulation over the
        # tree's own slot order (dead slots included — they contribute 0).
        accumulated = 0
        for slot in range(len(fenwick._keys)):
            accumulated += fenwick._leaf[slot]
            assert fenwick._prefix(slot + 1) == accumulated, (step, slot)


def test_fenwick_compacts_dead_slots():
    fenwick = FenwickSampler({index: 1 for index in range(100)})
    for index in range(70):
        fenwick.update(index, 0)
    # Once more than half the slots died the structure compacted (dead keys
    # zeroed afterwards stay as dead slots until the next threshold).
    assert len(fenwick._keys) < 100
    assert fenwick.total == 30
    assert fenwick.weights() == {index: 1 for index in range(70, 100)}


# --------------------------------------------------------------------------
# Cross-strategy equivalence: identical sequences when static, KS when not
# --------------------------------------------------------------------------


def test_static_weight_draw_sequences_are_identical_across_strategies():
    # The canonical draw contract: same weights + same stream => the same
    # key sequence from every strategy, bit for bit.
    weights = _wide_weights(80)
    sequences = []
    for strategy in STRATEGIES:
        sampler = make_sampler(strategy, dict(weights))
        rng = random.Random(7)
        sequences.append([sampler.sample(rng) for _ in range(4_000)])
    assert sequences[0] == sequences[1] == sequences[2]


def test_static_protocol_interaction_sequences_identical_across_strategies():
    # End to end: a pruning-regime protocol whose transitions swap the two
    # keys never changes the configuration, so the pair-weight table stays
    # static and the full applied-event sequence must agree across
    # strategies for one seed (12 keys -> 144 pair types, above the alias
    # small-table threshold).
    sequences = {}
    for strategy in STRATEGIES:
        events = []
        hook = CallbackHook(
            on_batch_event=lambda sim, a, b, na, nb: events.append((a, b))
        )
        result = simulate(
            StaticTableProtocol(keys=12),
            128,
            seed=5,
            backend="batch",
            sampler=strategy,
            max_interactions=3_000,
            hooks=[hook],
        )
        assert result.interactions == 3_000
        sequences[strategy] = events
    assert sequences["scan"] == sequences["alias"] == sequences["fenwick"]
    assert len(sequences["scan"]) == 3_000


@pytest.mark.stats
def test_backup_exact_convergence_distributions_match_across_strategies():
    # Under churn the strategies' draw paths legitimately diverge (slot
    # orders drift), so the claim becomes statistical: the convergence-time
    # laws of backup-exact must be indistinguishable across strategies.
    n = 96
    samples = 30

    def convergence_times(strategy, offset):
        times = []
        for seed in range(samples):
            result = simulate(
                ExactBackupProtocol(),
                n,
                seed=offset + seed,
                backend="batch",
                sampler=strategy,
                convergence=all_outputs_equal(n),
                check_interval=n,
                confirm_checks=1,
                max_interactions=3_000_000,
            )
            assert result.converged, (strategy, seed)
            times.append(result.convergence_interaction)
        return times

    by_strategy = {
        strategy: convergence_times(strategy, 1_000 * index)
        for index, strategy in enumerate(STRATEGIES)
    }
    for first in STRATEGIES:
        for second in STRATEGIES:
            if first >= second:
                continue
            statistic = ks_statistic(by_strategy[first], by_strategy[second])
            p_value = ks_pvalue(statistic, samples, samples)
            assert p_value > ALPHA, (first, second, statistic, p_value)


# --------------------------------------------------------------------------
# The auto heuristic (regression): churn ends on Fenwick, static on alias
# --------------------------------------------------------------------------


def test_auto_switches_to_fenwick_on_weight_churn():
    # backup-exact churns the pair table on nearly every event; once the
    # table is wide enough the alias strategy thrashes and auto must have
    # switched to the Fenwick tree by the end of the run.
    result = simulate(
        ExactBackupProtocol(),
        256,
        seed=11,
        backend="batch",
        sampler="auto",
        # Pin the Python hot loop: with accel="auto" on a NumPy machine the
        # pruning regime runs the factorised kernel and never consults the
        # alias/Fenwick heuristic under test here.
        accel="python",
        max_interactions=150_000,
    )
    stats = result.extra["sampler"]
    assert stats["requested"] == "auto"
    assert stats["regime"] == "pruning"
    assert stats["strategy"] == "fenwick"
    assert stats["switched"] is True
    assert stats["retired"][0]["strategy"] == "alias"
    assert stats["retired"][0]["builds"] >= AliasSampler.CHURN_BUILDS


def test_auto_stays_on_alias_for_static_weights():
    # A static pair table never invalidates the alias table: one build, an
    # unbounded run of table draws, no reason to switch.
    result = simulate(
        StaticTableProtocol(keys=12),
        128,
        seed=3,
        backend="batch",
        sampler="auto",
        accel="python",  # the alias-vs-Fenwick heuristic is Python-path-only
        max_interactions=20_000,
    )
    stats = result.extra["sampler"]
    assert stats["requested"] == "auto"
    assert stats["strategy"] == "alias"
    assert stats["switched"] is False
    assert stats["builds"] == 1
    assert stats["table_draws"] == 20_000


def test_forced_strategies_are_respected_and_reported():
    for strategy in STRATEGIES:
        result = simulate(
            ExactBackupProtocol(),
            64,
            seed=2,
            backend="batch",
            sampler=strategy,
            max_interactions=5_000,
        )
        stats = result.extra["sampler"]
        assert stats["requested"] == strategy
        assert stats["strategy"] == strategy
        assert stats["switched"] is False


# --------------------------------------------------------------------------
# The alias fallback re-probe counter (PR 4 fix)
# --------------------------------------------------------------------------


def test_alias_fallback_scan_counter_resets_on_rebuild():
    sampler = AliasSampler(_wide_weights(40))
    rng = random.Random(0)
    # Eight dirty draws in a row: every one rebuilds (one draw per build),
    # which is exactly the thrash signature.
    for index in range(AliasSampler.CHURN_BUILDS):
        sampler.update("k0", 100 + index)
        sampler.sample(rng)
    assert sampler.builds == AliasSampler.CHURN_BUILDS
    assert sampler.thrashing
    # Churning: dirty draws now fall back to scans ...
    sampler.update("k0", 7)
    for index in range(AliasSampler.REPROBE_PERIOD - 1):
        sampler.sample(rng)
        sampler.update("k0", 8 + index % 3)
    assert sampler.builds == AliasSampler.CHURN_BUILDS
    assert sampler.scans == AliasSampler.REPROBE_PERIOD - 1
    # ... and the REPROBE_PERIOD-th re-probes a rebuild, which must reset
    # the streak counter so the next churn era gets a full-period cadence
    # (the counter used to carry over and misalign future re-probes).
    sampler.sample(rng)
    assert sampler.builds == AliasSampler.CHURN_BUILDS + 1
    assert sampler.scans == 0


# --------------------------------------------------------------------------
# Knob plumbing and validation
# --------------------------------------------------------------------------


def test_unknown_sampler_names_are_rejected_everywhere():
    with pytest.raises(ConfigurationError):
        make_sampler("bogus")
    with pytest.raises(ConfigurationError):
        Simulator(ExactBackupProtocol(), 8, backend="batch", sampler="bogus")
    with pytest.raises(ConfigurationError):
        simulate(ExactBackupProtocol(), 8, backend="batch", sampler="vose")


def test_sampler_names_cover_all_strategies():
    assert set(STRATEGIES) < set(SAMPLER_NAMES)
    assert "auto" in SAMPLER_NAMES


def test_agent_backend_accepts_but_ignores_the_sampler_knob():
    # Mixed agent/batch scenario grids share one spec, so the agent backend
    # must accept any valid knob value without reporting sampler stats.
    result = simulate(
        ExactBackupProtocol(), 16, seed=0, backend="agent", sampler="fenwick",
        max_interactions=500,
    )
    assert "sampler" not in result.extra


def test_sampler_rejects_negative_weights_and_empty_draws():
    sampler = ScanSampler({"a": 1})
    with pytest.raises(ConfigurationError):
        sampler.update("a", -1)
    sampler.update("a", 0)
    with pytest.raises(ConfigurationError):
        sampler.sample(random.Random(0))
    with pytest.raises(ConfigurationError):
        FenwickSampler({"a": -2})


def test_dense_regime_reports_sampler_stats():
    # A protocol with the conservative can_interaction_change runs the dense
    # regime; the sampler record must say so.
    from repro.experiments.registry import resolve_protocol

    entry = resolve_protocol("approximate")
    result = simulate(
        entry.build(64, {}), 64, seed=1, backend="batch", sampler="fenwick",
        max_interactions=2_000,
    )
    stats = result.extra["sampler"]
    assert stats["regime"] == "dense"
    assert stats["strategy"] == "fenwick"
    assert stats["draws"] >= 2_000  # two participants per interaction


def test_spec_layers_carry_the_sampler_knob():
    from repro.experiments.spec import SweepSpec
    from repro.scenarios.spec import ScenarioSpec

    sweep = SweepSpec(
        name="s", protocol="backup-exact", ns=[16], sampler="fenwick"
    )
    assert SweepSpec.from_json(sweep.to_json()).sampler == "fenwick"
    with pytest.raises(ConfigurationError):
        SweepSpec(name="s", protocol="backup-exact", ns=[16], sampler="nope")

    scenario = ScenarioSpec(
        name="c",
        protocol="backup-exact",
        ns=[16],
        sampler="fenwick",
        events=[{"kind": "restart", "at_interactions": 10}],
    )
    assert ScenarioSpec.from_json(scenario.to_json()).sampler == "fenwick"
    with pytest.raises(ConfigurationError):
        ScenarioSpec(
            name="c",
            protocol="backup-exact",
            ns=[16],
            sampler="nope",
            events=[{"kind": "restart", "at_interactions": 10}],
        )


def test_sweep_payload_threads_the_sampler_to_workers():
    from repro.experiments.runner import cell_payload, execute_cell
    from repro.experiments.spec import SweepSpec

    spec = SweepSpec(
        name="s",
        protocol="backup-exact",
        ns=[16],
        seeds_per_cell=1,
        backend="batch",
        sampler="fenwick",
        max_checks=10,
    )
    payload = cell_payload(spec, spec.cells()[0])
    assert payload["sampler"] == "fenwick"
    record = execute_cell(payload)
    assert record["error"] is None
    assert record["runs"][0]["extra"]["sampler"]["strategy"] == "fenwick"

"""Unit tests for convergence predicates (sequence and histogram forms)."""

from collections import Counter

import pytest

from repro.engine.convergence import (
    ConvergenceTracker,
    all_outputs_equal,
    all_outputs_satisfy,
    fraction_outputs_satisfy,
    output_items,
    outputs_in,
    total_outputs,
)


def test_all_outputs_equal_on_sequences_and_histograms():
    predicate = all_outputs_equal()
    assert predicate([3, 3, 3])
    assert not predicate([3, 3, 4])
    assert not predicate([])
    assert predicate(Counter({3: 10}))
    assert not predicate(Counter({3: 9, 4: 1}))
    assert not predicate(Counter())
    # Zero-count entries (Counters keep them after subtraction) are ignored.
    assert predicate(Counter({3: 10, 4: 0}))


def test_all_outputs_equal_with_target():
    predicate = all_outputs_equal(1)
    assert predicate([1, 1])
    assert not predicate([2, 2])
    assert predicate(Counter({1: 5}))
    assert not predicate(Counter({2: 5}))


def test_all_outputs_satisfy_both_forms():
    predicate = all_outputs_satisfy(lambda value: value >= 0)
    assert predicate([0, 1, 2])
    assert not predicate([0, -1])
    assert predicate(Counter({0: 3, 5: 2}))
    assert not predicate(Counter({0: 3, -2: 1}))
    assert not predicate([])


def test_fraction_outputs_satisfy_counts_multiplicities():
    predicate = fraction_outputs_satisfy(lambda value: value == 1, 0.75)
    assert predicate([1, 1, 1, 0])
    assert not predicate([1, 1, 0, 0])
    assert predicate(Counter({1: 75, 0: 25}))
    assert not predicate(Counter({1: 74, 0: 26}))
    with pytest.raises(ValueError):
        fraction_outputs_satisfy(lambda value: True, 0.0)


def test_outputs_in_both_forms():
    predicate = outputs_in({4, 5})
    assert predicate([4, 5, 4])
    assert not predicate([4, 6])
    assert predicate(Counter({4: 2, 5: 8}))
    assert not predicate(Counter({4: 2, 6: 1}))


def test_output_items_and_total_outputs():
    assert list(output_items([1, 1, 2])) == [(1, 1), (1, 1), (2, 1)]
    assert sorted(output_items(Counter({1: 2, 2: 1, 3: 0}))) == [(1, 2), (2, 1)]
    assert total_outputs([1, 2, 3]) == 3
    assert total_outputs(Counter({1: 2, 2: 1, 3: 0})) == 3


def test_convergence_tracker_streaks():
    tracker = ConvergenceTracker()
    tracker.record(1, True)
    tracker.record(11, True)
    assert tracker.current_streak == 2
    assert tracker.convergence_interaction == 1
    tracker.record(21, False)
    assert not tracker.currently_satisfied
    assert tracker.current_streak == 0
    tracker.record(31, True)
    assert tracker.convergence_interaction == 31
    assert tracker.ever_satisfied
    assert tracker.checks == 4
    assert tracker.satisfied_checks == 3

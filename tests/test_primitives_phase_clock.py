"""Unit tests for the junta-driven phase clock (Section 2, Lemma 5)."""

import pytest

from repro.engine import simulate
from repro.engine.errors import ConfigurationError
from repro.primitives.phase_clock import (
    DEFAULT_CLOCK_MODULUS,
    JuntaPhaseClockProtocol,
    PhaseClockState,
    phase_clock_update,
)


def test_phase_clock_adopts_larger_hour_within_half_window():
    state = PhaseClockState(clock=2)
    ticked = phase_clock_update(state, partner_clock=5, is_junta=False, modulus=16)
    assert not ticked
    assert state.clock == 5
    assert state.phase == 0


def test_phase_clock_ignores_hours_more_than_half_ahead():
    state = PhaseClockState(clock=2)
    # (partner - clock) % 16 = 13 > 8: treated as "behind", no adoption.
    phase_clock_update(state, partner_clock=15, is_junta=False, modulus=16)
    assert state.clock == 2


def test_junta_member_advances_on_equal_hours_and_ticks_at_wraparound():
    state = PhaseClockState(clock=15)
    ticked = phase_clock_update(state, partner_clock=15, is_junta=True, modulus=16)
    assert ticked
    assert state.clock == 0
    assert state.phase == 1
    assert state.first_tick


def test_adoption_across_boundary_counts_as_tick():
    state = PhaseClockState(clock=14)
    ticked = phase_clock_update(state, partner_clock=1, is_junta=False, modulus=16)
    assert ticked
    assert state.clock == 1
    assert state.phase == 1


def test_non_junta_agent_never_self_advances():
    state = PhaseClockState(clock=7)
    ticked = phase_clock_update(state, partner_clock=7, is_junta=False, modulus=16)
    assert not ticked
    assert state.clock == 7


def test_modulus_validation():
    with pytest.raises(ConfigurationError):
        phase_clock_update(PhaseClockState(), 0, False, modulus=3)
    with pytest.raises(ConfigurationError):
        JuntaPhaseClockProtocol(modulus=2)


def test_phase_clock_protocol_phases_advance():
    protocol = JuntaPhaseClockProtocol(modulus=DEFAULT_CLOCK_MODULUS)
    result = simulate(protocol, 24, seed=6, max_interactions=40_000)
    phases = list(result.output_counts)
    assert max(phases) >= 1  # at least one full clock revolution happened
    assert sum(result.output_counts.values()) == 24


def test_phase_clock_reset():
    state = PhaseClockState(clock=5, phase=2, first_tick=True)
    state.reset()
    assert (state.clock, state.phase, state.first_tick) == (0, 0, False)

"""Tests for the dynamic-population chaos subsystem.

Covers the engine-layer dynamics (churn on both backends, timeline
segments, recovery accounting, wall-time budgets), the scenario package
(spec round-trips, event expansion, fault models, invariants, the runner),
and the agent/batch equivalence of reconvergence-time distributions after
identical churn (KS-style, mirroring the static-population equivalence
tests).
"""

import json
import os
import random
from collections import Counter

import pytest

from repro.counting.backup import ExactBackupProtocol
from repro.engine import (
    BiasedScheduler,
    ConfigurationError,
    PartitionedScheduler,
    SimulationError,
    Simulator,
    TimelineEvent,
    all_outputs_equal,
    accuracy_fraction,
    outputs_within_spread,
    simulate,
)
from repro.engine.metrics import InteractionCounter
from repro.experiments.builtin import resolve_builtin
from repro.experiments.plot import ascii_loglog, render_sweep_plot, sweep_plot_points
from repro.experiments.registry import resolve_protocol
from repro.experiments.runner import SweepRunner, execute_cell
from repro.experiments.spec import BudgetPolicy, SweepSpec
from repro.primitives.epidemic import OneWayEpidemic
from repro.primitives.load_balancing import ClassicalLoadBalancing
from repro.scenarios import (
    EventSpec,
    completed_cell_ids,
    merge_cells,
    ScenarioRunner,
    ScenarioSpec,
    build_document,
    builtin_scenarios,
    execute_scenario_cell,
    expand_events,
    resolve_fault,
    resolve_invariant,
)


# --------------------------------------------------------------------------
# Engine layer: dynamic populations
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_join_leave_replace_bookkeeping(backend):
    simulator = Simulator(OneWayEpidemic(), 16, seed=1, backend=backend)
    rng = random.Random(7)
    simulator.backend.join(8)
    assert simulator.n == 24
    assert sum(simulator.state_key_counts().values()) == 24
    # Joiners get late agent ids, i.e. the uninformed initial state.
    assert simulator.state_key_counts()[0] >= 8
    simulator.backend.leave(10, rng)
    assert simulator.n == 14
    assert sum(simulator.state_key_counts().values()) == 14
    simulator.backend.replace(14, rng)  # full crash-rejoin keeps n
    assert simulator.n == 14
    counts = simulator.state_key_counts()
    assert sum(counts.values()) == 14
    # After replacing everyone, only fresh (uninformed) agents remain.
    assert counts == Counter({0: 14})


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_leave_refuses_to_empty_population(backend):
    simulator = Simulator(OneWayEpidemic(), 4, seed=0, backend=backend)
    with pytest.raises(ConfigurationError):
        simulator.backend.leave(3, random.Random(0))


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_restart_population_recounts_at_new_size(backend):
    # The acceptance shape of the headline scenario, in miniature: exact
    # counting converges, 25% of the agents leave with their tokens, the
    # survivors restart, and the protocol re-counts the *new* n exactly.
    def churn(sim):
        details = sim.backend.leave(16, random.Random(3))
        details.update(sim.backend.restart_population())
        return details

    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=5,
        backend=backend,
        max_interactions=120_000,
        convergence_factory=lambda sim: all_outputs_equal(sim.n),
        timeline=[TimelineEvent(at=40_000, kind="leave", apply=churn)],
        check_interval=64,
    )
    assert result.n == 48
    assert result.converged
    assert result.consensus_output == 48
    assert result.extra["initial_n"] == 64
    event = result.extra["timeline"][0]
    assert event["fired"] and event["n_after"] == 48
    assert event["reconverged"]
    assert event["recovery_interactions"] > 0
    segments = result.extra["segments"]
    assert [seg["n"] for seg in segments] == [64, 48]
    assert segments[0]["converged"]  # counted 64 before the churn


def test_counter_swap_removal():
    counter = InteractionCounter(3)
    counter.record(0, 2)
    counter.record(1, 2)
    counter.remove_agent(0)  # agent 2's counts move into slot 0
    assert counter.per_agent == [2, 1]
    counter.add_agent()
    assert counter.per_agent == [2, 1, 0]
    assert counter.min_participation == 0


def test_timeline_events_beyond_budget_are_reported_unfired():
    result = simulate(
        OneWayEpidemic(),
        8,
        seed=0,
        max_interactions=100,
        timeline=[
            TimelineEvent(at=50, kind="join", apply=lambda sim: sim.backend.join(2)),
            TimelineEvent(at=500, kind="join", apply=lambda sim: sim.backend.join(2)),
        ],
    )
    fired = {record["at"]: record["fired"] for record in result.extra["timeline"]}
    assert fired == {50: True, 500: False}
    assert result.n == 10


def test_batch_terminal_configuration_skips_to_next_event():
    # The epidemic completes and the batch backend proves terminality; the
    # frozen window up to the join event is skipped exactly, and the joiners
    # re-activate the chain.
    result = simulate(
        OneWayEpidemic(),
        16,
        seed=2,
        backend="batch",
        max_interactions=50_000,
        convergence=all_outputs_equal(1),
        stop_when_converged=False,
        timeline=[
            TimelineEvent(at=20_000, kind="join", apply=lambda sim: sim.backend.join(8))
        ],
        check_interval=16,
    )
    assert result.n == 24
    assert result.stopped_reason == "terminal"
    assert result.converged  # the epidemic re-closed over the joiners
    assert result.output_counts == Counter({1: 24})


def test_early_stop_waits_for_final_segment():
    # The predicate holds long before the event, but the run must keep going
    # into the scheduled disturbance instead of stopping early.
    result = simulate(
        OneWayEpidemic(source_count=8),
        8,
        seed=0,
        max_interactions=2_000,
        convergence=all_outputs_equal(1),
        check_interval=10,
        confirm_checks=1,
        timeline=[
            TimelineEvent(at=1_000, kind="join", apply=lambda sim: sim.backend.join(4))
        ],
    )
    assert result.extra["timeline"][0]["fired"]
    assert result.n == 12
    assert result.interactions > 1_000


def test_convergence_and_factory_are_mutually_exclusive():
    simulator = Simulator(OneWayEpidemic(), 8, seed=0)
    with pytest.raises(ConfigurationError):
        simulator.run(
            max_interactions=10,
            convergence=all_outputs_equal(1),
            convergence_factory=lambda sim: all_outputs_equal(1),
        )


def test_wall_time_budget_stops_run():
    result = simulate(
        ExactBackupProtocol(),
        256,
        seed=0,
        max_interactions=10**9,
        max_wall_time_s=0.05,
        check_interval=256,
        convergence=all_outputs_equal(10**9),  # unsatisfiable
    )
    assert result.stopped_reason == "wall-time"
    assert result.extra["wall_time_exceeded"]


# --------------------------------------------------------------------------
# Agent/batch equivalence under churn (KS-style)
# --------------------------------------------------------------------------


from repro.engine.stats import ks_statistic as _ks_statistic  # noqa: E402  (shared statistical harness)


@pytest.mark.stats
def test_reconvergence_time_distributions_match_across_backends():
    # Identical churn (16 uninformed joiners at t=600) on both backends; the
    # recovery-time distributions after the event must be compatible.
    n = 32
    samples = 40

    def recovery(backend, seed):
        result = simulate(
            OneWayEpidemic(),
            n,
            seed=seed,
            backend=backend,
            convergence=all_outputs_equal(1),
            check_interval=1,
            confirm_checks=1,
            max_interactions=10_000,
            timeline=[
                TimelineEvent(
                    at=600, kind="join", apply=lambda sim: sim.backend.join(16)
                )
            ],
        )
        assert result.converged and result.n == 48
        return result.extra["segments"][-1]["recovery_interactions"]

    agent_times = [recovery("agent", seed) for seed in range(samples)]
    batch_times = [recovery("batch", 1000 + seed) for seed in range(samples)]
    statistic = _ks_statistic(agent_times, batch_times)
    # Critical value at alpha = 0.01 for 40-vs-40 samples is ~0.364.
    assert statistic < 0.364, (statistic, agent_times, batch_times)


# --------------------------------------------------------------------------
# Schedulers
# --------------------------------------------------------------------------


def test_partitioned_scheduler_respects_blocks():
    scheduler = PartitionedScheduler(blocks=3)
    rng = random.Random(0)
    for _ in range(500):
        a, b = scheduler.next_pair(17, rng, 0)
        assert a != b
        assert a % 3 == b % 3
    scheduler.set_blocks(1)
    seen = {scheduler.next_pair(4, rng, 0) for _ in range(300)}
    assert len(seen) == 12  # all ordered pairs of 4 agents


def test_partitioned_scheduler_rejects_too_fine_partitions():
    scheduler = PartitionedScheduler(blocks=8)
    with pytest.raises(SimulationError):
        scheduler.next_pair(8, random.Random(0), 0)


def test_biased_scheduler_oversamples_hubs():
    scheduler = BiasedScheduler(hubs=2, weight=10.0)
    rng = random.Random(1)
    hits = Counter()
    for _ in range(4000):
        a, b = scheduler.next_pair(20, rng, 0)
        assert a != b
        hits[a] += 1
    hub_rate = (hits[0] + hits[1]) / 4000
    # Expected hub mass: 20 / 38 ~ 0.53 (vs 0.10 uniform).
    assert hub_rate > 0.35


def test_partition_isolates_and_merge_heals():
    spec_events = [
        EventSpec(kind="partition", at_interactions=0, blocks=2),
        EventSpec(kind="merge", at_interactions=2_000),
    ]
    timeline = expand_events(spec_events, 16, {}, seed=0)
    simulator = Simulator(
        OneWayEpidemic(), 16, seed=3, scheduler=PartitionedScheduler()
    )
    result = simulator.run(
        max_interactions=8_000,
        convergence=all_outputs_equal(1),
        check_interval=16,
        timeline=timeline,
    )
    assert result.converged
    segments = result.extra["segments"]
    # While split, the odd residue class can never learn the value.
    assert not segments[1]["converged"]
    assert segments[2]["converged"]


# --------------------------------------------------------------------------
# Fault models and invariants
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_reset_fault_uninforms_agents(backend):
    simulator = Simulator(OneWayEpidemic(source_count=16), 16, seed=0, backend=backend)
    details = resolve_fault("reset").apply(simulator, 4, random.Random(2))
    assert details["victims"] == 4
    assert simulator.output_counts() == Counter({1: 12, 0: 4})


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_clone_fault_breaks_token_conservation(backend):
    simulator = Simulator(ClassicalLoadBalancing([64]), 8, seed=1, backend=backend)
    token_sum = resolve_invariant("token-sum")
    before = token_sum.compute(simulator.protocol, simulator.state_key_counts())
    assert before == 64
    rng = random.Random(0)
    for _ in range(20):  # clone until a duplication actually lands
        resolve_fault("clone").apply(simulator, 2, rng)
        after = token_sum.compute(simulator.protocol, simulator.state_key_counts())
        if after != before:
            break
    assert after != before


def test_invariant_registry_errors():
    with pytest.raises(ConfigurationError):
        resolve_invariant("no-such-invariant")
    with pytest.raises(ConfigurationError):
        resolve_invariant("token-sum").compute(OneWayEpidemic(), Counter({0: 4}))


def test_accuracy_fraction_counts_value_wise():
    assert accuracy_fraction(Counter({5: 9, 4: 1}), all_outputs_equal(5)) == 0.9
    assert accuracy_fraction([1, 1, 2, 3], all_outputs_equal(1)) == 0.5
    # Whole-population predicates are vacuous on singletons; the metric must
    # refuse them instead of reporting a fabricated 1.0.
    assert accuracy_fraction(Counter({0: 99, 1000: 1}), outputs_within_spread(1)) is None


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_fault_changed_counts_actual_key_changes(backend):
    # Resetting the whole untouched population only changes the one source
    # agent's key — both backends must report the same `changed` accounting.
    simulator = Simulator(OneWayEpidemic(source_count=1), 8, seed=0, backend=backend)
    details = resolve_fault("reset").apply(simulator, 8, random.Random(1))
    assert details["changed"] == 1


# --------------------------------------------------------------------------
# Scenario specs, expansion, runner
# --------------------------------------------------------------------------


def _tiny_spec(**overrides):
    base = dict(
        name="tiny",
        protocol="backup-exact",
        ns=[16],
        seeds_per_cell=1,
        backends=["agent", "batch"],
        budget=BudgetPolicy(factor=24.0, n_exponent=2.0, log_exponent=0.0),
        events=[
            EventSpec(
                kind="leave",
                at=BudgetPolicy(factor=8.0, n_exponent=2.0, log_exponent=0.0),
                fraction=0.25,
                restart=True,
            )
        ],
        invariants=["population", "token-sum"],
        max_checks=200,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_scenario_spec_round_trips_through_json():
    spec = _tiny_spec(param_grid={"churn": [0.1, 0.2]})
    clone = ScenarioSpec.from_json(spec.to_json())
    assert clone == spec
    assert [cell.cell_id for cell in clone.cells()] == [
        cell.cell_id for cell in spec.cells()
    ]


def test_scenario_cells_cover_grid_backends_and_param_grid():
    spec = _tiny_spec(ns=[16, 32], param_grid={"churn": [0.1, 0.2]})
    cells = spec.cells()
    assert len(cells) == 2 * 2 * 2  # params x ns x backends
    ids = {cell.cell_id for cell in cells}
    assert "backup-exact-churn=0.1-n16-agent" in ids
    assert all(len(cell.seeds) == 1 for cell in cells)


def test_event_spec_validation():
    with pytest.raises(ConfigurationError):
        EventSpec(kind="shrink", at_interactions=5)
    with pytest.raises(ConfigurationError):
        # A typo'd fault model must fail at spec time, not mid-simulation.
        EventSpec(kind="corrupt", at_interactions=5, fraction=0.1, fault="rest")
    with pytest.raises(ConfigurationError):
        EventSpec(kind="leave", at_interactions=5)  # no magnitude
    with pytest.raises(ConfigurationError):
        EventSpec(kind="leave", fraction=0.5)  # no time
    with pytest.raises(ConfigurationError):
        EventSpec(kind="leave", at_interactions=5, fraction=1.5)
    with pytest.raises(ConfigurationError):
        EventSpec(kind="corrupt", at_interactions=5, fraction=0.1, repeat=3)
    with pytest.raises(ConfigurationError):
        EventSpec(kind="restart", at_interactions=5, restart=True)


def test_partition_scenarios_require_agent_backend():
    with pytest.raises(ConfigurationError):
        _tiny_spec(
            events=[EventSpec(kind="partition", at_interactions=0)],
            backends=["agent", "batch"],
        )


def test_fraction_parameter_reference_resolves_from_params():
    events = [EventSpec(kind="join", at_interactions=10, fraction="churn")]
    timeline = expand_events(events, 16, {"churn": 0.5}, seed=0)
    assert len(timeline) == 1
    with pytest.raises(ConfigurationError):
        expand_events(events, 16, {}, seed=0)


def test_periodic_events_expand_into_occurrences():
    events = [
        EventSpec(
            kind="corrupt",
            fault="reset",
            at_interactions=100,
            every=BudgetPolicy(factor=2.0, n_exponent=1.0, log_exponent=0.0),
            repeat=3,
            fraction=0.1,
            label="storm",
        )
    ]
    timeline = expand_events(events, 50, {}, seed=0)
    assert [event.at for event in timeline] == [100, 200, 300]
    assert [event.label for event in timeline] == ["storm#1", "storm#2", "storm#3"]


def test_execute_scenario_cell_records_recovery_on_both_backends():
    spec = _tiny_spec()
    for cell in spec.cells():
        record = execute_scenario_cell(
            {
                "cell_id": cell.cell_id,
                "n": cell.n,
                "backend": cell.backend,
                "params": dict(cell.params),
                "seeds": list(cell.seeds),
                "spec": spec.to_dict(),
            }
        )
        assert record["error"] is None, record["error"]
        stats = record["stats"]
        assert stats["recovered_runs"] == 1
        assert stats["post_accuracy"]["mean"] == 1.0
        run = record["runs"][0]
        assert run["n"] == 12  # 16 - 25%
        assert run["consensus_output"] == 12
        # Token conservation holds at every measured boundary.
        for measurement in run["invariants"]:
            values = measurement["values"]
            assert values["token-sum"] == values["population"]


def test_undisturbed_runs_do_not_count_as_recovered():
    # The event lands beyond the budget, so no disturbance ever fires; the
    # run converges undisturbed, which must not read as churn recovery.
    spec = _tiny_spec(
        backends=["batch"],
        events=[
            EventSpec(
                kind="leave",
                at=BudgetPolicy(factor=99.0, n_exponent=2.0, log_exponent=0.0),
                fraction=0.25,
            )
        ],
        budget=BudgetPolicy(factor=24.0, n_exponent=2.0, log_exponent=0.0),
    )
    cell = spec.cells()[0]
    record = execute_scenario_cell(
        {
            "cell_id": cell.cell_id,
            "n": cell.n,
            "backend": cell.backend,
            "params": {},
            "seeds": list(cell.seeds),
            "spec": spec.to_dict(),
        }
    )
    assert record["error"] is None
    stats = record["stats"]
    assert stats["recovered_runs"] == 0
    assert stats["undisturbed_runs"] == 1
    assert stats["recovery_interactions"] is None


def test_scenario_runner_and_document_build():
    spec = _tiny_spec(backends=["batch"])
    runner = ScenarioRunner(spec, workers=1)
    cells = runner.run()
    document = build_document(spec, cells, workers=1)
    assert document["artifact"] == "scenario"
    assert document["failed_cells"] == []
    assert document["cells"][0]["backend"] == "batch"
    # The spec embedded in the artifact reconstructs the scenario.
    assert ScenarioSpec.from_dict(document["spec"]) == spec


def test_scenario_cell_timeout_produces_clean_failure():
    spec = _tiny_spec(
        backends=["agent"],
        ns=[128],
        budget=BudgetPolicy(factor=10_000.0, n_exponent=2.0, log_exponent=0.0),
        events=[
            EventSpec(
                kind="leave",
                at=BudgetPolicy(factor=9_999.0, n_exponent=2.0, log_exponent=0.0),
                fraction=0.5,
            )
        ],
        cell_timeout_s=0.05,
    )
    cell = spec.cells()[0]
    record = execute_scenario_cell(
        {
            "cell_id": cell.cell_id,
            "n": cell.n,
            "backend": cell.backend,
            "params": {},
            "seeds": list(cell.seeds),
            "spec": spec.to_dict(),
        }
    )
    assert record["error"] is not None
    assert "wall-time budget" in record["error"]


def test_builtin_scenarios_construct_and_headline_exists():
    scenarios = builtin_scenarios()
    assert "recount-churn" in scenarios
    assert "recount-smoke" in scenarios
    headline = scenarios["recount-churn"]
    assert headline.backends == ["agent", "batch"]
    assert headline.invariants == ["population", "token-sum"]


# --------------------------------------------------------------------------
# Sweep satellites: cell timeouts, param_grid builtin, plotting
# --------------------------------------------------------------------------


def test_sweep_cell_timeout_marks_cell_failed_without_hanging():
    spec = SweepSpec(
        name="timeout-probe",
        protocol="backup-exact",
        ns=[256],
        seeds_per_cell=3,
        backend="agent",
        budget=BudgetPolicy(factor=10_000.0, n_exponent=2.0, log_exponent=0.0),
        cell_timeout_s=0.05,
    )
    payloads = SweepRunner(spec, workers=1).payloads(spec.cells())
    record = execute_cell(payloads[0])
    assert record["error"] is not None
    assert "wall-time budget" in record["error"]
    assert record["wall_time_s"] < 5.0
    # Partial runs are preserved for inspection; stats stay unset (failed).
    assert record["stats"] is None


def test_sweep_spec_rejects_bad_timeout():
    with pytest.raises(ConfigurationError):
        SweepSpec(
            name="bad", protocol="one-way-epidemic", ns=[8], cell_timeout_s=0.0
        )


def test_accuracy_grid_builtin_exercises_param_grid():
    spec = resolve_builtin("accuracy-grid")
    assert spec.param_grid
    cells = spec.cells()
    assert len(cells) == len(spec.ns) * len(spec.param_grid["clock_modulus"])
    assert any("clock_modulus=16" in cell.cell_id for cell in cells)


def test_ascii_loglog_renders_points_fit_and_legend():
    points = [(100, 1e4, "a"), (1000, 1e6, "a"), (100, 5e3, "b")]
    fit = {"coefficient": 1.0, "exponent": 2.0, "r_squared": 0.99}
    art = ascii_loglog(points, fit)
    assert "o a" in art and "x b" in art
    assert "n^2.000" in art
    assert ascii_loglog([]) == "(no plottable points)"


def test_render_sweep_plot_from_document():
    document = {
        "name": "demo",
        "fits": {"convergence_interactions": {"coefficient": 2.0, "exponent": 1.5, "r_squared": 1.0}},
        "cells": [
            {
                "cell_id": "proto-n64",
                "n": 64,
                "stats": {"convergence_interactions": {"mean": 1_000.0}},
            },
            {
                "cell_id": "proto-n256",
                "n": 256,
                "stats": {"convergence_interactions": {"mean": 9_000.0}},
            },
            {"cell_id": "broken-n64", "n": 64, "error": "boom"},
        ],
    }
    assert sweep_plot_points(document) == [
        (64.0, 1000.0, "proto"),
        (256.0, 9000.0, "proto"),
    ]
    art = render_sweep_plot(document)
    assert "demo" in art and "o proto" in art


def test_outputs_within_spread_predicate():
    predicate = outputs_within_spread(1)
    assert predicate(Counter({4: 3, 5: 2}))
    assert not predicate(Counter({3: 1, 5: 2}))
    assert not predicate([])
    with pytest.raises(ValueError):
        outputs_within_spread(-1)


# --------------------------------------------------------------------------
# Poisson arrival-process churn
# --------------------------------------------------------------------------


def _process_event(**overrides):
    fields = dict(
        kind="replace",
        rate=2.0,
        fraction=0.1,
        at=BudgetPolicy(factor=1.0, n_exponent=1.0, log_exponent=1.0),
        window=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
        label="churn-process",
    )
    fields.update(overrides)
    return EventSpec(**fields)


def test_poisson_process_expands_deterministically():
    events = [_process_event()]
    first = expand_events(events, 100, {}, seed=7)
    second = expand_events(events, 100, {}, seed=7)
    assert [event.at for event in first] == [event.at for event in second]
    assert len(first) > 1  # rate 2/n over an 8 n log n window: many arrivals
    # occurrences are ordered, inside the window, and labelled #k
    window_start = events[0].at.budget(100)
    window_end = window_start + events[0].window.budget(100)
    ats = [event.at for event in first]
    assert ats == sorted(ats)
    assert all(window_start <= at < window_end for at in ats)
    assert first[0].label == "churn-process#1"
    assert first[-1].label == f"churn-process#{len(first)}"
    # a different seed draws different arrival times
    other = expand_events(events, 100, {}, seed=8)
    assert [event.at for event in other] != ats


def test_poisson_process_expected_arrivals():
    # E[arrivals] = rate * window / n; rate 2 over 16 n log2 n at n=100
    events = [
        _process_event(
            rate=2.0,
            window=BudgetPolicy(factor=16.0, n_exponent=1.0, log_exponent=1.0),
        )
    ]
    n = 100
    expected = 2.0 * events[0].window.budget(n) / n
    draws = [len(expand_events(events, n, {}, seed=seed)) for seed in range(10)]
    mean = sum(draws) / len(draws)
    assert 0.7 * expected <= mean <= 1.3 * expected


def test_poisson_process_validation():
    with pytest.raises(ConfigurationError):  # rate only on churn kinds
        _process_event(kind="corrupt", fault="reset")
    with pytest.raises(ConfigurationError):  # rate must be positive
        _process_event(rate=0.0)
    with pytest.raises(ConfigurationError):  # a process needs its window
        _process_event(window=None)
    with pytest.raises(ConfigurationError):  # window without rate is inert
        EventSpec(
            kind="leave",
            fraction=0.1,
            at=BudgetPolicy(factor=1.0, n_exponent=1.0, log_exponent=1.0),
            window=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
        )
    with pytest.raises(ConfigurationError):  # repeat belongs to periodic events
        _process_event(repeat=3, every=BudgetPolicy(factor=1.0))


def test_poisson_process_caps_expected_arrivals():
    runaway = [
        _process_event(
            rate=1e9,
            window=BudgetPolicy(factor=64.0, n_exponent=2.0, log_exponent=0.0),
        )
    ]
    with pytest.raises(ConfigurationError, match="arrival"):
        expand_events(runaway, 1000, {}, seed=0)


def test_poisson_process_runs_through_a_scenario_cell():
    spec = _tiny_spec(
        protocol="one-way-epidemic",
        ns=[32],
        backends=["batch"],
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
        events=[
            _process_event(
                rate=1.0,
                at=BudgetPolicy(factor=4.0, n_exponent=1.0, log_exponent=1.0),
                window=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
            )
        ],
        invariants=["population"],
    )
    cell = spec.cells()[0]
    record = execute_scenario_cell(
        {
            "cell_id": cell.cell_id,
            "n": cell.n,
            "backend": cell.backend,
            "params": cell.params,
            "seeds": cell.seeds,
            "spec": spec.to_dict(),
        }
    )
    assert not record.get("error")
    run = record["runs"][0]
    fired = [event for event in run["extra"]["timeline"] if event["fired"]]
    assert fired  # the process produced at least one occurrence
    assert all(event["invariants"]["population"] == 32 for event in fired)


# --------------------------------------------------------------------------
# Clock-phase corruption fault (mod-40 residue gate)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["agent", "batch"])
def test_clock_phase_fault_desynchronises_clocks(backend):
    from repro.counting.keys import PHASE_RESIDUE_MODULUS

    simulator = Simulator(
        resolve_protocol("approximate-stable").build(24, {}), 24, seed=3, backend=backend
    )
    simulator.run(max_interactions=2_000)

    def phase_histogram():
        counts = Counter()
        for key, multiplicity in simulator.state_key_counts().items():
            counts[key[1][1]] += multiplicity
        return counts

    before = phase_histogram()
    details = resolve_fault("clock-phase-corruption").apply(
        simulator, 8, random.Random(5)
    )
    assert details["victims"] == 8
    assert details["changed"] == 8  # a non-zero shift always changes the key
    after = phase_histogram()
    assert sum(after.values()) == 24
    assert after != before  # residues actually moved
    # healthy clocks stay within one phase of each other (Lemma 5); the
    # corrupted population spans a wider residue range.
    assert len(after) > len(before)


def test_clock_phase_fault_requires_a_phase_clock():
    simulator = Simulator(OneWayEpidemic(), 16, seed=0, backend="batch")
    with pytest.raises(ConfigurationError, match="phase-clock"):
        resolve_fault("clock-phase-corruption").apply(simulator, 4, random.Random(0))


# --------------------------------------------------------------------------
# Error-flags invariant and the stable-detect builtin
# --------------------------------------------------------------------------


def test_error_flags_invariant_counts_raised_flags():
    protocol = resolve_protocol("approximate-stable").build(16, {})
    invariant = resolve_invariant("error-flags")
    healthy = protocol.initial_state(0)
    flagged = protocol.initial_state(1)
    flagged.error = True
    counts = Counter(
        {protocol.state_key(healthy): 5, protocol.state_key(flagged): 3}
    )
    assert invariant.compute(protocol, counts) == 3
    with pytest.raises(ConfigurationError, match="stable hybrid"):
        invariant.compute(OneWayEpidemic(), Counter())


def test_stable_detect_builtin_is_well_formed():
    spec = builtin_scenarios()["stable-detect"]
    assert spec.protocol == "approximate-stable"
    assert "error-flags" in spec.invariants
    kinds = [event.kind for event in spec.events]
    assert "join" in kinds and "corrupt" in kinds
    assert any(event.restart for event in spec.events)  # churn + restart
    faults = {event.fault for event in spec.events if event.kind == "corrupt"}
    assert faults == {"clock-phase-corruption"}
    # the keep-alive event holds the run open past backup-path convergence
    assert spec.events[-1].at.budget(96) > spec.events[-2].at.budget(96)
    ScenarioSpec.from_json(spec.to_json())


def test_committed_stable_detect_artifact_shows_detection_firing():
    path = os.path.join(os.path.dirname(__file__), "..", "SCENARIO_stable-detect.json")
    if not os.path.exists(path):
        pytest.skip("SCENARIO_stable-detect.json not generated")
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    assert document["spec"]["protocol"] == "approximate-stable"
    for cell in document["cells"]:
        assert not cell.get("error")
        finals = [
            run["extra"]["timeline"][-1]["invariants"]["error-flags"]
            for run in cell["runs"]
        ]
        # the detection layer fired in at least half of every cell's runs,
        # and every run still converged (via the always-correct backup)
        assert sum(1 for value in finals if value > 0) * 2 >= len(finals)
        assert all(run["converged"] for run in cell["runs"])


# --------------------------------------------------------------------------
# Scenario --resume
# --------------------------------------------------------------------------


def test_scenario_resume_merges_completed_cells(tmp_path):
    spec = _tiny_spec(ns=[16, 24], backends=["batch"])
    runner = ScenarioRunner(spec, workers=1)
    fresh = runner.run()
    document = build_document(spec, fresh, workers=1)
    done = completed_cell_ids(document, spec)
    assert done == {cell.cell_id for cell in spec.cells()}
    # resuming skips everything; the merge keeps the old records in grid order
    resumed = ScenarioRunner(spec, workers=1).run(skip_cell_ids=done)
    assert resumed == []
    merged = merge_cells(document, resumed, spec)
    assert [cell["cell_id"] for cell in merged] == [
        cell.cell_id for cell in spec.cells()
    ]
    # a failed cell is not treated as completed and gets re-run
    document["cells"][0]["error"] = "boom"
    partial = completed_cell_ids(document, spec)
    assert len(partial) == len(done) - 1


def test_cli_scenario_resume_round_trip(tmp_path, capsys):
    from repro.scenarios.cli import main as chaos_main

    spec = _tiny_spec(ns=[16], backends=["batch"])
    spec_path = tmp_path / "tiny.json"
    spec_path.write_text(spec.to_json())
    args = ["--spec", str(spec_path), "--output-dir", str(tmp_path), "--workers", "1"]
    assert chaos_main(args) == 0
    first = capsys.readouterr().out
    assert "0 resumed" in first
    assert chaos_main(args + ["--resume"]) == 0
    second = capsys.readouterr().out
    assert "0 run now, 1 resumed" in second

"""Unit tests for the epidemic/broadcast primitives."""

import pytest

from repro.engine import all_outputs_equal, simulate
from repro.engine.errors import ConfigurationError
from repro.primitives.epidemic import (
    EpidemicState,
    MaximumBroadcast,
    OneWayEpidemic,
    epidemic_update,
)


def test_epidemic_update_takes_maximum():
    assert epidemic_update(0, 5) == 5
    assert epidemic_update(5, 0) == 5
    assert epidemic_update(3, 3) == 3


def test_one_way_epidemic_validation_and_initialisation():
    with pytest.raises(ConfigurationError):
        OneWayEpidemic(source_count=0)
    with pytest.raises(ConfigurationError):
        OneWayEpidemic(source_value=0)
    protocol = OneWayEpidemic(source_count=2, source_value=7)
    values = [protocol.initial_state(i).value for i in range(4)]
    assert values == [7, 7, 0, 0]


def test_one_way_epidemic_spreads_to_everyone():
    result = simulate(OneWayEpidemic(), 48, seed=1, convergence=all_outputs_equal(1))
    assert result.converged
    assert set(result.outputs) == {1}


def test_one_way_epidemic_convergence_time_is_near_n_log_n():
    # Lemma 3: O(n log n) interactions w.h.p.; check a generous window.
    import math

    n = 128
    result = simulate(
        OneWayEpidemic(), n, seed=3, convergence=all_outputs_equal(1), check_interval=1,
        confirm_checks=1,
    )
    assert result.converged
    assert result.convergence_interaction < 12 * n * math.log(n)


def test_maximum_broadcast_converges_to_global_maximum():
    protocol = MaximumBroadcast([4, 9, 2, 9])
    assert protocol.target == 9
    result = simulate(protocol, 16, seed=2, convergence=all_outputs_equal(9))
    assert result.converged
    assert result.consensus_output == 9


def test_maximum_broadcast_rejects_empty_input():
    with pytest.raises(ConfigurationError):
        MaximumBroadcast([])


def test_epidemic_transition_only_updates_initiator():
    protocol = OneWayEpidemic()
    initiator = EpidemicState(value=0)
    responder = EpidemicState(value=4)
    protocol.transition(initiator, responder, None)
    assert initiator.value == 4
    assert responder.value == 4 and responder.key() == 4

    initiator = EpidemicState(value=4)
    responder = EpidemicState(value=0)
    protocol.transition(initiator, responder, None)
    assert (initiator.value, responder.value) == (4, 0)


def test_epidemic_can_interaction_change_is_one_directional():
    protocol = OneWayEpidemic()
    assert protocol.can_interaction_change(0, 1)
    assert not protocol.can_interaction_change(1, 0)
    assert not protocol.can_interaction_change(1, 1)

"""Tests of the multi-host worker pull protocol (PR 10 tentpole).

Three layers, bottom up:

* :class:`WorkQueue` — the lease table itself, driven with a fake clock so
  TTL expiry, requeue, first-result-wins dedup, and give-up are exact.
* The ``/work`` HTTP routes, driven through :class:`ReproClient`.
* A real :class:`~repro.server.worker.Worker` attached to a real server —
  remote-only execution end to end, a lost worker's cell being requeued,
  and the served artifact matching a locally computed one modulo volatile
  keys.
"""

import threading

import pytest

from repro.experiments import BudgetPolicy, SweepRunner, SweepSpec
from repro.experiments import build_document as build_sweep_document
from repro.obs.metrics import counter_value, parse_exposition
from repro.server import JobManager, ReproClient, ResultCache, ServerError
from repro.server.app import make_server
from repro.server.cache import stable_document
from repro.server.work import WorkItem, WorkQueue
from repro.server.worker import Worker, execute_lease, failure_record


def tiny_sweep(**overrides):
    defaults = dict(
        name="tiny-worker",
        protocol="one-way-epidemic",
        ns=[8, 16],
        seeds_per_cell=1,
        backend="batch",
        budget=BudgetPolicy(factor=64.0, n_exponent=1.0, log_exponent=1.0),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def make_items(count=3):
    return [
        WorkItem(
            item_id=f"item-{i}",
            exec_kind="sweep",
            payload={"cell_id": f"cell-{i}", "n": 8, "seeds": [i]},
            cache_key=f"{i:064d}"[:64],
        )
        for i in range(count)
    ]


def record_for(item, **overrides):
    record = {
        "cell_id": item.payload["cell_id"],
        "n": 8,
        "runs": [{"seed": 1}],
        "stats": {},
        "error": None,
        "wall_time_s": 0.1,
    }
    record.update(overrides)
    return record


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


# --------------------------------------------------------------------------
# WorkQueue: leases, TTL, requeue, dedup
# --------------------------------------------------------------------------


def test_lease_hands_out_items_fifo_and_tracks_attempts():
    queue = WorkQueue(make_items(2), ttl_s=10.0)
    first = queue.lease("w1")
    second = queue.lease("w2")
    assert first.item.payload["cell_id"] == "cell-0"
    assert second.item.payload["cell_id"] == "cell-1"
    assert first.item.attempts == 1
    assert first.lease_id != second.lease_id
    assert queue.lease("w3") is None  # nothing pending
    snapshot = queue.snapshot()
    assert snapshot["pending"] == 0
    assert snapshot["active_leases"] == {"w1": 1, "w2": 1}


def test_complete_is_first_wins_and_notifies():
    queue = WorkQueue(make_items(1), ttl_s=10.0)
    lease = queue.lease("w1")
    outcome, _ = queue.complete(lease.lease_id, record_for(lease.item))
    assert outcome == "accepted"
    assert queue.finished
    # The same push again is a duplicate, not an error.
    outcome, _ = queue.complete(lease.lease_id, record_for(lease.item))
    assert outcome == "duplicate"
    assert queue.complete("lease-999999-nope", {})[0] == "unknown"


def test_expired_lease_is_requeued_for_another_worker():
    clock = FakeClock()
    queue = WorkQueue(make_items(1), ttl_s=5.0, clock=clock)
    lost = queue.lease("w1")
    clock.now += 5.1
    expired, gave_up = queue.reap()
    assert [lease.lease_id for lease in expired] == [lost.lease_id]
    assert gave_up == []
    assert queue.requeues == 1
    retry = queue.lease("w2")
    assert retry.item.payload["cell_id"] == "cell-0"
    assert retry.item.attempts == 2
    outcome, _ = queue.complete(retry.lease_id, record_for(retry.item))
    assert outcome == "accepted"


def test_heartbeat_extends_only_active_leases():
    clock = FakeClock()
    queue = WorkQueue(make_items(1), ttl_s=5.0, clock=clock)
    lease = queue.lease("w1")
    clock.now += 4.0
    assert queue.heartbeat(lease.lease_id) is not None
    clock.now += 4.0  # 8s after grant, but only 4 since the heartbeat
    assert queue.reap() == ([], [])
    clock.now += 2.0
    expired, _ = queue.reap()
    assert len(expired) == 1
    assert queue.heartbeat(lease.lease_id) is None  # expired stays expired
    assert queue.heartbeat("lease-000000-void") is None


def test_late_result_from_expired_lease_wins_if_still_unresolved():
    clock = FakeClock()
    queue = WorkQueue(make_items(1), ttl_s=5.0, clock=clock)
    zombie = queue.lease("w1")
    clock.now += 6.0
    queue.reap()  # requeued
    # The zombie finished anyway and pushes before anyone re-leases.
    outcome, _ = queue.complete(zombie.lease_id, record_for(zombie.item))
    assert outcome == "accepted"
    assert queue.lease("w2") is None  # the requeued copy was claimed back
    assert queue.finished


def test_item_gives_up_after_max_attempts_with_synthetic_record():
    clock = FakeClock()
    queue = WorkQueue(make_items(1), ttl_s=5.0, max_attempts=2, clock=clock)
    for attempt in (1, 2):
        lease = queue.lease(f"blackhole-{attempt}")
        assert lease.item.attempts == attempt
        clock.now += 6.0
        expired, gave_up = queue.reap()
        assert len(expired) == 1
        if attempt < 2:
            assert gave_up == []
    (item, record), = gave_up
    assert record["cell_id"] == "cell-0"
    assert "lease expired" in record["error"]
    assert queue.finished
    assert queue.results_in_order() == [record]


def test_local_and_remote_claims_do_not_double_resolve():
    queue = WorkQueue(make_items(2), ttl_s=10.0)
    chunk = queue.take_local(1)
    assert [item.payload["cell_id"] for item in chunk] == ["cell-0"]
    lease = queue.lease("w1")
    assert lease.item.payload["cell_id"] == "cell-1"  # not the local one
    assert queue.resolve_local(chunk[0].item_id, record_for(chunk[0]))
    assert not queue.resolve_local(chunk[0].item_id, record_for(chunk[0]))
    queue.complete(lease.lease_id, record_for(lease.item))
    assert queue.finished
    assert [r["cell_id"] for r in queue.results_in_order()] == [
        "cell-0",
        "cell-1",
    ]


def test_abort_stops_leasing_and_answers_gone():
    queue = WorkQueue(make_items(2), ttl_s=10.0)
    lease = queue.lease("w1")
    queue.abort()
    assert queue.lease("w2") is None
    assert queue.take_local(5) == []
    outcome, _ = queue.complete(lease.lease_id, record_for(lease.item))
    assert outcome == "gone"
    assert queue.finished  # aborted counts as finished


def test_queue_validates_parameters():
    with pytest.raises(ValueError):
        WorkQueue([], ttl_s=0.0)
    with pytest.raises(ValueError):
        WorkQueue([], max_attempts=0)


# --------------------------------------------------------------------------
# Worker-side helpers
# --------------------------------------------------------------------------


def test_execute_lease_runs_the_real_sweep_entry_point():
    spec = tiny_sweep(ns=[8])
    from repro.experiments.runner import cell_payload

    payload = cell_payload(spec, spec.cells()[0])
    record = execute_lease(
        {"lease_id": "x", "kind": "sweep", "payload": payload}
    )
    assert record["cell_id"] == payload["cell_id"]
    assert not record.get("error")
    assert record["runs"]


def test_execute_lease_answers_unknown_kind_with_failure_record():
    record = execute_lease(
        {"lease_id": "x", "kind": "alien", "payload": {"cell_id": "c1"}}
    )
    assert record["cell_id"] == "c1"
    assert "alien" in record["error"]


def test_failure_record_mirrors_pool_failure_shape():
    record = failure_record({"cell_id": "c", "n": 8, "seeds": [1]}, "boom")
    assert record["error"] == "boom"
    assert record["runs"] == [] and record["stats"] is None


# --------------------------------------------------------------------------
# End to end over HTTP
# --------------------------------------------------------------------------


@pytest.fixture
def served_manager():
    """A remote-only server (short TTL) plus a client; nothing runs locally."""
    manager = JobManager(
        workers=1,
        cache=ResultCache(),
        local_execution=False,
        lease_ttl_s=1.0,
    )
    server = make_server("127.0.0.1", 0, manager)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ReproClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield manager, client
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(timeout=5)


def test_lease_routes_when_no_batch_is_running(served_manager):
    _manager, client = served_manager
    assert client.lease("w1") is None  # 204: nothing to do
    with pytest.raises(ServerError) as excinfo:
        client.heartbeat("lease-000000-void")
    assert excinfo.value.status == 404
    outcome = client.push_result("lease-000000-void", {"cell_id": "c"})
    assert outcome["outcome"] == "gone"
    assert not outcome["accepted"]


def test_remote_worker_executes_a_job_end_to_end(served_manager):
    manager, client = served_manager
    spec = tiny_sweep()
    job_id = client.submit("sweep", spec.to_dict())["job_id"]

    worker = Worker(client, worker_id="wt-1", poll_s=0.05, max_idle_s=3.0)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    status = client.wait(job_id, timeout_s=120.0)
    thread.join(timeout=30)

    assert status["state"] == "done"
    assert status["progress"]["remote_cells"] == 2
    assert status["progress"]["failed_cells"] == []
    assert worker.accepted == 2

    served = client.artifact(job_id)
    local = build_sweep_document(
        spec, SweepRunner(spec, workers=1).run(), workers=1
    )
    assert stable_document(served) == stable_document(local)

    metrics = parse_exposition(client.metrics())
    assert counter_value(metrics, "repro_leases_granted_total", worker="wt-1") == 2
    assert (
        counter_value(metrics, "repro_lease_results_total", outcome="accepted")
        == 2
    )


def test_abandoned_lease_is_requeued_and_job_still_completes(served_manager):
    manager, client = served_manager
    spec = tiny_sweep(ns=[8])
    job_id = client.submit("sweep", spec.to_dict())["job_id"]

    # A doomed "worker" leases the only cell and vanishes without a result.
    deadline_lease = None
    for _ in range(200):
        deadline_lease = client.lease("doomed")
        if deadline_lease is not None:
            break
        threading.Event().wait(0.02)
    assert deadline_lease is not None
    assert deadline_lease["kind"] == "sweep"
    assert deadline_lease["payload"]["cell_id"] == "one-way-epidemic-n8"

    # An honest worker picks the cell up after the 1s TTL expires.
    worker = Worker(client, worker_id="honest", poll_s=0.05, max_idle_s=5.0)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    status = client.wait(job_id, timeout_s=120.0)
    thread.join(timeout=30)

    assert status["state"] == "done"
    assert status["progress"]["failed_cells"] == []
    metrics = parse_exposition(client.metrics())
    assert counter_value(metrics, "repro_leases_expired_total") >= 1
    assert counter_value(metrics, "repro_leases_requeued_total") >= 1
    assert (
        counter_value(metrics, "repro_worker_results_total", worker="honest")
        == 1
    )


def test_wrong_cell_result_is_rejected_and_cell_recovers(served_manager):
    manager, client = served_manager
    spec = tiny_sweep(ns=[8])
    job_id = client.submit("sweep", spec.to_dict())["job_id"]
    lease = None
    for _ in range(200):
        lease = client.lease("confused")
        if lease is not None:
            break
        threading.Event().wait(0.02)
    assert lease is not None
    outcome = client.push_result(
        lease["lease_id"], {"cell_id": "someone-elses-cell", "runs": []}
    )
    assert outcome["outcome"] == "rejected"

    worker = Worker(client, worker_id="honest", poll_s=0.05, max_idle_s=5.0)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    status = client.wait(job_id, timeout_s=120.0)
    thread.join(timeout=30)
    assert status["state"] == "done"
    assert status["progress"]["failed_cells"] == []


def test_mixed_local_and_remote_execution():
    """With local execution on, the pool and a remote worker share a job."""
    manager = JobManager(workers=1, cache=ResultCache(), lease_ttl_s=30.0)
    server = make_server("127.0.0.1", 0, manager)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = ReproClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        spec = tiny_sweep(ns=[8, 12, 16, 24])
        worker = Worker(client, worker_id="helper", poll_s=0.02, max_idle_s=4.0)
        worker_thread = threading.Thread(target=worker.run, daemon=True)
        worker_thread.start()
        job_id = client.submit("sweep", spec.to_dict())["job_id"]
        status = client.wait(job_id, timeout_s=120.0)
        worker_thread.join(timeout=30)
        assert status["state"] == "done"
        assert status["progress"]["completed_cells"] == 4
        assert status["progress"]["failed_cells"] == []
        served = client.artifact(job_id)
        local = build_sweep_document(
            spec, SweepRunner(spec, workers=1).run(), workers=1
        )
        assert stable_document(served) == stable_document(local)
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(timeout=5)

"""Tests for the NumPy acceleration layer (PR 5).

The layer must be *provably optional*: the CI matrix runs one leg with
NumPy and one without, and the guard test here pins the active path against
the leg's declared intent (``REPRO_EXPECT_ACCEL``) so the two legs can
never silently test the same code.  Equivalence is checked at three levels:
bit-identical single draws (the canonical inverse-CDF contract), exact
differential tests of the factorised pair weights against a from-scratch
recomputation, and distribution-level chi-square / KS checks of draws and
end-to-end convergence-time laws.
"""

import os
import random
from collections import Counter

import pytest

from repro.counting.backup import ExactBackupProtocol
from repro.engine import ConfigurationError, Simulator, all_outputs_equal, simulate
from repro.engine.samplers import SAMPLER_NAMES, ScanSampler, make_sampler
from repro.engine.stats import chi_square_gof, ks_pvalue, ks_statistic
from repro.engine import vectorized as vectorized_module
from repro.engine.vectorized import (
    ACCEL_NAMES,
    DenseBlockKernel,
    FactorisedPairKernel,
    VectorSampler,
    numpy_available,
    resolve_accel,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy unavailable (or vetoed by REPRO_NO_NUMPY)"
)

#: Generous significance threshold (see tests/test_samplers.py).
ALPHA = 1e-3


def _wide_weights(size, salt=0):
    return {f"k{index}": (index * 37 + salt) % 11 + 1 for index in range(size)}


# --------------------------------------------------------------------------
# CI guard: the intended accel path must actually be active
# --------------------------------------------------------------------------


def test_ci_guard_active_accel_path_matches_leg_intent():
    # On CI, REPRO_EXPECT_ACCEL declares the matrix leg's intent; locally
    # the expectation is simply consistency with NumPy availability.  The
    # assertion is made on a *real simulation's* report, not on the
    # resolver alone, so a wiring regression cannot slip through.
    expected = os.environ.get("REPRO_EXPECT_ACCEL")
    if expected is None:
        expected = "numpy" if numpy_available() else "python"
    assert expected in ("numpy", "python")
    if expected == "numpy":
        assert numpy_available(), "numpy leg without importable NumPy"
    else:
        assert not numpy_available(), (
            "pure-python leg with NumPy importable; set REPRO_NO_NUMPY=1"
        )
    assert resolve_accel("auto") == expected
    result = simulate(
        ExactBackupProtocol(), 64, seed=0, backend="batch", max_interactions=2_000
    )
    assert result.extra["accel"]["active"] == expected
    assert result.extra["accel"]["requested"] == "auto"
    assert result.extra["accel"]["numpy_available"] == (expected == "numpy")
    # Prove the leg exercises its own hot loop, not just the resolver: a
    # churning pruning workload must *engage* the factorised kernel on the
    # numpy leg and must not (cannot) on the pure-python leg.
    churn = simulate(
        ExactBackupProtocol(),
        256,
        seed=11,
        backend="batch",
        max_interactions=150_000,
    )
    assert churn.extra["accel"]["engaged"] == (expected == "numpy")
    if expected == "numpy":
        assert churn.extra["sampler"]["strategy"] == "factorised"
    else:
        assert churn.extra["sampler"]["strategy"] in ("alias", "fenwick")


def test_guard_python_accel_is_always_available():
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=0,
        backend="batch",
        accel="python",
        max_interactions=2_000,
    )
    assert result.extra["accel"]["active"] == "python"


# --------------------------------------------------------------------------
# Knob resolution and validation
# --------------------------------------------------------------------------


def test_unknown_accel_names_are_rejected_everywhere():
    with pytest.raises(ConfigurationError):
        resolve_accel("bogus")
    with pytest.raises(ConfigurationError):
        Simulator(ExactBackupProtocol(), 8, backend="batch", accel="bogus")
    with pytest.raises(ConfigurationError):
        simulate(ExactBackupProtocol(), 8, backend="batch", accel="cuda")


def test_forced_python_sampler_wins_over_auto_accel():
    # A pinned Python strategy is an explicit request: auto accel must not
    # silently replace it with the NumPy kernels.
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=2,
        backend="batch",
        sampler="fenwick",
        accel="auto",
        max_interactions=5_000,
    )
    assert result.extra["accel"]["active"] == "python"
    assert result.extra["sampler"]["strategy"] == "fenwick"


def test_forcing_numpy_with_a_python_sampler_is_a_conflict():
    if numpy_available():
        with pytest.raises(ConfigurationError):
            simulate(
                ExactBackupProtocol(),
                8,
                backend="batch",
                sampler="fenwick",
                accel="numpy",
            )
    else:
        with pytest.raises(ConfigurationError):
            resolve_accel("numpy")


def test_accel_names_and_vector_strategy_are_registered():
    assert ACCEL_NAMES == ("auto", "numpy", "python")
    assert "vector" in SAMPLER_NAMES


def test_agent_backend_accepts_but_ignores_the_accel_knob():
    result = simulate(
        ExactBackupProtocol(), 16, seed=0, backend="agent", accel="python",
        max_interactions=500,
    )
    assert "accel" not in result.extra


def test_python_accel_is_bit_identical_to_a_numpyless_run(monkeypatch):
    # accel="python" must take exactly the pre-acceleration code path: the
    # same run with NumPy made undetectable (the auto fallback) has to
    # produce the identical result, interaction for interaction.
    reference = simulate(
        ExactBackupProtocol(),
        96,
        seed=7,
        backend="batch",
        accel="python",
        convergence=all_outputs_equal(96),
        check_interval=96,
        max_interactions=500_000,
    )
    monkeypatch.setattr(vectorized_module, "_np", None)
    assert not numpy_available()
    fallback = simulate(
        ExactBackupProtocol(),
        96,
        seed=7,
        backend="batch",
        accel="auto",
        convergence=all_outputs_equal(96),
        check_interval=96,
        max_interactions=500_000,
    )
    assert fallback.extra["accel"]["active"] == "python"
    assert fallback.interactions == reference.interactions
    assert fallback.convergence_interaction == reference.convergence_interaction
    assert fallback.output_counts == reference.output_counts
    assert fallback.extra["sampler"] == reference.extra["sampler"]


# --------------------------------------------------------------------------
# VectorSampler: canonical contract + distribution
# --------------------------------------------------------------------------


@requires_numpy
def test_vector_sampler_single_draws_are_bit_identical_to_scan():
    weights = _wide_weights(80)
    vector = VectorSampler(dict(weights))
    scan = ScanSampler(dict(weights))
    vector_rng = random.Random(7)
    scan_rng = random.Random(7)
    assert [vector.sample(vector_rng) for _ in range(4_000)] == [
        scan.sample(scan_rng) for _ in range(4_000)
    ]


@requires_numpy
@pytest.mark.stats
@pytest.mark.parametrize("size", [12, 80])
def test_vector_sampler_draws_from_exact_target_distribution(size):
    weights = _wide_weights(size)
    sampler = make_sampler("vector", weights)
    rng = random.Random(1234 + size)
    observed = Counter(sampler.sample(rng) for _ in range(20_000))
    assert chi_square_gof(observed, weights) > ALPHA


@requires_numpy
@pytest.mark.stats
def test_vector_sampler_block_draws_from_exact_target_distribution():
    import numpy

    weights = _wide_weights(60)
    sampler = VectorSampler(dict(weights))
    generator = numpy.random.default_rng(42)
    slots = sampler.sample_block(generator, 40_000)
    observed = Counter(sampler.key_at(int(slot)) for slot in slots)
    assert chi_square_gof(observed, weights) > ALPHA


@requires_numpy
@pytest.mark.stats
def test_vector_sampler_distribution_survives_randomized_mutations():
    # The same scripted storm as the other strategies (zeroing, resurrecting
    # and rebuilding): stale cumulative sums would shift the distribution.
    rng = random.Random(4242)
    sampler = make_sampler("vector", {f"s{index}": 1 for index in range(50)})
    shadow = {f"s{index}": 1 for index in range(50)}
    for step in range(600):
        if step % 151 == 150:
            shadow = {
                f"r{step}-{index}": rng.randrange(1, 8)
                for index in range(rng.randrange(40, 70))
            }
            sampler.rebuild(shadow)
            continue
        key = f"s{rng.randrange(70)}" if step < 151 else rng.choice(list(shadow))
        weight = rng.randrange(0, 9)
        sampler.update(key, weight)
        if weight:
            shadow[key] = weight
        else:
            shadow.pop(key, None)
    assert sampler.total == sum(shadow.values())
    assert sampler.weights() == shadow
    draw_rng = random.Random(97)
    observed = Counter(sampler.sample(draw_rng) for _ in range(20_000))
    assert chi_square_gof(observed, shadow) > ALPHA


@requires_numpy
def test_vector_sampler_requires_numpy_when_vetoed(monkeypatch):
    monkeypatch.setattr(vectorized_module, "_np", None)
    with pytest.raises(ConfigurationError):
        make_sampler("vector", {"a": 1})


# --------------------------------------------------------------------------
# Block invalidation: a weight change must discard the stale remainder
# --------------------------------------------------------------------------


@requires_numpy
def test_dense_block_invalidation_discards_the_stale_remainder():
    kernel = DenseBlockKernel({"a": 5, "b": 5}, seed=0, block=64)
    # Force a block into existence and consume a little of it.
    drawn = [kernel.next_pair() for _ in range(4)]
    assert all(pair[0] in ("a", "b") for pair in drawn)
    assert kernel._pairs_a is not None and kernel._cursor < len(kernel._pairs_a)
    # Remove "b" mid-block: the unconsumed remainder was drawn against the
    # old histogram (where "b" had mass) and must be discarded — any stale
    # pair would surface "b" with overwhelming probability over 200 draws.
    kernel.set_count("b", 0)
    assert kernel._pairs_a is None  # the stale remainder is gone
    assert kernel.invalidations >= 1
    for _ in range(200):
        pair = kernel.next_pair()
        assert pair == ("a", "a")


@requires_numpy
def test_dense_block_sizes_adapt_and_thrash_is_reported():
    kernel = DenseBlockKernel({"a": 50, "b": 50}, seed=1, block=64)
    # Invalidate immediately after every single event: blocks shrink to the
    # minimum and the thrash signature appears.
    for toggle in range(3 * DenseBlockKernel.CHURN_BLOCKS):
        kernel.next_pair()
        kernel.set_count("a", 50 + (toggle % 2))
    assert kernel._block == DenseBlockKernel.MIN_BLOCK
    assert kernel.thrashing


@requires_numpy
def test_factorised_kernel_invalidates_pending_skips_on_count_change():
    kernel = FactorisedPairKernel(
        {"a": 6, "b": 5}, can_change=lambda x, y: True, seed=3
    )
    total_pairs = 11 * 10
    kernel.next_skip(total_pairs)
    assert kernel._skips is not None
    kernel.set_count("a", 7)
    # The pending skips were drawn from Geometric(W/T) at the old W.
    assert kernel._skips is None
    assert kernel.invalidations >= 1


# --------------------------------------------------------------------------
# Factorised pair weights: O(changed) updates, exact differential
# --------------------------------------------------------------------------


def _brute_force_pair_table(counts, can_change):
    total = 0
    table = {}
    for key_a, count_a in counts.items():
        for key_b, count_b in counts.items():
            weight = count_a * (count_a - 1) if key_a == key_b else count_a * count_b
            if weight > 0 and can_change(key_a, key_b):
                table[(key_a, key_b)] = weight
                total += weight
    return total, table


@requires_numpy
def test_factorised_weights_match_full_recomputation_under_mutation_storm():
    # The O(changed) differential: after every batch of count changes the
    # kernel's implied pair-weight table and active weight must equal the
    # O(K^2) from-scratch recomputation the Python path performs — while
    # the kernel's own work counter certifies it only touched the changed
    # keys (one column update each), never the full table.
    rng = random.Random(31337)

    def can_change(key_a, key_b):
        return (hash((key_a, key_b)) % 3) != 0

    keys = [f"m{index}" for index in range(40)]
    counts = {key: rng.randrange(1, 9) for key in keys}
    kernel = FactorisedPairKernel(dict(counts), can_change, seed=5)
    effective_updates = kernel.update_columns
    for step in range(400):
        key = rng.choice(keys)
        new_count = rng.randrange(0, 9)
        if counts.get(key, 0) != new_count:
            effective_updates += 1
        counts[key] = new_count
        kernel.set_count(key, new_count)
        if step % 25 == 0:
            live = {key: count for key, count in counts.items() if count}
            total, table = _brute_force_pair_table(live, can_change)
            assert kernel.active_weight() == total, step
            assert kernel.pair_weights() == table, step
    # O(changed) certification: exactly one column update per effective
    # count change — independent of K and of the number of active pairs.
    assert kernel.update_columns == effective_updates


@requires_numpy
@pytest.mark.stats
def test_factorised_pair_draws_follow_the_conditional_active_law():
    counts = {"a": 4, "b": 3, "c": 2}

    def can_change(key_a, key_b):
        return not (key_a == "c" and key_b == "c")

    kernel = FactorisedPairKernel(dict(counts), can_change, seed=9)
    _total, table = _brute_force_pair_table(counts, can_change)
    observed = Counter(kernel.next_pair() for _ in range(100_000))
    assert chi_square_gof(observed, table) > ALPHA


@requires_numpy
def test_factorised_kernel_compacts_dead_slots():
    # Long churny runs mint transient keys; dead slots must be reclaimed or
    # every key *ever seen* would count against MATRIX_LIMIT and force a
    # spurious Python fallback with only a handful of live keys.
    kernel = FactorisedPairKernel({"live": 5}, can_change=lambda x, y: True, seed=0)
    for index in range(10 * FactorisedPairKernel.COMPACT_MIN_SIZE):
        key = f"transient-{index}"
        kernel.set_count(key, 1)
        kernel.set_count(key, 0)
    assert kernel.size <= 2 * FactorisedPairKernel.COMPACT_MIN_SIZE
    assert kernel.pair_weights() == {("live", "live"): 20}
    assert kernel.active_weight() == 20


@requires_numpy
def test_vector_sampler_pin_defers_auto_accel():
    # sampler="vector" is a per-draw strategy choice for the Python hot
    # loop; accel="auto" must not arm kernels it can never engage (the
    # engagement signal lives on the alias strategy).
    assert resolve_accel("auto", "vector") == "python"
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=2,
        backend="batch",
        sampler="vector",
        max_interactions=5_000,
    )
    assert result.extra["accel"]["active"] == "python"
    assert result.extra["accel"]["engaged"] is False
    assert result.extra["sampler"]["strategy"] == "vector"


@requires_numpy
def test_hooks_fire_for_every_applied_event_across_capacity_fallback(monkeypatch):
    # The event whose key-count update overflows the activity matrix is
    # already applied to the histogram — its on_batch_event hooks must
    # still fire, or hook-based trackers undercount on exactly the runs
    # that trigger the fallback.
    from repro.engine import CallbackHook
    from repro.engine.backends import BatchBackend

    monkeypatch.setattr(FactorisedPairKernel, "MATRIX_LIMIT", 8)
    applied = []
    original = BatchBackend._apply_transition

    def counting_apply(self, key_a, key_b):
        applied.append(1)
        return original(self, key_a, key_b)

    monkeypatch.setattr(BatchBackend, "_apply_transition", counting_apply)
    events = []
    hook = CallbackHook(on_batch_event=lambda sim, a, b, na, nb: events.append(1))
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=1,
        backend="batch",
        accel="numpy",
        hooks=[hook],
        max_interactions=30_000,
    )
    assert result.extra["accel"]["active"] == "python"  # the overflow fired
    assert len(events) == len(applied)
    assert events  # the run really applied events


@requires_numpy
def test_factorised_capacity_overflow_falls_back_to_python_mid_run(monkeypatch):
    # A protocol whose live key set outgrows the activity matrix must not
    # die: the backend rebuilds the Python pair table mid-run and reports
    # the fallback.  backup-exact at n=64 visits far more than 8 keys.
    monkeypatch.setattr(FactorisedPairKernel, "MATRIX_LIMIT", 8)
    result = simulate(
        ExactBackupProtocol(),
        64,
        seed=1,
        backend="batch",
        accel="numpy",
        convergence=all_outputs_equal(64),
        check_interval=64,
        max_interactions=500_000,
    )
    assert result.extra["accel"]["requested"] == "numpy"
    assert result.extra["accel"]["active"] == "python"
    assert "activity matrix" in result.extra["accel"]["fallback_reason"]
    # The run stays correct across the switch: the exact count is reached.
    assert result.converged
    assert result.output_counts == Counter({64: 64})


# --------------------------------------------------------------------------
# End-to-end: regimes, fallbacks, and cross-path equivalence
# --------------------------------------------------------------------------


@requires_numpy
def test_auto_accel_engages_the_pair_kernel_on_alias_thrash():
    # accel="auto" rides the PR-4 churn signal: the run starts on the
    # Python alias strategy and swaps in the factorised kernel once the
    # table thrashes — the workload where vectorisation actually pays.
    result = simulate(
        ExactBackupProtocol(),
        256,
        seed=11,
        backend="batch",
        max_interactions=150_000,
    )
    accel = result.extra["accel"]
    assert accel["active"] == "numpy" and accel["engaged"] is True
    stats = result.extra["sampler"]
    assert stats["strategy"] == "factorised"
    retired = stats["retired"][0]
    assert retired["strategy"] == "alias"
    assert retired["retired_by"] == "accel-engage"
    assert retired["thrashing"] is True


@requires_numpy
def test_auto_accel_stays_python_on_tables_where_alias_wins():
    from repro.bench.samplers import StaticTableProtocol
    from repro.primitives.epidemic import OneWayEpidemic

    # A static pair table never thrashes: the alias strategy is unbeatable
    # there, so the armed kernel must never engage.
    static = simulate(
        StaticTableProtocol(keys=12),
        128,
        seed=3,
        backend="batch",
        max_interactions=20_000,
    )
    assert static.extra["accel"]["active"] == "numpy"
    assert static.extra["accel"]["engaged"] is False
    assert static.extra["sampler"]["strategy"] == "alias"
    # The epidemic's single active pair type is drawn by a trivial scan;
    # per-event NumPy overhead would be a pure loss.
    epidemic_result = simulate(
        OneWayEpidemic(), 4_096, seed=0, backend="batch", max_interactions=200_000
    )
    assert epidemic_result.extra["accel"]["engaged"] is False


@requires_numpy
def test_pruning_numpy_path_reaches_the_exact_count():
    result = simulate(
        ExactBackupProtocol(),
        256,
        seed=3,
        backend="batch",
        accel="numpy",
        convergence=all_outputs_equal(256),
        check_interval=256,
        max_interactions=2_000_000,
    )
    assert result.extra["accel"]["active"] == "numpy"
    assert result.extra["sampler"]["strategy"] == "factorised"
    assert result.converged
    assert result.output_counts == Counter({256: 256})


@requires_numpy
def test_dense_thrash_falls_back_to_the_python_sampler():
    from repro.experiments.registry import resolve_protocol

    entry = resolve_protocol("approximate")
    result = simulate(
        entry.build(128, {}),
        128,
        seed=1,
        backend="batch",
        accel="numpy",
        max_interactions=20_000,
    )
    # The composed counting stack's phase clocks change the histogram on
    # nearly every interaction: blocks cannot amortise and the backend must
    # hand the run back to the Python sampler.
    assert result.extra["accel"]["active"] == "python"
    assert "thrash" in result.extra["accel"]["fallback_reason"]


@requires_numpy
def test_static_dense_workload_stays_vectorised():
    from repro.bench.vectorized import StaticDenseProtocol

    result = simulate(
        StaticDenseProtocol(keys=24),
        256,
        seed=5,
        backend="batch",
        accel="numpy",
        max_interactions=30_000,
    )
    assert result.interactions == 30_000
    assert result.extra["accel"]["active"] == "numpy"
    stats = result.extra["sampler"]
    assert stats["strategy"] == "vector"
    assert stats["events"] == 30_000
    assert stats["invalidations"] == 0


@requires_numpy
@pytest.mark.stats
def test_backup_exact_convergence_laws_match_across_accel_paths():
    # The accelerated chain uses different random streams but must follow
    # the identical law: KS compatibility of the convergence-time
    # distributions of backup-exact across accel="numpy" and
    # accel="python" (the ISSUE's acceptance criterion).
    n = 96
    samples = 30

    def convergence_times(accel, offset):
        times = []
        for seed in range(samples):
            result = simulate(
                ExactBackupProtocol(),
                n,
                seed=offset + seed,
                backend="batch",
                accel=accel,
                convergence=all_outputs_equal(n),
                check_interval=n,
                confirm_checks=1,
                max_interactions=3_000_000,
            )
            assert result.converged, (accel, seed)
            times.append(result.convergence_interaction)
        return times

    python_times = convergence_times("python", 0)
    numpy_times = convergence_times("numpy", 10_000)
    statistic = ks_statistic(python_times, numpy_times)
    p_value = ks_pvalue(statistic, samples, samples)
    assert p_value > ALPHA, (statistic, p_value)


# --------------------------------------------------------------------------
# Spec and worker plumbing
# --------------------------------------------------------------------------


def test_spec_layers_carry_and_validate_the_accel_knob():
    from repro.experiments.spec import SweepSpec
    from repro.scenarios.spec import ScenarioSpec

    sweep = SweepSpec(name="s", protocol="backup-exact", ns=[16], accel="python")
    assert SweepSpec.from_json(sweep.to_json()).accel == "python"
    with pytest.raises(ConfigurationError):
        SweepSpec(name="s", protocol="backup-exact", ns=[16], accel="nope")
    with pytest.raises(ConfigurationError):
        SweepSpec(
            name="s", protocol="backup-exact", ns=[16],
            accel="numpy", sampler="fenwick",
        )

    scenario = ScenarioSpec(
        name="c",
        protocol="backup-exact",
        ns=[16],
        accel="python",
        events=[{"kind": "restart", "at_interactions": 10}],
    )
    assert ScenarioSpec.from_json(scenario.to_json()).accel == "python"
    with pytest.raises(ConfigurationError):
        ScenarioSpec(
            name="c",
            protocol="backup-exact",
            ns=[16],
            accel="nope",
            events=[{"kind": "restart", "at_interactions": 10}],
        )


def test_sweep_payload_threads_the_accel_knob_to_workers():
    from repro.experiments.runner import cell_payload, execute_cell
    from repro.experiments.spec import SweepSpec

    spec = SweepSpec(
        name="s",
        protocol="backup-exact",
        ns=[16],
        seeds_per_cell=1,
        backend="batch",
        accel="python",
        max_checks=10,
    )
    payload = cell_payload(spec, spec.cells()[0])
    assert payload["accel"] == "python"
    record = execute_cell(payload)
    assert record["error"] is None
    assert record["runs"][0]["extra"]["accel"]["active"] == "python"


@requires_numpy
def test_scenario_runs_thread_the_accel_knob():
    from repro.scenarios.runner import execute_scenario_cell
    from repro.scenarios.spec import ScenarioSpec

    spec = ScenarioSpec(
        name="c",
        protocol="backup-exact",
        ns=[32],
        seeds_per_cell=1,
        backends=["batch"],
        accel="numpy",
        events=[{"kind": "replace", "at_interactions": 2_000, "fraction": 0.1}],
        max_checks=20,
    )
    cell = spec.cells()[0]
    record = execute_scenario_cell(
        {
            "cell_id": cell.cell_id,
            "n": cell.n,
            "backend": cell.backend,
            "params": dict(cell.params),
            "seeds": list(cell.seeds),
            "spec": spec.to_dict(),
        }
    )
    assert record["error"] is None
    run = record["runs"][0]
    assert run["extra"]["accel"]["requested"] == "numpy"
    # Churn events flow through the kernel's resync path; the run completes
    # with the population conserved.
    assert run["n"] == 32

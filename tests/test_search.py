"""Tests for the adversarial scenario search (repro.scenarios.search).

The driver tests run against *oracle executors* — fakes that decide
survival from the probe's mutated value alone — so the bisection and
evolution logic is exercised deterministically and fast, without
simulating populations.  Worker-crash recovery is driven through the
``pool_factory`` test seam of the shared :class:`PoolExecutor`.
"""

import json
import multiprocessing
import os

import pytest

from repro.engine.errors import ConfigurationError, ExperimentError
from repro.experiments.spec import BudgetPolicy
from repro.scenarios import (
    DimensionSpec,
    EventSpec,
    FrontierRunner,
    GuaranteeSpec,
    ScenarioSpec,
    SearchSpec,
    build_frontier_document,
    builtin_search_names,
    builtin_searches,
    frontier_json_path,
    load_frontier_document,
    probe_base_seed,
    probe_scenario,
    resolve_builtin_search,
    write_frontier,
)
from repro.scenarios.cli import search_main


# --------------------------------------------------------------------------
# Fixtures: base scenarios and oracle executors
# --------------------------------------------------------------------------


def one_cell_scenario(**overrides):
    """A tiny valid one-cell scenario for driver tests (never simulated)."""
    fields = dict(
        name="search-base",
        protocol="one-way-epidemic",
        ns=[32],
        backends=["batch"],
        seeds_per_cell=2,
        events=[
            EventSpec(
                kind="leave",
                fraction=0.3,
                at=BudgetPolicy(factor=4.0, n_exponent=1.0, log_exponent=1.0),
            )
        ],
        budget=BudgetPolicy(factor=16.0, n_exponent=1.0, log_exponent=1.0),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def oracle_executor(breaks_when, calls=None):
    """A fake cell executor whose runs converge unless ``breaks_when`` says so.

    ``breaks_when(values)`` receives the mutated event values in event order
    (here: every event's ``fraction``).
    """

    def execute(payload):
        values = [event["fraction"] for event in payload["spec"]["events"]]
        broken = breaks_when(values)
        if calls is not None:
            calls.append(values)
        runs = [
            {
                "seed": seed,
                "converged": not broken,
                "post_accuracy": 0.0 if broken else 1.0,
                "stopped_reason": "budget" if broken else "converged",
                "interactions": 100,
            }
            for seed in payload["seeds"]
        ]
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": runs,
            "stats": None,
            "error": None,
            "wall_time_s": 0.0,
        }

    return execute


def bisect_spec(**overrides):
    fields = dict(
        name="oracle-bisect",
        scenario=one_cell_scenario(),
        dimensions=[DimensionSpec(event=0, dimension="fraction", low=0.1, high=0.9)],
        guarantee=GuaranteeSpec(kind="recovered"),
        strategy="bisect",
        seeds_per_probe=2,
        tolerance=0.01,
    )
    fields.update(overrides)
    return SearchSpec(**fields)


# --------------------------------------------------------------------------
# Spec validation and round-trips
# --------------------------------------------------------------------------


def test_search_spec_round_trips_through_json():
    spec = bisect_spec()
    clone = SearchSpec.from_json(spec.to_json())
    assert clone.to_dict() == spec.to_dict()
    assert clone.dimensions[0].low == 0.1
    assert clone.guarantee.kind == "recovered"


def test_search_spec_rejects_typod_dimension():
    with pytest.raises(ConfigurationError, match="fractoin"):
        DimensionSpec(event=0, dimension="fractoin", low=0.1, high=0.9)
    with pytest.raises(ConfigurationError, match="unknown search-dimension fields"):
        DimensionSpec.from_dict(
            {"event": 0, "dimension": "fraction", "low": 0.1, "high": 0.9, "hgih": 1}
        )


def test_search_spec_validation_errors():
    # bisect needs exactly one dimension
    with pytest.raises(ConfigurationError, match="bisect"):
        bisect_spec(
            dimensions=[
                DimensionSpec(event=0, dimension="fraction", low=0.1, high=0.9),
                DimensionSpec(event=0, dimension="at_factor", low=1.0, high=8.0),
            ]
        )
    # the base scenario must expand to exactly one cell
    with pytest.raises(ConfigurationError, match="exactly one cell"):
        bisect_spec(scenario=one_cell_scenario(ns=[32, 64]))
    # dimension must reference an existing event and an applicable field
    with pytest.raises(ConfigurationError, match="event 3"):
        bisect_spec(
            dimensions=[DimensionSpec(event=3, dimension="fraction", low=0.1, high=0.9)]
        )
    with pytest.raises(ConfigurationError, match="rate"):
        bisect_spec(
            dimensions=[DimensionSpec(event=0, dimension="rate", low=0.5, high=4.0)]
        )
    # an invariant guarantee must be tracked by the base scenario
    with pytest.raises(ConfigurationError, match="not tracked"):
        bisect_spec(guarantee=GuaranteeSpec(kind="invariant", invariant="population"))


def test_guarantee_spec_validation():
    with pytest.raises(ConfigurationError, match="unknown guarantee kind"):
        GuaranteeSpec(kind="recoverd")
    with pytest.raises(ConfigurationError, match="threshold"):
        GuaranteeSpec(kind="accuracy", threshold=1.5)
    with pytest.raises(ConfigurationError, match="min_rate"):
        GuaranteeSpec(kind="recovered", min_rate=0.0)


def test_probe_scenario_mutates_dimension_and_derives_seeds():
    spec = bisect_spec()
    scenario = probe_scenario(spec, [0.42])
    assert scenario.events[0].fraction == 0.42
    assert scenario.seeds_per_cell == spec.seeds_per_probe
    assert scenario.base_seed == probe_base_seed(spec, [0.42])
    # value-derived seeding is path-independent: same values, same seeds
    assert scenario.cells()[0].seeds == probe_scenario(spec, [0.42]).cells()[0].seeds
    # a different probe point gets different seeds
    assert scenario.cells()[0].seeds != probe_scenario(spec, [0.43]).cells()[0].seeds


# --------------------------------------------------------------------------
# Bisection driver
# --------------------------------------------------------------------------


def test_bisect_converges_with_monotone_bracket_shrinkage():
    spec = bisect_spec()
    runner = FrontierRunner(
        spec, workers=1, executor=oracle_executor(lambda v: v[0] > 0.37)
    )
    result = runner.run()
    assert result["status"] == "bracketed"
    assert result["orientation"] == "increasing"
    assert abs(result["critical"] - 0.37) <= spec.tolerance
    brackets = [e["bracket_after"] for e in runner.history if "bracket_after" in e]
    widths = [high - low for low, high in brackets]
    assert all(b <= a for a, b in zip(widths, widths[1:]))
    assert widths[-1] <= spec.tolerance
    # the bracket invariant: throughout, one end survives and one breaks
    for low, high in brackets:
        assert low <= 0.37 + spec.tolerance
        assert high >= 0.37 - spec.tolerance


def test_bisect_detects_decreasing_orientation():
    runner = FrontierRunner(
        bisect_spec(), workers=1, executor=oracle_executor(lambda v: v[0] < 0.6)
    )
    result = runner.run()
    assert result["status"] == "bracketed"
    assert result["orientation"] == "decreasing"
    assert abs(result["critical"] - 0.6) <= 0.01


def test_bisect_reports_no_frontier():
    runner = FrontierRunner(
        bisect_spec(), workers=1, executor=oracle_executor(lambda v: False)
    )
    result = runner.run()
    assert result["status"] == "no-frontier"
    assert result["outcome"] == "all-survive"
    assert result["critical"] is None
    assert len(runner.history) == 2  # only the two endpoints were probed


def test_bisect_replay_is_deterministic():
    spec = bisect_spec()
    first = FrontierRunner(
        spec, workers=1, executor=oracle_executor(lambda v: v[0] > 0.37)
    )
    second = FrontierRunner(
        bisect_spec(), workers=1, executor=oracle_executor(lambda v: v[0] > 0.37)
    )
    a, b = first.run(), second.run()
    assert a == b
    assert [e["values"] for e in first.history] == [e["values"] for e in second.history]
    assert [e["base_seed"] for e in first.history] == [
        e["base_seed"] for e in second.history
    ]


def test_probe_cache_and_budget_exhaustion():
    calls = []
    spec = bisect_spec(max_probes=3, tolerance=0.0001)
    runner = FrontierRunner(
        spec, workers=1, executor=oracle_executor(lambda v: v[0] > 0.37, calls)
    )
    result = runner.run()
    assert result["status"] == "budget-exhausted"
    assert len(calls) == 3  # endpoint, endpoint, one split — then the cap
    # revisiting a cached probe is free and returns the same entry
    entry = runner.run_probe([spec.dimensions[0].low])
    assert len(calls) == 3
    assert entry is runner.history[0]


def test_errored_probe_aborts_the_search():
    def exploding(payload):
        return {
            "cell_id": payload["cell_id"],
            "n": payload["n"],
            "params": payload["params"],
            "seeds": payload["seeds"],
            "runs": [],
            "stats": None,
            "error": "Traceback ...\nSimulationError: boom",
            "wall_time_s": 0.1,
        }

    runner = FrontierRunner(bisect_spec(), workers=1, executor=exploding)
    with pytest.raises(ExperimentError, match="boom"):
        runner.run()


# --------------------------------------------------------------------------
# Worker-crash recovery through the PoolExecutor seam
# --------------------------------------------------------------------------


class _FakeTask:
    def __init__(self, fn, payload, fail):
        self.fn, self.payload, self.fail = fn, payload, fail

    def get(self, timeout=None):
        if self.fail:
            raise multiprocessing.TimeoutError("worker lost")
        return self.fn(self.payload)


class _FakePool:
    def __init__(self, fail):
        self.fail = fail

    def apply_async(self, fn, args):
        return _FakeTask(fn, args[0], self.fail)

    def terminate(self):
        pass

    def join(self):
        pass


def test_worker_crash_is_retried_on_a_rebuilt_pool():
    pools = []

    def flaky_factory(workers):
        pools.append(workers)
        return _FakePool(fail=len(pools) == 1)  # first pool loses every task

    runner = FrontierRunner(
        bisect_spec(),
        workers=2,
        executor=oracle_executor(lambda v: v[0] > 0.37),
        pool_factory=flaky_factory,
        retries=1,
    )
    result = runner.run()
    assert result["status"] == "bracketed"
    assert abs(result["critical"] - 0.37) <= 0.01
    assert len(pools) >= 2  # the crashed pool was rebuilt


def test_worker_crash_exhausting_retries_fails_loudly():
    def dead_factory(workers):
        return _FakePool(fail=True)

    runner = FrontierRunner(
        bisect_spec(),
        workers=2,
        executor=oracle_executor(lambda v: v[0] > 0.37),
        pool_factory=dead_factory,
        retries=1,
    )
    with pytest.raises(ExperimentError, match="worker lost"):
        runner.run()


# --------------------------------------------------------------------------
# Evolutionary strategy
# --------------------------------------------------------------------------


def evolve_spec():
    scenario = one_cell_scenario(
        events=[
            EventSpec(
                kind="leave",
                fraction=0.2,
                at=BudgetPolicy(factor=4.0, n_exponent=1.0, log_exponent=1.0),
            ),
            EventSpec(
                kind="join",
                fraction=0.2,
                at=BudgetPolicy(factor=8.0, n_exponent=1.0, log_exponent=1.0),
            ),
        ]
    )
    return SearchSpec(
        name="oracle-evolve",
        scenario=scenario,
        dimensions=[
            DimensionSpec(event=0, dimension="fraction", low=0.05, high=0.6),
            DimensionSpec(event=1, dimension="fraction", low=0.05, high=0.6),
        ],
        guarantee=GuaranteeSpec(kind="recovered"),
        strategy="evolve",
        seeds_per_probe=2,
        max_probes=64,
        population=4,
        offspring=6,
        generations=4,
    )


def test_evolve_finds_a_mild_breaking_point():
    breaks = lambda v: v[0] + v[1] > 0.7  # noqa: E731 - oracle frontier line
    runner = FrontierRunner(evolve_spec(), workers=1, executor=oracle_executor(breaks))
    result = runner.run()
    assert result["status"] == "frontier-point"
    assert breaks(result["critical"])
    # the winner sits near the frontier line, not deep in the broken region
    assert sum(result["critical"]) < 1.1
    assert result["survived_frontier"] is not None
    # deterministic replay
    again = FrontierRunner(evolve_spec(), workers=1, executor=oracle_executor(breaks))
    assert again.run() == result


def test_evolve_reports_no_frontier_when_nothing_breaks():
    runner = FrontierRunner(
        evolve_spec(), workers=1, executor=oracle_executor(lambda v: False)
    )
    result = runner.run()
    assert result["status"] == "no-frontier"
    assert result["critical"] is None


# --------------------------------------------------------------------------
# Artifacts and CLI
# --------------------------------------------------------------------------


def test_frontier_artifact_round_trip(tmp_path):
    spec = bisect_spec()
    runner = FrontierRunner(
        spec, workers=1, executor=oracle_executor(lambda v: v[0] > 0.37)
    )
    result = runner.run()
    document = build_frontier_document(spec, result, runner.history, workers=1)
    paths = write_frontier(document, str(tmp_path), spec)
    assert paths["json"] == frontier_json_path(str(tmp_path), spec)
    loaded = load_frontier_document(paths["json"])
    assert loaded["artifact"] == "frontier"
    assert loaded["status"] == "bracketed"
    assert SearchSpec.from_dict(loaded["spec"]).to_dict() == spec.to_dict()
    assert len(loaded["history"]) == len(runner.history)
    for entry in loaded["history"]:
        assert entry["base_seed"] == probe_base_seed(spec, entry["values"])
    # loading a non-frontier document fails loudly
    other = tmp_path / "SCENARIO_x.json"
    other.write_text(json.dumps({"artifact": "scenario"}))
    with pytest.raises(ExperimentError, match="not a frontier artifact"):
        load_frontier_document(str(other))
    assert load_frontier_document(str(tmp_path / "missing.json")) is None


def test_builtin_searches_construct_and_resolve():
    specs = builtin_searches()
    assert builtin_search_names()[0] == "epidemic-churn"
    assert {"epidemic-churn", "backup-recount", "search-smoke"} <= set(specs)
    for spec in specs.values():
        assert len(spec.scenario.cells()) == 1
        SearchSpec.from_json(spec.to_json())  # JSON round-trip constructs
    with pytest.raises(ConfigurationError, match="unknown builtin search"):
        resolve_builtin_search("nope")


def test_cli_search_list_and_dump(capsys):
    assert search_main(["--list"]) == 0
    assert "epidemic-churn" in capsys.readouterr().out
    assert search_main(["--dump-spec", "search-smoke"]) == 0
    dumped = capsys.readouterr().out
    assert SearchSpec.from_json(dumped).name == "search-smoke"
    assert search_main(["--dump-spec", "nope"]) == 2


def test_cli_search_runs_a_spec_file(tmp_path, capsys):
    spec = resolve_builtin_search("search-smoke")
    spec_path = tmp_path / "search.json"
    spec_path.write_text(spec.to_json())
    code = search_main(
        ["--spec", str(spec_path), "--output-dir", str(tmp_path), "--workers", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "FRONTIER_search-smoke.json" in out
    document = load_frontier_document(
        os.path.join(str(tmp_path), "FRONTIER_search-smoke.json")
    )
    assert document["status"] in ("bracketed", "no-frontier", "budget-exhausted")
    assert document["history"]

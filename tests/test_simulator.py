"""Unit tests for the simulator core (agent backend) and its regressions."""

import pytest

from repro.engine import (
    CallbackHook,
    ConfigurationError,
    SimulationError,
    Simulator,
    UniformityError,
    all_outputs_equal,
    default_interaction_budget,
    simulate,
)
from repro.engine.scheduler import SequenceScheduler
from repro.primitives.epidemic import MaximumBroadcast, OneWayEpidemic
from repro.primitives.load_balancing import ClassicalLoadBalancing


def test_epidemic_converges_and_reports_consensus():
    result = simulate(
        OneWayEpidemic(),
        32,
        seed=11,
        convergence=all_outputs_equal(1),
    )
    assert result.converged
    assert result.consensus_output == 1
    assert result.stopped_reason in ("converged", "converged-at-budget")
    assert result.convergence_interaction is not None
    assert result.agreement_fraction == 1.0
    assert result.extra["backend"] == "agent"
    assert result.extra["transition_calls"] == result.interactions


def test_budget_exhaustion_without_predicate():
    result = simulate(OneWayEpidemic(), 8, seed=0, max_interactions=40)
    assert result.interactions == 40
    assert result.stopped_reason == "budget"
    assert not result.converged


def test_require_convergence_raises_on_budget_exhaustion():
    with pytest.raises(SimulationError):
        simulate(
            OneWayEpidemic(),
            16,
            seed=0,
            max_interactions=5,
            convergence=all_outputs_equal(1),
            require_convergence=True,
        )


def test_seed_repr_is_recorded_for_non_int_seeds():
    # Regression: string seeds used to be silently recorded as None.
    result = simulate(OneWayEpidemic(), 8, seed="exp-1", max_interactions=10)
    assert result.seed == repr("exp-1")
    assert simulate(OneWayEpidemic(), 8, seed=7, max_interactions=10).seed == 7
    assert simulate(OneWayEpidemic(), 8, seed=None, max_interactions=10).seed is None


def test_final_check_not_double_recorded_when_budget_aligns_with_cadence():
    # Regression: with the budget a multiple of check_interval, the final
    # configuration used to be recorded twice (once by the in-loop checkpoint
    # and once by the budget-exhaustion check), inflating check counts and
    # confirmation streaks.
    result = simulate(
        OneWayEpidemic(source_count=8),
        8,  # every agent already informed: predicate holds from the start
        seed=0,
        max_interactions=40,
        check_interval=10,
        convergence=all_outputs_equal(1),
        stop_when_converged=False,
    )
    assert result.extra["convergence_checks"] == 4
    assert result.extra["satisfied_checks"] == 4
    assert result.converged


def test_final_check_recorded_once_when_budget_misaligned():
    result = simulate(
        OneWayEpidemic(source_count=8),
        8,
        seed=0,
        max_interactions=45,
        check_interval=10,
        convergence=all_outputs_equal(1),
        stop_when_converged=False,
    )
    # Four in-loop checkpoints (10, 20, 30, 40) plus the final check at 45.
    assert result.extra["convergence_checks"] == 5
    assert result.converged


def test_confirm_checks_requires_full_streak():
    # The predicate holds from the start, so the run stops after exactly
    # confirm_checks checkpoints.
    result = simulate(
        OneWayEpidemic(source_count=8),
        8,
        seed=0,
        max_interactions=1000,
        check_interval=10,
        convergence=all_outputs_equal(1),
        confirm_checks=3,
    )
    assert result.stopped_reason == "converged"
    assert result.interactions == 30
    assert result.convergence_interaction == 1


def test_min_participation_and_state_space_tracking():
    simulator = Simulator(OneWayEpidemic(), 6, seed=2)
    for _ in range(200):
        simulator.step()
    assert simulator.counter.total == 200
    assert simulator.counter.min_participation >= 1
    assert simulator.state_space.distinct_states == 2
    assert simulator.is_stable_configuration() is (
        len(set(simulator.state_keys())) == 1
    )


def test_hooks_receive_events():
    events = []
    hook = CallbackHook(
        on_start=lambda sim: events.append("start"),
        after_interaction=lambda sim, a, b: events.append("interaction"),
        on_checkpoint=lambda sim, ok: events.append("checkpoint"),
        on_end=lambda sim: events.append("end"),
    )
    simulate(
        OneWayEpidemic(),
        8,
        seed=0,
        max_interactions=16,
        check_interval=8,
        convergence=all_outputs_equal(1),
        stop_when_converged=False,
        hooks=[hook],
    )
    assert events[0] == "start"
    assert events[-1] == "end"
    assert events.count("interaction") == 16
    assert events.count("checkpoint") >= 2


def test_sequence_scheduler_drives_chosen_pairs():
    protocol = MaximumBroadcast([5, 0, 0])
    simulator = Simulator(protocol, 3, scheduler=SequenceScheduler([(1, 0), (2, 1)]))
    simulator.step()
    simulator.step()
    assert [state.value for state in simulator.states] == [5, 5, 5]


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        Simulator(OneWayEpidemic(), 1)
    with pytest.raises(ConfigurationError):
        simulate(OneWayEpidemic(), 4, max_interactions=-1)
    with pytest.raises(ConfigurationError):
        simulate(OneWayEpidemic(), 4, check_interval=0, convergence=all_outputs_equal())
    with pytest.raises(ConfigurationError):
        simulate(OneWayEpidemic(), 4, confirm_checks=0, convergence=all_outputs_equal())
    with pytest.raises(ConfigurationError):
        Simulator(OneWayEpidemic(), 4, backend="vectorised")
    with pytest.raises(ConfigurationError):
        default_interaction_budget(1)


def test_require_uniform_rejects_non_uniform_protocols():
    class NonUniform(OneWayEpidemic):
        uniform = False

    with pytest.raises(UniformityError):
        Simulator(NonUniform(), 4, require_uniform=True)


def test_result_summary_is_json_friendly():
    import json

    result = simulate(
        ClassicalLoadBalancing([8]),
        4,
        seed=3,
        max_interactions=100,
    )
    summary = result.summary()
    json.dumps(summary)
    assert summary["protocol"] == "classical-load-balancing"
    assert summary["backend"] == "agent"
    assert summary["n"] == 4

"""Make ``src/`` importable without an installed package.

The tier-1 command is ``PYTHONPATH=src python -m pytest -x -q``; this
conftest makes the suite also work from a bare ``pytest`` invocation.
"""

import os
import sys

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

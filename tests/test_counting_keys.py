"""Native key-level transitions of the counting stack (PR 2 tentpole).

The composed counting protocols historically went through the generic
``LiftedKeyTransitions`` adapter; they now decode states from their
(self-describing) keys.  These tests pin the exactness argument:

* ``delta_key`` agrees with the mutating ``transition`` on every key pair
  visited by a real run (randomness synchronised via twin RNGs);
* ``output_key`` / ``initial_key_counts`` agree with their state-level
  counterparts;
* agent and batch backends reach the *exact same terminal histogram* for the
  deterministic backup protocols (their absorbing configuration is unique);
* agent and batch convergence-time distributions are statistically
  compatible for the randomised composed protocols (KS-style check);
* ``copy_state`` deep-copies nested component dataclasses (the regression
  that silently corrupted the lifted adapter's representatives).
"""

import math
from collections import Counter

import pytest

from repro.counting.approximate import ApproximateProtocol
from repro.counting.backup import ApproximateBackupProtocol, ExactBackupProtocol
from repro.counting.count_exact import CountExactProtocol
from repro.counting.keys import PHASE_RESIDUE_MODULUS, phase_distance
from repro.counting.search import SearchWithGivenLeader
from repro.counting.stable_approximate import StableApproximateProtocol
from repro.counting.stable_count_exact import StableCountExactProtocol
from repro.engine import Simulator, simulate
from repro.engine.backends import LiftedKeyTransitions
from repro.engine.rng import make_rng

COUNTING_PROTOCOLS = [
    ApproximateProtocol,
    CountExactProtocol,
    StableApproximateProtocol,
    StableCountExactProtocol,
    SearchWithGivenLeader,
    ApproximateBackupProtocol,
    ExactBackupProtocol,
]


@pytest.mark.parametrize("make_protocol", COUNTING_PROTOCOLS)
def test_counting_protocols_support_key_transitions(make_protocol):
    assert make_protocol().supports_key_transitions()


@pytest.mark.parametrize("make_protocol", COUNTING_PROTOCOLS)
def test_delta_key_matches_transition_along_agent_run(make_protocol):
    # Drive an agent-backend simulation and check at every step that the
    # key-level transition (on twin randomness) lands on the same key pair
    # as the mutating transition.
    protocol = make_protocol()
    n = 12
    simulator = Simulator(protocol, n, seed=17, backend="agent")
    for step in range(600):
        initiator, responder = simulator.scheduler.next_pair(
            n, simulator._scheduler_rng, simulator.interactions
        )
        state_a = simulator.states[initiator]
        state_b = simulator.states[responder]
        keys_before = (protocol.state_key(state_a), protocol.state_key(state_b))
        expected = protocol.delta_key(*keys_before, make_rng(step))
        protocol.transition(state_a, state_b, make_rng(step))
        observed = (protocol.state_key(state_a), protocol.state_key(state_b))
        assert observed == expected, (protocol.name, step, keys_before)


@pytest.mark.parametrize("make_protocol", COUNTING_PROTOCOLS)
def test_output_key_matches_output_on_visited_states(make_protocol):
    protocol = make_protocol()
    n = 12
    simulator = Simulator(protocol, n, seed=3, backend="agent")
    simulator.run(max_interactions=40 * n)
    for state in simulator.states:
        key = protocol.state_key(state)
        assert protocol.output_key(key) == protocol.output(state), protocol.name


@pytest.mark.parametrize("make_protocol", COUNTING_PROTOCOLS)
def test_initial_key_counts_match_per_agent_construction(make_protocol):
    protocol = make_protocol()
    n = 29
    explicit = Counter(
        protocol.state_key(protocol.initial_state(agent_id)) for agent_id in range(n)
    )
    assert protocol.initial_key_counts(n) == explicit


def test_relaxed_stable_approximate_declines_native_keys_but_stays_runnable():
    # The relaxed key drops the backup's k_max, which the output function
    # still reads for token-less agents — so the key is lossy w.r.t. the
    # output and the native path must be declined (lifted adapter instead).
    protocol = StableApproximateProtocol(relaxed_output=True)
    assert not protocol.supports_key_transitions()
    result = simulate(protocol, 16, seed=5, backend="batch", max_interactions=4000)
    assert result.extra["backend"] == "batch"
    assert sum(result.output_counts.values()) == 16
    # auto falls back to the faithful per-agent backend in relaxed mode.
    assert Simulator(protocol, 16, backend="auto").backend_name == "agent"


def test_native_keys_agree_with_fixed_lifted_adapter():
    # The lifted adapter (with the deep-copy fix) and the native decoders
    # must produce identical key-level transitions given twin randomness.
    protocol = CountExactProtocol()
    lifted = LiftedKeyTransitions(protocol)
    simulator = Simulator(protocol, 10, seed=2, backend="agent")
    simulator.run(max_interactions=400)
    keys = [lifted.register(state) for state in simulator.states]
    for index, key_a in enumerate(keys):
        key_b = keys[(index + 1) % len(keys)]
        native = protocol.delta_key(key_a, key_b, make_rng(index))
        adapted = lifted.delta_key(key_a, key_b, make_rng(index))
        assert native == adapted


def test_copy_state_deep_copies_nested_components():
    protocol = ApproximateProtocol()
    state = protocol.initial_state(0)
    copy = protocol.copy_state(state)
    assert copy is not state
    assert copy.junta is not state.junta
    assert copy.clock is not state.clock
    copy.junta.level = 7
    assert state.junta.level == 0


def test_phase_distance_is_circular():
    assert phase_distance(0, 1) == 1
    assert phase_distance(39, 0) == 1  # the wrap that abs() would call 39
    assert phase_distance(5, 5) == 0
    assert phase_distance(0, 20) == PHASE_RESIDUE_MODULUS // 2


@pytest.mark.parametrize(
    "make_protocol, n",
    [(ApproximateBackupProtocol, 22), (ExactBackupProtocol, 18)],
)
def test_backup_terminal_histograms_match_exactly(make_protocol, n):
    # The deterministic backup protocols have a *unique* absorbing
    # configuration (Lemmas 12-13: the pile multiset encodes n, resp. a
    # single uncounted agent holds n), so agent and batch runs must end in
    # the exact same state-key histogram even though their trajectories
    # differ.
    batch = Simulator(make_protocol(), n, seed=11, backend="batch")
    result = batch.run(max_interactions=600 * n * n)
    assert result.stopped_reason == "terminal"

    agent = Simulator(make_protocol(), n, seed=99, backend="agent")
    agent.run(max_interactions=600 * n * n)
    assert agent.is_stable_configuration()
    assert agent.state_key_counts() == batch.state_key_counts()

    counts = batch.state_key_counts()
    if make_protocol is ExactBackupProtocol:
        # Lemma 13: a single uncounted agent holds exactly n; everyone
        # broadcasts it.
        assert counts == Counter({(False, n, 0): 1, (True, n, 0): n - 1})
    else:
        # Lemma 12: the pile logarithms encode the binary representation of
        # n and k_max stabilises to floor(log2 n).
        k_max = int(math.floor(math.log2(n)))
        piles = sorted(k for (k, _k_max, _inst), count in counts.items() for _ in range(count) if k >= 0)
        assert sum(1 << k for k in piles) == n
        assert len(set(piles)) == len(piles)  # one pile per set bit
        assert all(key[1] == k_max for key in counts)


from repro.engine.stats import ks_statistic as _ks_statistic  # noqa: E402  (shared statistical harness)


@pytest.mark.stats
@pytest.mark.parametrize(
    "make_protocol, n, samples, budget_factor",
    [
        (StableApproximateProtocol, 32, 20, 400),
        (CountExactProtocol, 16, 20, 600),
    ],
)
def test_agent_batch_convergence_times_compatible(make_protocol, n, samples, budget_factor):
    # The batch backend simulates the same chain marginalised over agent
    # identities, so convergence-time distributions must be statistically
    # indistinguishable (KS-style tolerance; critical value for 20-vs-20 at
    # alpha = 0.01 is ~0.51).
    agent_times = []
    batch_times = []
    for seed in range(samples):
        for backend, times in (("agent", agent_times), ("batch", batch_times)):
            protocol = make_protocol()
            result = simulate(
                protocol,
                n,
                seed=derived_seed(backend, seed),
                backend=backend,
                convergence=protocol.convergence_predicate(n),
                max_interactions=budget_factor * n,
                check_interval=n,
                confirm_checks=2,
            )
            if result.converged:
                times.append(result.convergence_interaction)
    # Most runs must converge for the comparison to mean anything.
    assert len(agent_times) >= samples * 3 // 4, len(agent_times)
    assert len(batch_times) >= samples * 3 // 4, len(batch_times)
    statistic = _ks_statistic(agent_times, batch_times)
    assert statistic < 0.51, (statistic, agent_times, batch_times)


def derived_seed(backend: str, index: int) -> int:
    # Fixed per-backend offsets: str hash() is randomised per process and
    # would make failures irreproducible across pytest invocations.
    return {"agent": 0, "batch": 1_000_000}[backend] + index

"""Package metadata for the conf_podc_BerenbrinkKR19 reproduction.

Kept in ``setup.py`` (rather than ``pyproject.toml``) so that legacy
editable installs (``pip install -e .``) work on machines without the
``wheel`` package, e.g. offline environments.
"""

import os
import re

from setuptools import find_namespace_packages, setup


def _version() -> str:
    """Single-source the version from ``repro.fingerprint``.

    Read textually (not imported): at build time the package may not be
    importable yet, and importing it would hash the source tree.
    """
    path = os.path.join(
        os.path.dirname(__file__), "src", "repro", "fingerprint.py"
    )
    with open(path, "r", encoding="utf-8") as handle:
        match = re.search(r'^PACKAGE_VERSION = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("PACKAGE_VERSION not found in repro/fingerprint.py")
    return match.group(1)


setup(
    name="repro-berenbrink-kr19",
    version=_version(),
    description=(
        "Reproduction of Berenbrink, Kaaser, Radzik (PODC 2019) population "
        "protocols with a batched configuration-vector simulation backend "
        "(pluggable scan/alias/Fenwick/vector weighted samplers, optional "
        "NumPy-vectorised batch kernels with a pure-Python fallback), a "
        "parallel experiment-sweep subsystem, a dynamic-population "
        "chaos-scenario subsystem with adversarial frontier search, an "
        "multi-host HTTP job server with remote pull-protocol workers and "
        "a persistent content-addressed result cache, and end-to-end "
        "telemetry (run tracing, Prometheus-style /metrics, live job "
        "event streams)"
    ),
    package_dir={"": "src"},
    packages=find_namespace_packages(where="src"),
    python_requires=">=3.10",  # dataclass(slots=True) throughout
    extras_require={
        "test": ["pytest"],
        # The acceleration layer is optional by design: the core library
        # stays dependency-free and falls back to the pure-Python hot loop
        # (continuously exercised by the CI matrix) when NumPy is absent.
        "accel": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro-bench=repro.bench.cli:main",
            "repro-sweep=repro.experiments.cli:main",
            "repro-chaos=repro.scenarios.cli:main",
            "repro-serve=repro.server.cli:main",
            "repro-worker=repro.server.worker:main",
        ]
    },
)

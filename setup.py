"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
only so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on machines without the ``wheel`` package, e.g. offline environments.
"""

from setuptools import setup

setup()

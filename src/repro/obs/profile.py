"""Aggregate per-run telemetry into per-phase profiles (``--profile``).

Every run record carries ``extra["telemetry"]`` (see
:mod:`repro.obs.trace`); a sweep/scenario cell carries a list of such
runs, and a frontier search's probe history is a list of cells.  This
module folds any of those shapes into one profile document::

    {
      "schema": 1,
      "runs": 12,
      "backends": {"batch": 12},
      "phases": {"sampling": {"wall_time_s": ..., "ops": ...}, ...},
      "events": {"sampler-swap": 1, "accel-fallback": 1},
      "skips": {"interactions": ..., "applied_events": ...,
                "skipped_interactions": ..., "efficiency": ...},
      "checkpoints": {"count": ..., "satisfied": ...}
    }

rendered by :func:`render_profile` as the breakdown table the batch CLIs
print under ``--profile`` and written as ``PROFILE_<name>.json`` next to
the other artifacts.  Timing fields keep the volatile ``wall_time_s``
name, so embedded profiles never break artifact-stability comparisons.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "aggregate_telemetry",
    "iter_run_telemetry",
    "merge_profiles",
    "profile_from_cells",
    "profile_json_path",
    "render_profile",
    "write_profile",
]


def iter_run_telemetry(cells: Iterable[Dict[str, Any]]) -> Iterable[Dict[str, Any]]:
    """Yield every run-level telemetry dict found in a list of cell records."""
    for cell in cells:
        if not isinstance(cell, dict):
            continue
        for run in cell.get("runs") or []:
            if not isinstance(run, dict):
                continue
            telemetry = (run.get("extra") or {}).get("telemetry")
            if isinstance(telemetry, dict):
                yield telemetry


def aggregate_telemetry(traces: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold run-level telemetry dicts into one profile document."""
    runs = 0
    backends: Dict[str, int] = {}
    phase_s: Dict[str, float] = {}
    phase_ops: Dict[str, int] = {}
    events: Dict[str, int] = {}
    skips = {"interactions": 0, "applied_events": 0, "skipped_interactions": 0}
    saw_skips = False
    checkpoints = {"count": 0, "satisfied": 0}
    for telemetry in traces:
        runs += 1
        backend = telemetry.get("backend")
        if backend:
            backends[backend] = backends.get(backend, 0) + 1
        for name, phase in (telemetry.get("phases") or {}).items():
            phase_s[name] = phase_s.get(name, 0.0) + float(
                phase.get("wall_time_s") or 0.0
            )
            phase_ops[name] = phase_ops.get(name, 0) + int(phase.get("ops") or 0)
        for event in telemetry.get("events") or []:
            kind = event.get("kind", "unknown")
            events[kind] = events.get(kind, 0) + 1
        run_skips = telemetry.get("skips")
        if isinstance(run_skips, dict):
            saw_skips = True
            for key in skips:
                skips[key] += int(run_skips.get(key) or 0)
        run_checks = telemetry.get("checkpoints")
        if isinstance(run_checks, dict):
            for key in checkpoints:
                checkpoints[key] += int(run_checks.get(key) or 0)
    profile: Dict[str, Any] = {
        "schema": 1,
        "runs": runs,
        "backends": backends,
        "phases": {
            name: {"wall_time_s": round(phase_s[name], 9), "ops": phase_ops[name]}
            for name in sorted(phase_s)
        },
        "events": events,
        "checkpoints": checkpoints,
    }
    if saw_skips:
        interactions = skips["interactions"]
        profile["skips"] = {
            **skips,
            "efficiency": (
                round(skips["skipped_interactions"] / interactions, 6)
                if interactions
                else 0.0
            ),
        }
    return profile


def profile_from_cells(cells: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Profile document aggregated over every run in a list of cell records."""
    return aggregate_telemetry(iter_run_telemetry(cells))


def merge_profiles(profiles: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold already-aggregated profile documents into one.

    The frontier search trims per-run records out of its history, keeping
    one :func:`aggregate_telemetry` profile per probe instead; this merges
    those probe profiles into the artifact-level one.  Profile ``events``
    are ``{kind: count}`` maps (unlike a run's event *list*), hence the
    separate fold.
    """
    merged = aggregate_telemetry([])
    merged["runs"] = 0
    saw_skips = False
    skips = {"interactions": 0, "applied_events": 0, "skipped_interactions": 0}
    for profile in profiles:
        if not isinstance(profile, dict):
            continue
        merged["runs"] += int(profile.get("runs") or 0)
        for backend, count in (profile.get("backends") or {}).items():
            merged["backends"][backend] = merged["backends"].get(backend, 0) + count
        for name, phase in (profile.get("phases") or {}).items():
            slot = merged["phases"].setdefault(name, {"wall_time_s": 0.0, "ops": 0})
            slot["wall_time_s"] = round(
                slot["wall_time_s"] + float(phase.get("wall_time_s") or 0.0), 9
            )
            slot["ops"] += int(phase.get("ops") or 0)
        for kind, count in (profile.get("events") or {}).items():
            merged["events"][kind] = merged["events"].get(kind, 0) + count
        for key in merged["checkpoints"]:
            merged["checkpoints"][key] += int(
                (profile.get("checkpoints") or {}).get(key) or 0
            )
        profile_skips = profile.get("skips")
        if isinstance(profile_skips, dict):
            saw_skips = True
            for key in skips:
                skips[key] += int(profile_skips.get(key) or 0)
    merged["phases"] = {name: merged["phases"][name] for name in sorted(merged["phases"])}
    if saw_skips:
        interactions = skips["interactions"]
        merged["skips"] = {
            **skips,
            "efficiency": (
                round(skips["skipped_interactions"] / interactions, 6)
                if interactions
                else 0.0
            ),
        }
    return merged


def render_profile(profile: Dict[str, Any], title: Optional[str] = None) -> str:
    """The per-phase breakdown table printed under ``--profile``."""
    lines: List[str] = []
    if title:
        lines.append(f"profile: {title}")
    runs = profile.get("runs", 0)
    backends = profile.get("backends") or {}
    backend_note = (
        ", ".join(f"{count}x {name}" for name, count in sorted(backends.items()))
        or "none"
    )
    lines.append(f"runs traced: {runs} ({backend_note})")
    phases = profile.get("phases") or {}
    total = sum(float(p.get("wall_time_s") or 0.0) for p in phases.values())
    header = f"{'phase':<14} {'wall_time_s':>12} {'share':>7} {'ops':>12} {'s/op':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(phases, key=lambda n: -float(phases[n].get("wall_time_s") or 0)):
        seconds = float(phases[name].get("wall_time_s") or 0.0)
        ops = int(phases[name].get("ops") or 0)
        share = f"{100.0 * seconds / total:6.1f}%" if total else "    n/a"
        per_op = f"{seconds / ops:10.2e}" if ops else f"{'n/a':>10}"
        lines.append(f"{name:<14} {seconds:>12.6f} {share} {ops:>12} {per_op}")
    lines.append("-" * len(header))
    lines.append(f"{'total traced':<14} {total:>12.6f} {'100.0%' if total else '   n/a':>7}")
    skips = profile.get("skips")
    if skips:
        lines.append(
            f"geometric skips: {skips['skipped_interactions']} of "
            f"{skips['interactions']} interactions skipped "
            f"(efficiency {skips['efficiency']:.4f}, "
            f"{skips['applied_events']} applied events)"
        )
    checkpoints = profile.get("checkpoints") or {}
    if checkpoints.get("count"):
        lines.append(
            f"checkpoints: {checkpoints['count']} evaluated, "
            f"{checkpoints['satisfied']} satisfied"
        )
    events = profile.get("events") or {}
    if events:
        lines.append(
            "events: "
            + ", ".join(f"{kind} x{count}" for kind, count in sorted(events.items()))
        )
    return "\n".join(lines)


def profile_json_path(output_dir: str, name: str) -> str:
    """Path of the profile artifact for a named sweep/scenario/bench run."""
    return os.path.join(output_dir, f"PROFILE_{name}.json")


def write_profile(profile: Dict[str, Any], output_dir: str, name: str) -> str:
    """Write ``PROFILE_<name>.json``; returns the path."""
    os.makedirs(output_dir, exist_ok=True)
    path = profile_json_path(output_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(profile, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

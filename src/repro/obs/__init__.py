"""Observability: run tracing, metrics, and profile aggregation.

Stdlib-only.  Three layers, one per module:

* :mod:`repro.obs.trace` — :class:`~repro.obs.trace.RunTracer`, the
  per-run phase-timing and event log every backend carries; surfaced as
  ``SimulationResult.extra["telemetry"]``.
* :mod:`repro.obs.metrics` — process-level counters / gauges /
  histograms with a Prometheus text-exposition renderer, served by
  ``repro-serve`` at ``GET /metrics``.
* :mod:`repro.obs.profile` — aggregation of per-run telemetry into the
  per-phase breakdown behind the ``--profile`` flag and the
  ``PROFILE_<name>.json`` artifacts.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, parse_exposition
from .profile import (
    aggregate_telemetry,
    merge_profiles,
    profile_from_cells,
    profile_json_path,
    render_profile,
    write_profile,
)
from .trace import RunTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTracer",
    "aggregate_telemetry",
    "merge_profiles",
    "parse_exposition",
    "profile_from_cells",
    "profile_json_path",
    "render_profile",
    "write_profile",
]

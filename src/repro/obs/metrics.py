"""Process-level metrics with Prometheus text exposition (stdlib only).

A :class:`MetricsRegistry` owns a set of named metric families —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` — each optionally
split by a fixed tuple of label names, and renders them all in the
Prometheus text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE``
comment pairs followed by one sample line per label combination, with
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.

Values that must reflect some other component's live state (the result
cache's hit/miss counters, job counts per state) are refreshed through
*collectors*: callbacks registered with
:meth:`MetricsRegistry.add_collector` that run at the top of every
:meth:`MetricsRegistry.render`, so a ``/metrics`` scrape and the JSON
endpoint it mirrors can never disagree.

:func:`parse_exposition` is the strict inverse used by the tests and the
server smoke: it parses every line or raises, which is what makes
"``/metrics`` output is well-formed" an executable assertion.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter_value",
    "parse_exposition",
]

#: One immutable key per label combination: ``(("kind", "sweep"), ...)``.
LabelKey = Tuple[Tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for job/cell wall-clock latencies
#: (5 ms .. 5 min); the implicit ``+Inf`` bucket is always appended.
DEFAULT_BUCKETS = (
    0.005,
    0.025,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)


def _format_value(value: float) -> str:
    """Render a sample value: integers without a decimal point."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Metric:
    """Base metric family: a name, help text, and per-label-set children."""

    type_name = ""

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on {name}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock

    def _key(self, labels: Dict[str, Any]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple((name, str(labels[name])) for name in self.labelnames)

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        """Yield ``(name_suffix, label_key, value)`` triples."""
        raise NotImplementedError

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help_text)}",
            f"# TYPE {self.name} {self.type_name}",
        ]
        for suffix, key, value in sorted(self.samples(), key=lambda s: (s[0], s[1])):
            if key:
                labels = ",".join(
                    f'{name}="{_escape_label_value(value_)}"' for name, value_ in key
                )
                lines.append(f"{self.name}{suffix}{{{labels}}} {_format_value(value)}")
            else:
                lines.append(f"{self.name}{suffix} {_format_value(value)}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value (per label combination)."""

    type_name = "counter"

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: Any) -> None:
        """Overwrite the running total — for collectors mirroring an
        external monotonic source (e.g. the result cache's own counters)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        with self._lock:
            return [("", key, value) for key, value in self._values.items()]


class Gauge(_Metric):
    """A value that can go up and down (per label combination)."""

    type_name = "gauge"

    def __init__(self, *args: Any) -> None:
        super().__init__(*args)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        with self._lock:
            return [("", key, value) for key, value in self._values.items()]


class Histogram(_Metric):
    """Cumulative-bucket histogram of observed values."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds
        # Per label set: [per-bucket counts..., +Inf count], sum.
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
            self._sums[key] += float(value)

    def count(self, **labels: Any) -> int:
        with self._lock:
            counts = self._counts.get(self._key(labels))
            return sum(counts) if counts else 0

    def samples(self) -> Iterable[Tuple[str, LabelKey, float]]:
        with self._lock:
            out: List[Tuple[str, LabelKey, float]] = []
            for key, counts in self._counts.items():
                cumulative = 0
                for bound, count in zip(self.buckets, counts):
                    cumulative += count
                    bucket_key = key + (("le", _format_value(bound)),)
                    out.append(("_bucket", bucket_key, float(cumulative)))
                cumulative += counts[-1]
                out.append(("_bucket", key + (("le", "+Inf"),), float(cumulative)))
                out.append(("_sum", key, self._sums[key]))
                out.append(("_count", key, float(cumulative)))
            return out


class MetricsRegistry:
    """A named, ordered set of metric families plus render-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name} already registered with a "
                        f"different type"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter(name, help_text, labelnames, self._lock))  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str, labelnames: Tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help_text, labelnames, self._lock))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labelnames, self._lock, buckets)  # type: ignore[return-value]
        )

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run at the top of every :meth:`render`."""
        with self._lock:
            self._collectors.append(collector)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        for collector in list(self._collectors):
            collector()
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$")
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$")


def _unescape_label_value(text: str) -> str:
    return (
        text.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def parse_exposition(text: str) -> Dict[str, Dict[LabelKey, float]]:
    """Strictly parse Prometheus text exposition; raise on any bad line.

    Returns ``{sample_name: {label_key: value}}`` where histogram series
    appear under their expanded ``_bucket`` / ``_sum`` / ``_count`` names.
    Every sample must be preceded by a ``# TYPE`` declaration covering it,
    which is what makes this a format check and not just a scrape.
    """
    declared: Dict[str, str] = {}
    samples: Dict[str, Dict[LabelKey, float]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line):
                continue
            match = _TYPE_RE.match(line)
            if match:
                declared[match.group(1)] = match.group(2)
                continue
            raise ValueError(f"line {number}: malformed comment: {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and declared.get(trimmed) == "histogram":
                base = trimmed
                break
        if base not in declared:
            raise ValueError(f"line {number}: sample {name!r} has no # TYPE")
        raw_labels = match.group("labels")
        key: LabelKey = ()
        if raw_labels:
            pairs = _LABEL_PAIR_RE.findall(raw_labels)
            reassembled = ",".join(f'{n}="{v}"' for n, v in pairs)
            if reassembled != raw_labels:
                raise ValueError(f"line {number}: malformed labels: {raw_labels!r}")
            key = tuple((n, _unescape_label_value(v)) for n, v in pairs)
        try:
            if match.group("value") == "+Inf":
                value = float("inf")
            else:
                value = float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {number}: malformed value: {match.group('value')!r}"
            ) from None
        samples.setdefault(name, {})[key] = value
    return samples


def counter_value(
    samples: Dict[str, Dict[LabelKey, float]],
    name: str,
    **labels: Any,
) -> Optional[float]:
    """Convenience lookup of one parsed sample (``None`` when absent)."""
    family = samples.get(name)
    if family is None:
        return None
    key = tuple(sorted((k, str(v)) for k, v in labels.items()))
    for sample_key, value in family.items():
        if tuple(sorted(sample_key)) == key:
            return value
    return None

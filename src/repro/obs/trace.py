"""Per-run tracing: phase timers and a structured runtime event log.

Every backend carries one :class:`RunTracer`.  The hot loops accumulate
wall-clock into named *phases* (``sampling``, ``transition``,
``pair_weights``, ``checkpoint``) and append *events* for the runtime
decisions that used to be invisible — sampler swaps, accelerator
engagement and fallback — each stamped with the interaction count at
which it happened.  The simulator folds the tracer into
``SimulationResult.extra["telemetry"]`` at the end of a run.

Determinism contract: tracing only ever reads ``time.perf_counter`` —
never an RNG stream — so instrumented runs are stream-identical to
uninstrumented ones.  All timing lands in fields named ``wall_time_s``,
the key the artifact layer already treats as volatile, so telemetry never
breaks the cache/CLI/server artifact-equivalence checks.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["RunTracer", "TELEMETRY_SCHEMA"]

#: Version stamp of the ``extra["telemetry"]`` layout.
TELEMETRY_SCHEMA = 1

#: Hard cap on recorded events; runtime decisions are rare (a handful per
#: run), so hitting this means a bug — the overflow is counted, not silent.
EVENT_LIMIT = 256


class RunTracer:
    """Accumulate per-phase wall-clock and runtime events for one run."""

    __slots__ = ("_phase_s", "_phase_ops", "events", "events_dropped")

    def __init__(self) -> None:
        self._phase_s: Dict[str, float] = {}
        self._phase_ops: Dict[str, int] = {}
        self.events: List[Dict[str, Any]] = []
        self.events_dropped = 0

    # --------------------------------------------------------------- phases
    def add(self, phase: str, seconds: float, ops: int = 1) -> None:
        """Charge ``seconds`` of wall-clock (and ``ops`` operations) to a phase."""
        self._phase_s[phase] = self._phase_s.get(phase, 0.0) + seconds
        self._phase_ops[phase] = self._phase_ops.get(phase, 0) + ops

    def phase_seconds(self, phase: str) -> float:
        return self._phase_s.get(phase, 0.0)

    def phases(self) -> Dict[str, Dict[str, Any]]:
        """``{phase: {"wall_time_s": ..., "ops": ...}}`` snapshot.

        The timing field is deliberately named ``wall_time_s`` so the
        artifact stability layer strips it alongside the other volatile
        wall-clock fields.
        """
        return {
            name: {
                "wall_time_s": round(seconds, 9),
                "ops": self._phase_ops.get(name, 0),
            }
            for name, seconds in sorted(self._phase_s.items())
        }

    # --------------------------------------------------------------- events
    def note_event(self, kind: str, at: int, **fields: Any) -> None:
        """Append one runtime event (``at`` = interaction count)."""
        if len(self.events) >= EVENT_LIMIT:
            self.events_dropped += 1
            return
        event: Dict[str, Any] = {"kind": kind, "at": at}
        event.update(fields)
        self.events.append(event)

    # ---------------------------------------------------------------- export
    def as_dict(self) -> Dict[str, Any]:
        """The telemetry skeleton: schema, phases, events."""
        record: Dict[str, Any] = {
            "schema": TELEMETRY_SCHEMA,
            "phases": self.phases(),
            "events": list(self.events),
        }
        if self.events_dropped:
            record["events_dropped"] = self.events_dropped
        return record

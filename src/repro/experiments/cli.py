"""``repro-sweep`` console entry point.

Runs an experiment sweep (a builtin or a JSON spec), fans cells out across
worker processes, and writes ``SWEEP_<name>.json`` + ``SWEEP_<name>.csv``.

Usage::

    repro-sweep --list                      # enumerate builtin sweeps
    repro-sweep                             # run the headline counting curve
    repro-sweep --builtin theorem-1         # run another builtin
    repro-sweep --smoke                     # bounded CI grid
    repro-sweep --spec my_sweep.json        # run a custom spec
    repro-sweep --dump-spec theorem-1       # print a builtin as JSON
    repro-sweep --resume                    # skip cells already in the artifact
    repro-sweep --workers 4 --seed 7 --output-dir results/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..engine.errors import ReproError
from ..obs.profile import render_profile, write_profile
from .artifacts import (
    build_document,
    completed_cell_ids,
    load_document,
    merge_cells,
    sweep_json_path,
    write_sweep,
)
from .builtin import builtin_specs, resolve_builtin
from .plot import render_sweep_plot, write_png_plot
from .registry import PROTOCOLS
from .runner import SweepRunner
from .spec import SweepSpec

__all__ = ["main"]

HEADLINE_BUILTIN = "counting-curve"
SMOKE_BUILTIN = "counting-smoke"


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    if args.spec:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_json(handle.read())
    elif args.smoke:
        spec = resolve_builtin(SMOKE_BUILTIN)
    else:
        spec = resolve_builtin(args.builtin)
    if args.seed is not None:
        spec.base_seed = args.seed
    if args.sampler is not None:
        spec.sampler = args.sampler
    if args.accel is not None:
        spec.accel = args.accel
    return spec


def _print_listing() -> None:
    print("builtin sweeps:")
    for name, spec in builtin_specs().items():
        grid = "x".join(str(n) for n in spec.ns)
        print(f"  {name:18s} {spec.protocol:20s} n={grid}  seeds={spec.seeds_per_cell}")
        if spec.description:
            print(f"  {'':18s} {spec.description}")
    print("registered protocols:")
    for name, entry in PROTOCOLS.items():
        tag = "counting" if entry.counting else "baseline"
        print(f"  {name:20s} [{tag}] {entry.summary}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run experiment sweeps over population sizes and seeds.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--builtin",
        default=HEADLINE_BUILTIN,
        help=f"builtin sweep to run (default: {HEADLINE_BUILTIN}; see --list)",
    )
    source.add_argument("--spec", help="path of a JSON sweep spec to run")
    source.add_argument(
        "--smoke",
        action="store_true",
        help=f"run the bounded CI grid (builtin {SMOKE_BUILTIN!r})",
    )
    source.add_argument(
        "--dump-spec",
        metavar="NAME",
        help="print a builtin spec as JSON (a starting point for --spec) and exit",
    )
    parser.add_argument(
        "--list", action="store_true", help="list builtin sweeps and protocols, then exit"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already completed in the existing SWEEP_*.json artifact",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 forces serial execution)",
    )
    parser.add_argument(
        "--output-dir", default=".", help="directory for SWEEP_* artifacts (default: .)"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's root seed"
    )
    parser.add_argument(
        "--sampler",
        choices=["auto", "scan", "alias", "fenwick", "vector"],
        default=None,
        help="override the spec's batch-backend sampling strategy",
    )
    parser.add_argument(
        "--accel",
        choices=["auto", "numpy", "python"],
        default=None,
        help=(
            "override the spec's batch-backend acceleration path "
            "(auto: NumPy when available, pure Python otherwise)"
        ),
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help=(
            "render an ASCII log-log plot of the fitted scaling curve "
            "(and write SWEEP_<name>.png when matplotlib is available)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-phase time breakdown aggregated from run "
            "telemetry and write PROFILE_<name>.json"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress output"
    )
    args = parser.parse_args(argv)

    if args.list:
        _print_listing()
        return 0
    if args.dump_spec:
        try:
            print(resolve_builtin(args.dump_spec).to_json())
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    try:
        spec = _load_spec(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()

    previous = None
    skip: set = set()
    if args.resume:
        try:
            previous = load_document(sweep_json_path(args.output_dir, spec))
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        skip = completed_cell_ids(previous, spec)

    runner = SweepRunner(spec, workers=args.workers, progress=progress)
    if progress:
        total = len(spec.cells())
        progress(
            f"sweep {spec.name!r}: protocol={spec.protocol} cells={total} "
            f"seeds/cell={spec.seeds_per_cell} backend={spec.backend}"
        )
    fresh = runner.run(skip_cell_ids=skip)
    cells = merge_cells(previous, fresh, spec)
    document = build_document(spec, cells, workers=runner.workers)
    paths = write_sweep(document, args.output_dir, spec)
    elapsed = time.perf_counter() - started

    fit = (document["fits"] or {}).get("convergence_interactions")
    if fit:
        print(
            f"scaling fit: convergence interactions ~ n^{fit['exponent']:.3f} "
            f"(r^2 {fit['r_squared']:.4f}, {fit['points']} sizes)"
        )
    if args.plot:
        print(render_sweep_plot(document))
        png_path = os.path.join(args.output_dir, f"SWEEP_{spec.name}.png")
        written = write_png_plot(document, png_path)
        if written:
            print(f"wrote {written}")
        else:
            print("(matplotlib not available; skipped the PNG plot)")
    if args.profile:
        print(render_profile(document["telemetry"], title=spec.name))
        print(f"wrote {write_profile(document['telemetry'], args.output_dir, spec.name)}")
    failed = document["failed_cells"]
    print(
        f"wrote {paths['json']} and {paths['csv']} "
        f"({len(cells)} cells, {len(fresh)} run now, {len(skip)} resumed, "
        f"{elapsed:.1f}s)"
    )
    if failed:
        print(f"FAILED cells: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

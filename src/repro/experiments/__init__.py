"""Parallel experiment-sweep subsystem.

This package turns the single-run simulator into a *measurement instrument*
for the paper's scaling claims: a declarative, JSON round-trippable
:class:`~repro.experiments.spec.SweepSpec` describes a grid over population
sizes, protocol parameters, and seeds; :class:`~repro.experiments.runner.SweepRunner`
fans the cells out across cores with spawn-safe ``multiprocessing`` workers;
the aggregation layer reduces each cell to convergence/parallel-time/state
statistics and fits log-log scaling exponents across ``n``; and the artifact
writers persist ``SWEEP_<name>.json`` + CSV with resume support.  The
``repro-sweep`` console script (:mod:`repro.experiments.cli`) exposes all of
it, including builtin sweeps reproducing the paper's counting curves.
"""

from .aggregate import cell_stats, fit_power_law, sample_stats, sweep_fits
from .artifacts import (
    build_document,
    completed_cell_ids,
    load_document,
    merge_cells,
    sweep_csv_path,
    sweep_json_path,
    write_sweep,
)
from .builtin import builtin_names, builtin_specs, resolve_builtin
from .registry import PROTOCOLS, ProtocolEntry, protocol_names, resolve_protocol
from .runner import SweepRunner, execute_cell
from .spec import BudgetPolicy, SweepCell, SweepSpec

__all__ = [
    "BudgetPolicy",
    "PROTOCOLS",
    "ProtocolEntry",
    "SweepCell",
    "SweepRunner",
    "SweepSpec",
    "build_document",
    "builtin_names",
    "builtin_specs",
    "cell_stats",
    "completed_cell_ids",
    "execute_cell",
    "fit_power_law",
    "load_document",
    "merge_cells",
    "protocol_names",
    "resolve_builtin",
    "resolve_protocol",
    "sample_stats",
    "sweep_csv_path",
    "sweep_json_path",
    "sweep_fits",
    "write_sweep",
]

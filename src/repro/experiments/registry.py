"""Protocol registry for the experiment-sweep subsystem.

Sweep specifications are *declarative* (JSON round-trippable), so protocols
are referenced by name rather than by object.  The registry maps each name to
a builder ``(n, params) -> Protocol`` plus a convergence-predicate factory —
both module-level and picklable-by-name, which is what makes sweep cells
executable in freshly spawned ``multiprocessing`` workers.

The convergence predicates may use ``n``: they are *measurement* apparatus
(the paper's acceptance criteria, e.g. "every output is ``floor(log2 n)`` or
``ceil(log2 n)``"), not part of any transition function, so uniformity is
untouched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..counting.approximate import ApproximateProtocol, log_estimate_targets
from ..counting.backup import ApproximateBackupProtocol, ExactBackupProtocol
from ..counting.count_exact import CountExactProtocol
from ..counting.params import (
    ApproximateParameters,
    CountExactParameters,
    recommended_clock_modulus,
)
from ..counting.stable_approximate import StableApproximateProtocol
from ..counting.stable_count_exact import StableCountExactProtocol
from ..engine.convergence import (
    OutputPredicate,
    all_outputs_equal,
    output_items,
    outputs_in,
    outputs_within_spread,
)
from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol
from ..primitives.epidemic import OneWayEpidemic
from ..primitives.junta import JuntaProtocol
from ..primitives.load_balancing import ClassicalLoadBalancing

__all__ = ["ProtocolEntry", "PROTOCOLS", "resolve_protocol", "protocol_names"]


def _clock_modulus(n: int, params: Dict[str, Any]) -> int:
    """Resolve the ``clock_modulus`` parameter (``"auto"`` = calibrated)."""
    modulus = params.get("clock_modulus", "auto")
    if modulus == "auto":
        return recommended_clock_modulus(n)
    return int(modulus)


def _build_approximate(n: int, params: Dict[str, Any]) -> Protocol:
    return ApproximateProtocol(ApproximateParameters(clock_modulus=_clock_modulus(n, params)))


def _build_approximate_stable(n: int, params: Dict[str, Any]) -> Protocol:
    return StableApproximateProtocol(
        ApproximateParameters(clock_modulus=_clock_modulus(n, params)),
        relaxed_output=bool(params.get("relaxed_output", False)),
    )


def _build_count_exact(n: int, params: Dict[str, Any]) -> Protocol:
    return CountExactProtocol(CountExactParameters(clock_modulus=_clock_modulus(n, params)))


def _build_count_exact_stable(n: int, params: Dict[str, Any]) -> Protocol:
    return StableCountExactProtocol(
        CountExactParameters(clock_modulus=_clock_modulus(n, params))
    )


def _build_backup_approximate(n: int, params: Dict[str, Any]) -> Protocol:
    return ApproximateBackupProtocol()


def _build_backup_exact(n: int, params: Dict[str, Any]) -> Protocol:
    return ExactBackupProtocol()


def _build_epidemic(n: int, params: Dict[str, Any]) -> Protocol:
    return OneWayEpidemic(
        source_count=int(params.get("source_count", 1)),
        source_value=int(params.get("source_value", 1)),
    )


def _build_junta(n: int, params: Dict[str, Any]) -> Protocol:
    return JuntaProtocol()


def _build_load_balancing(n: int, params: Dict[str, Any]) -> Protocol:
    # The input configuration is a single pile of ``tokens_per_agent * n``
    # tokens on one agent — the hardest instance of [10], and the one whose
    # recovery after churn the scenario subsystem measures.
    tokens = int(params.get("tokens_per_agent", 4))
    if tokens < 1:
        raise ConfigurationError("tokens_per_agent must be at least 1")
    return ClassicalLoadBalancing([tokens * n])


def _log_targets(n: int, params: Dict[str, Any]) -> OutputPredicate:
    return outputs_in(log_estimate_targets(n))


def _exact_n(n: int, params: Dict[str, Any]) -> OutputPredicate:
    return all_outputs_equal(n)


def _floor_log(n: int, params: Dict[str, Any]) -> OutputPredicate:
    return all_outputs_equal(int(math.floor(math.log2(n))))


def _epidemic_consensus(n: int, params: Dict[str, Any]) -> OutputPredicate:
    return all_outputs_equal(int(params.get("source_value", 1)))


def _balanced(n: int, params: Dict[str, Any]) -> OutputPredicate:
    # [10]: the discrepancy drops to O(1); floor/ceil of the mean coexist, so
    # a spread of 1 is the exact stable acceptance condition.
    return outputs_within_spread(int(params.get("max_discrepancy", 1)))


def _all_inactive(n: int, params: Dict[str, Any]) -> OutputPredicate:
    def predicate(outputs: Any) -> bool:
        seen = False
        for value, _count in output_items(outputs):
            if value[1]:
                return False
            seen = True
        return seen

    predicate.__name__ = "all_inactive"
    return predicate


@dataclass(frozen=True)
class ProtocolEntry:
    """A named, sweep-runnable protocol.

    Attributes:
        name: Registry key, used in sweep specs and artifact names.
        build: Factory ``(n, params) -> Protocol``.
        convergence: Factory for the paper's acceptance predicate at size
            ``n``, or ``None`` for budget-bound protocols.
        summary: One line shown by ``repro-sweep --list``.
        counting: Whether the protocol belongs to the paper's counting stack
            (the subject of the Theorem-1/2 scaling claims).
    """

    name: str
    build: Callable[[int, Dict[str, Any]], Protocol]
    convergence: Optional[Callable[[int, Dict[str, Any]], OutputPredicate]]
    summary: str
    counting: bool = False


PROTOCOLS: Dict[str, ProtocolEntry] = {
    entry.name: entry
    for entry in (
        ProtocolEntry(
            "approximate",
            _build_approximate,
            _log_targets,
            "Theorem 1(1): log2(n) +- 1 in O(n log^2 n) interactions",
            counting=True,
        ),
        ProtocolEntry(
            "approximate-stable",
            _build_approximate_stable,
            _log_targets,
            "Theorem 1(2-3): stable hybrid of Approximate with backup fallback",
            counting=True,
        ),
        ProtocolEntry(
            "count-exact",
            _build_count_exact,
            _exact_n,
            "Theorem 2: exact n in O(n log n) interactions",
            counting=True,
        ),
        ProtocolEntry(
            "count-exact-stable",
            _build_count_exact_stable,
            _exact_n,
            "Theorem 2 / Appendix F: stable hybrid of CountExact",
            counting=True,
        ),
        ProtocolEntry(
            "backup-approximate",
            _build_backup_approximate,
            _floor_log,
            "Appendix C.1 (Lemma 12): floor(log2 n) via pile merging, Õ(n^2)",
            counting=True,
        ),
        ProtocolEntry(
            "backup-exact",
            _build_backup_exact,
            _exact_n,
            "Appendix C.2 (Lemma 13): exact n via token absorption, Õ(n^2)",
            counting=True,
        ),
        ProtocolEntry(
            "one-way-epidemic",
            _build_epidemic,
            _epidemic_consensus,
            "Lemma 3 baseline: broadcast completes in O(n log n) interactions",
        ),
        ProtocolEntry(
            "junta-process",
            _build_junta,
            _all_inactive,
            "Lemma 4 baseline: junta election stabilises in O(n log n)",
        ),
        ProtocolEntry(
            "classical-load-balancing",
            _build_load_balancing,
            _balanced,
            "[10] baseline: single pile spreads to discrepancy <= 1 in O(n log n)",
        ),
    )
}


def protocol_names() -> List[str]:
    """Registry keys in declaration order."""
    return list(PROTOCOLS)


def resolve_protocol(name: str) -> ProtocolEntry:
    """Look up a registry entry, with a helpful error for unknown names."""
    try:
        return PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS))
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered protocols: {known}"
        ) from None

"""Aggregation of sweep runs: per-cell statistics and scaling-law fits.

The paper's headline results are *scaling claims* — convergence time and
state usage as functions of ``n`` (Theorems 1 and 2, Lemmas 12 and 13).  A
sweep measures a sample of runs per grid cell; this module reduces them to
per-cell statistics (mean / median / quantiles of interactions-to-
convergence, parallel time ``interactions / n``, state-space size) and fits
the log-log scaling exponent across population sizes, the quantity compared
against the paper's bounds.

Dependency-free by design (no numpy/scipy): quantiles use linear
interpolation on the sorted sample and the power-law fit is ordinary least
squares in log-log space.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["sample_stats", "cell_stats", "fit_power_law", "sweep_fits"]


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of an already sorted non-empty sample."""
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def sample_stats(values: Iterable[float]) -> Optional[Dict[str, float]]:
    """Mean/median/quantile summary of a sample (``None`` when empty)."""
    ordered = sorted(float(value) for value in values)
    if not ordered:
        return None
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((value - mean) ** 2 for value in ordered) / count
    return {
        "count": count,
        "mean": mean,
        "std": math.sqrt(variance),
        "min": ordered[0],
        "p10": _quantile(ordered, 0.10),
        "median": _quantile(ordered, 0.50),
        "p90": _quantile(ordered, 0.90),
        "max": ordered[-1],
    }


def cell_stats(n: int, runs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Reduce one cell's run summaries to its per-cell statistics.

    ``runs`` are :meth:`repro.engine.SimulationResult.summary`-style records.
    Convergence-time statistics cover only converged runs (their count is
    reported separately so incomplete cells are visible in the artifact);
    the parallel-time axis is ``interactions / n``, the model's unit of
    parallel time.
    """
    converged = [run for run in runs if run.get("converged")]
    convergence_interactions = [
        run["convergence_interaction"]
        for run in converged
        if run.get("convergence_interaction") is not None
    ]
    return {
        "runs": len(runs),
        "converged_runs": len(converged),
        "convergence_rate": len(converged) / len(runs) if runs else 0.0,
        "convergence_interactions": sample_stats(convergence_interactions),
        "parallel_time": sample_stats(
            value / n for value in convergence_interactions
        ),
        "total_interactions": sample_stats(run["interactions"] for run in runs),
        "distinct_states": sample_stats(run["distinct_states"] for run in runs),
        "wall_time_s": sample_stats(run["wall_time_s"] for run in runs),
        "stopped_reasons": _reason_histogram(runs),
    }


def _reason_histogram(runs: List[Dict[str, Any]]) -> Dict[str, int]:
    histogram: Dict[str, int] = {}
    for run in runs:
        reason = str(run.get("stopped_reason"))
        histogram[reason] = histogram.get(reason, 0) + 1
    return histogram


def fit_power_law(points: Sequence[Tuple[float, float]]) -> Optional[Dict[str, float]]:
    """Least-squares fit of ``t = c * n^b`` on ``(n, t)`` points, in log-log.

    Returns the exponent ``b``, the coefficient ``c``, and the log-log
    ``r_squared``; ``None`` when fewer than two usable points exist (a fit
    needs at least two distinct population sizes).
    """
    usable = [(n, t) for n, t in points if n > 0 and t and t > 0]
    if len({n for n, _t in usable}) < 2:
        return None
    logs = [(math.log(n), math.log(t)) for n, t in usable]
    count = len(logs)
    mean_x = sum(x for x, _y in logs) / count
    mean_y = sum(y for _x, y in logs) / count
    ss_xx = sum((x - mean_x) ** 2 for x, _y in logs)
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    ss_yy = sum((y - mean_y) ** 2 for _x, y in logs)
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    residual = sum((y - (intercept + slope * x)) ** 2 for x, y in logs)
    r_squared = 1.0 - residual / ss_yy if ss_yy > 0 else 1.0
    return {
        "exponent": slope,
        "coefficient": math.exp(intercept),
        "r_squared": r_squared,
        "points": count,
    }


def sweep_fits(cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fit the scaling exponents across a sweep's completed cells.

    Three fits are reported, one per measured axis:

    * ``convergence_interactions`` — mean interactions-to-convergence vs
      ``n`` (the paper's ``O(n log n)`` / ``O(n log^2 n)`` / ``Õ(n^2)``
      claims all appear here as exponents slightly above 1, resp. about 2);
    * ``parallel_time`` — the same divided by ``n`` (exponent about 0 for
      near-linear protocols);
    * ``distinct_states`` — mean observed state-space size vs ``n`` (the
      second axis of the paper's results).
    """
    fits: Dict[str, Any] = {}
    for measure in ("convergence_interactions", "parallel_time", "distinct_states"):
        points = []
        for cell in cells:
            stats = cell.get("stats") or {}
            summary = stats.get(measure)
            if summary:
                points.append((cell["n"], summary["mean"]))
        fits[measure] = fit_power_law(points)
    return fits

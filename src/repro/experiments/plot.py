"""Dependency-free plotting of sweep scaling curves.

``repro-sweep --plot`` renders the fitted scaling relationship (mean
interactions-to-convergence versus population size) as an ASCII log-log
scatter straight to the terminal, so the shape of a curve can be checked on
any machine the sweep ran on.  When :mod:`matplotlib` happens to be
installed, a PNG is written next to the JSON artifact as well — the library
is detected at call time and never required (the core library stays
dependency-free).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["ascii_loglog", "sweep_plot_points", "render_sweep_plot", "write_png_plot"]

Point = Tuple[float, float, str]  # (x, y, series label)


def sweep_plot_points(
    document: Dict[str, Any], measure: str = "convergence_interactions"
) -> List[Point]:
    """Extract the ``(n, mean, series)`` points of one measure from an artifact.

    One series per parameter variant: the cell id with the ``-n<size>``
    suffix stripped, so ``param_grid`` sweeps plot one curve per variant.
    """
    points: List[Point] = []
    for cell in document.get("cells", ()):
        if cell.get("error"):
            continue
        stats = cell.get("stats") or {}
        summary = stats.get(measure)
        if not summary or summary.get("mean") in (None, 0):
            continue
        series = str(cell["cell_id"]).rsplit(f"-n{cell['n']}", 1)[0]
        points.append((float(cell["n"]), float(summary["mean"]), series))
    return points


_MARKS = "ox+*#@"


def ascii_loglog(
    points: Sequence[Point],
    fit: Optional[Dict[str, float]] = None,
    width: int = 64,
    height: int = 18,
    xlabel: str = "n",
    ylabel: str = "interactions",
) -> str:
    """Render a log-log scatter (plus an optional power-law fit) as ASCII.

    ``points`` are positive ``(x, y, series)`` triples; each series gets its
    own marker.  ``fit`` is the :func:`repro.experiments.aggregate.fit_power_law`
    record whose line ``y = c * x^b`` is drawn with ``.`` characters.
    """
    usable = [(x, y, s) for x, y, s in points if x > 0 and y > 0]
    if not usable:
        return "(no plottable points)"
    xs = [math.log10(x) for x, _y, _s in usable]
    ys = [math.log10(y) for _x, y, _s in usable]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    # Pad degenerate (single-column/row) ranges so positions stay in-grid.
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    x_low -= 0.05 * x_span
    x_high += 0.05 * x_span
    y_low -= 0.08 * y_span
    y_high += 0.08 * y_span

    def column(log_x: float) -> int:
        return int((log_x - x_low) / (x_high - x_low) * (width - 1))

    def row(log_y: float) -> int:
        # Row 0 is the top of the plot.
        return (height - 1) - int((log_y - y_low) / (y_high - y_low) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    if fit:
        coefficient = fit.get("coefficient", 0.0)
        exponent = fit.get("exponent", 0.0)
        if coefficient > 0:
            log_c = math.log10(coefficient)
            for col in range(width):
                log_x = x_low + col / (width - 1) * (x_high - x_low)
                log_y = log_c + exponent * log_x
                if y_low <= log_y <= y_high:
                    grid[row(log_y)][col] = "."
    series_order: List[str] = []
    for x, y, series in usable:
        if series not in series_order:
            series_order.append(series)
        mark = _MARKS[series_order.index(series) % len(_MARKS)]
        grid[row(math.log10(y))][column(math.log10(x))] = mark

    lines: List[str] = []
    top_tick = f"{10 ** y_high:.2e}"
    bottom_tick = f"{10 ** y_low:.2e}"
    margin = max(len(top_tick), len(bottom_tick), len(ylabel) + 1)
    lines.append(f"{ylabel:>{margin}} (log)")
    for index, grid_row in enumerate(grid):
        if index == 0:
            prefix = f"{top_tick:>{margin}}"
        elif index == height - 1:
            prefix = f"{bottom_tick:>{margin}}"
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(grid_row)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    left_tick = f"{10 ** x_low:.3g}"
    right_tick = f"{10 ** x_high:.3g}"
    gap = max(1, width - len(left_tick) - len(right_tick))
    lines.append(f"{' ' * margin}  {left_tick}{' ' * gap}{right_tick}  {xlabel} (log)")
    legend = "  ".join(
        f"{_MARKS[index % len(_MARKS)]} {series}"
        for index, series in enumerate(series_order)
    )
    lines.append(f"{' ' * margin}  {legend}")
    if fit:
        lines.append(
            f"{' ' * margin}  fit: {ylabel} ~ "
            f"{fit.get('coefficient', float('nan')):.3g} * {xlabel}^"
            f"{fit.get('exponent', float('nan')):.3f} "
            f"(r^2 {fit.get('r_squared', float('nan')):.4f}, . line)"
        )
    return "\n".join(lines)


def render_sweep_plot(
    document: Dict[str, Any], measure: str = "convergence_interactions"
) -> str:
    """ASCII plot of one measure of a ``SWEEP_*.json``-style document."""
    points = sweep_plot_points(document, measure)
    fit = (document.get("fits") or {}).get(measure)
    header = f"{document.get('name', 'sweep')}: mean {measure} vs n"
    return header + "\n" + ascii_loglog(points, fit, ylabel=measure.replace("_", " "))


def write_png_plot(
    document: Dict[str, Any],
    path: str,
    measure: str = "convergence_interactions",
) -> Optional[str]:
    """Write a PNG of the scaling curve when matplotlib is available.

    Returns the path on success and ``None`` when matplotlib is missing —
    the caller treats the PNG as strictly optional.
    """
    try:  # pragma: no cover - depends on the host environment
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None
    points = sweep_plot_points(document, measure)
    if not points:
        return None
    figure, axes = plt.subplots(figsize=(6.0, 4.5))
    by_series: Dict[str, List[Tuple[float, float]]] = {}
    for x, y, series in points:
        by_series.setdefault(series, []).append((x, y))
    for series, series_points in by_series.items():
        series_points.sort()
        axes.loglog(
            [x for x, _y in series_points],
            [y for _x, y in series_points],
            marker="o",
            linestyle="-",
            label=series,
        )
    fit = (document.get("fits") or {}).get(measure)
    if fit and fit.get("coefficient", 0) > 0:
        xs = sorted({x for x, _y, _s in points})
        axes.loglog(
            xs,
            [fit["coefficient"] * x ** fit["exponent"] for x in xs],
            linestyle="--",
            color="gray",
            label=f"fit n^{fit['exponent']:.3f}",
        )
    axes.set_xlabel("n")
    axes.set_ylabel(f"mean {measure.replace('_', ' ')}")
    axes.set_title(document.get("name", "sweep"))
    axes.legend(fontsize="small")
    figure.tight_layout()
    figure.savefig(path, dpi=150)
    plt.close(figure)
    return path

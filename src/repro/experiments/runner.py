"""Parallel execution of sweep specifications.

A sweep expands into *cells* (one per population size and parameter
variant); each cell runs its seeded repetitions in a single task, and tasks
are fanned out across cores with :mod:`multiprocessing`.  Everything a
worker needs travels as plain JSON-able payloads and registry *names* — no
live protocol objects cross the process boundary — so the pool runs under
the ``spawn`` start method (the only one available everywhere, and the one
that catches hidden pickling dependencies on all platforms).

Failures are captured per cell: a crashing protocol marks its cell with the
traceback and the rest of the sweep completes normally.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Any, Callable, Dict, Iterable, List, Optional


from ..engine.simulator import simulate
from .aggregate import cell_stats
from .registry import resolve_protocol
from .spec import SweepCell, SweepSpec

__all__ = [
    "PoolExecutor",
    "SweepRunner",
    "cell_payload",
    "execute_cell",
    "run_cell_seeds",
]

Progress = Optional[Callable[[str], None]]


class PoolExecutor:
    """A reusable ``spawn``-pool front end for batches of cell tasks.

    :class:`SweepRunner` needs one fan-out per run; the frontier search of
    :mod:`repro.scenarios.search` schedules *many* small probe batches
    sequentially and cannot afford a fresh pool (and its ``spawn`` import
    cost) per probe.  ``PoolExecutor`` owns one long-lived pool, detects
    tasks lost to a worker crash or a wall-time overrun (``apply_async``
    results that raise or never materialise within the deadline), rebuilds
    the pool, and retries just the affected payloads a bounded number of
    times.  Deterministic failures inside the executor never reach this
    layer — cell executors capture their own exceptions into the record's
    ``error`` field — so a retry only ever re-runs work that produced no
    record at all.

    Args:
        executor: Picklable module-level callable mapped over payloads.
        workers: Worker process count; ``None`` uses ``os.cpu_count()``.
            Below 2 runs serially in-process (also the automatic fallback
            when the pool cannot be created, e.g. in sandboxes).
        retries: How many times a lost task is re-submitted before a
            synthetic error record is returned for it.
        progress: Optional line-oriented progress callback.
        pool_factory: Test seam; ``None`` uses ``spawn`` pools.  A factory
            must return an object with ``apply_async`` / ``terminate`` /
            ``join``.
    """

    def __init__(
        self,
        executor: Callable[[Dict[str, Any]], Dict[str, Any]],
        workers: Optional[int] = None,
        retries: int = 1,
        progress: Progress = None,
        pool_factory: Optional[Callable[[int], Any]] = None,
    ) -> None:
        self.executor = executor
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.retries = retries
        self.progress = progress
        self._pool_factory = pool_factory
        self._pool: Any = None
        self._serial = self.workers < 2 and pool_factory is None

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    def _ensure_pool(self) -> Any:
        if self._serial or self._pool is not None:
            return self._pool
        try:
            if self._pool_factory is not None:
                self._pool = self._pool_factory(self.workers)
            else:
                context = multiprocessing.get_context("spawn")
                self._pool = context.Pool(processes=self.workers)
        except (OSError, ValueError) as error:
            # Sandboxes without process support fall back to serial execution.
            self._report(f"worker pool unavailable ({error}); running serially")
            self._serial = True
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.terminate()
                self._pool.join()
            except Exception:  # noqa: BLE001 - the pool is already broken
                pass
            self._pool = None

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._discard_pool()

    def __enter__(self) -> "PoolExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def map(
        self,
        payloads: List[Dict[str, Any]],
        timeout_s: Optional[float] = None,
        on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        """Run every payload; return records in payload order.

        ``timeout_s`` bounds each task's result wait (measured from its
        ``get``, so it is a coarse per-task bound, not a batch deadline);
        without it a crashed ``spawn`` worker would hang the batch forever,
        so pass one whenever crash recovery matters.  A task still missing
        after :attr:`retries` re-submissions yields a synthetic record with
        the failure in its ``error`` field instead of raising.

        ``executor`` overrides the pool's default executor for this batch
        only (it must still be a picklable module-level callable) — this is
        what lets one long-lived pool serve several cell kinds, e.g. the
        job server scheduling sweep, scenario, and search-probe cells on
        the same worker processes.
        """
        run_task = executor if executor is not None else self.executor
        results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        pending = list(enumerate(payloads))
        attempt = 0
        while pending:
            pool = self._ensure_pool()
            if pool is None:
                for index, payload in pending:
                    results[index] = run_task(payload)
                    if on_result:
                        on_result(results[index])
                break
            tasks = [
                (index, payload, pool.apply_async(run_task, (payload,)))
                for index, payload in pending
            ]
            lost = []
            last_error: Optional[BaseException] = None
            for index, payload, task in tasks:
                try:
                    results[index] = task.get(timeout_s)
                    if on_result:
                        on_result(results[index])
                except Exception as error:  # noqa: BLE001 - crash/timeout path
                    lost.append((index, payload))
                    last_error = error
            if not lost:
                break
            self._discard_pool()
            attempt += 1
            if attempt > self.retries:
                for index, payload in lost:
                    results[index] = {
                        "cell_id": payload.get("cell_id"),
                        "n": payload.get("n"),
                        "params": payload.get("params"),
                        "seeds": payload.get("seeds"),
                        "runs": [],
                        "stats": None,
                        "error": (
                            f"worker lost after {attempt} attempts: "
                            f"{last_error!r}"
                        ),
                        "wall_time_s": None,
                    }
                    if on_result:
                        on_result(results[index])
                break
            self._report(
                f"retrying {len(lost)} lost task(s) after worker failure "
                f"({last_error!r}), attempt {attempt + 1}"
            )
            pending = lost
        return [record for record in results if record is not None]


def _timeout_message(cell_id: str, completed: int, total: int, timeout: float) -> str:
    return (
        f"cell {cell_id} exceeded its wall-time budget of {timeout:g}s "
        f"after {completed} of {total} runs"
    )


def run_cell_seeds(
    cell_id: str,
    seeds: List[Any],
    timeout: Optional[float],
    started: float,
    run_one: Callable[[Any, Optional[float]], Dict[str, Any]],
) -> "tuple[List[Dict[str, Any]], Optional[str]]":
    """Run a cell's seeded repetitions under an optional wall-time budget.

    ``run_one(seed, remaining_s)`` executes one run and returns its record
    (which must expose ``stopped_reason``); the remaining budget is threaded
    into every run so the simulator stops with ``stopped_reason="wall-time"``
    rather than overrunning.  Returns ``(runs, error)``: on a budget overrun
    the completed runs are preserved and ``error`` carries the timeout
    record.  Shared by the sweep and scenario cell executors so both produce
    identical timeout records.
    """
    runs: List[Dict[str, Any]] = []
    for seed in seeds:
        remaining: Optional[float] = None
        if timeout is not None:
            remaining = timeout - (time.perf_counter() - started)
            if remaining <= 0:
                return runs, _timeout_message(cell_id, len(runs), len(seeds), timeout)
        run = run_one(seed, remaining)
        runs.append(run)
        if run.get("stopped_reason") == "wall-time":
            return runs, _timeout_message(cell_id, len(runs), len(seeds), timeout)
    return runs, None


def cell_payload(spec: SweepSpec, cell: SweepCell) -> Dict[str, Any]:
    """Everything a worker needs to run one sweep cell, as picklable primitives.

    This is the sweep half of the per-cell execute seam: a payload built
    here feeds :func:`execute_cell` in any process — the sweep runner's
    pool, the job server, or inline — and, being plain JSON-able data, it
    doubles as the content the server's result cache is addressed by.
    """
    return {
        "cell_id": cell.cell_id,
        "protocol": spec.protocol,
        "n": cell.n,
        "params": dict(cell.params),
        "seeds": list(cell.seeds),
        "backend": spec.backend,
        "sampler": spec.sampler,
        "accel": spec.accel,
        "budget": spec.budget.budget(cell.n),
        "check_interval": spec.check_interval(cell.n),
        "confirm_checks": spec.confirm_checks,
        "cell_timeout_s": spec.cell_timeout_s,
    }


def execute_cell(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one sweep cell; the (spawn-safe) worker entry point.

    Returns the cell record embedded into the ``SWEEP_*.json`` artifact.
    Exceptions are converted into the record's ``error`` field so a single
    failing cell cannot take down the whole sweep.  A ``cell_timeout_s``
    wall-time budget is threaded into every run and enforced between runs:
    a cell that exceeds it keeps its completed runs but is marked failed
    with a timeout record (``--resume`` re-runs it) instead of hanging the
    sweep.
    """
    started = time.perf_counter()
    timeout = payload.get("cell_timeout_s")
    record: Dict[str, Any] = {
        "cell_id": payload["cell_id"],
        "n": payload["n"],
        "params": payload["params"],
        "seeds": payload["seeds"],
        "runs": [],
        "stats": None,
        "error": None,
    }
    try:
        entry = resolve_protocol(payload["protocol"])
        n = payload["n"]
        params = payload["params"]

        def run_one(seed: Any, remaining: Optional[float]) -> Dict[str, Any]:
            protocol = entry.build(n, params)
            convergence = entry.convergence(n, params) if entry.convergence else None
            result = simulate(
                protocol,
                n,
                seed=seed,
                backend=payload["backend"],
                sampler=payload.get("sampler", "auto"),
                accel=payload.get("accel", "auto"),
                convergence=convergence,
                max_interactions=payload["budget"],
                check_interval=payload["check_interval"],
                confirm_checks=payload["confirm_checks"],
                max_wall_time_s=remaining,
            )
            # The engine's artifact serialisation hook: summary plus the
            # output histogram, state-space summary, and extra payload.
            return result.as_json_dict()

        runs, error = run_cell_seeds(
            payload["cell_id"], payload["seeds"], timeout, started, run_one
        )
        record["runs"] = runs
        record["error"] = error
        if error is None:
            record["stats"] = cell_stats(n, runs)
    except Exception:  # noqa: BLE001 - captured into the artifact by design
        record["error"] = traceback.format_exc()
    record["wall_time_s"] = round(time.perf_counter() - started, 3)
    return record


class SweepRunner:
    """Execute a :class:`~repro.experiments.spec.SweepSpec` across cores.

    Args:
        spec: The sweep to run.
        workers: Worker process count; ``None`` uses ``os.cpu_count()``.
            Values below 2 run serially in-process (the fallback path, also
            taken automatically when the pool cannot be created).
        progress: Optional line-oriented progress callback.

    The fan-out machinery is reusable by other cell-shaped experiment
    subsystems: subclasses override the :attr:`executor` worker entry point
    (a picklable module-level function) and :meth:`payloads` — the scenario
    runner of :mod:`repro.scenarios` plugs into the same pool this way.
    """

    #: Worker entry point mapped over the payloads (must be a module-level
    #: function so the ``spawn`` pool can pickle it by reference).
    executor = staticmethod(execute_cell)

    def __init__(
        self,
        spec: SweepSpec,
        workers: Optional[int] = None,
        progress: Progress = None,
    ) -> None:
        self.spec = spec
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.progress = progress

    def payloads(self, cells: List[Any]) -> List[Dict[str, Any]]:
        """Build the picklable worker payload for each pending cell."""
        return [cell_payload(self.spec, cell) for cell in cells]

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    def run(self, skip_cell_ids: Iterable[str] = ()) -> List[Dict[str, Any]]:
        """Run every cell not in ``skip_cell_ids``; return the cell records.

        Records come back in the spec's grid order.  Skipped cells are not
        included — the artifact layer merges them from the previous run.
        """
        skip = set(skip_cell_ids)
        cells = self.spec.cells()
        pending = [cell for cell in cells if cell.cell_id not in skip]
        if skip:
            self._report(
                f"resume: {len(cells) - len(pending)} of {len(cells)} cells "
                f"already complete"
            )
        if not pending:
            return []
        payloads = self.payloads(pending)
        if self.workers >= 2 and len(payloads) > 1:
            records = self._run_parallel(payloads)
        else:
            records = self._run_serial(payloads)
        order = {cell.cell_id: index for index, cell in enumerate(cells)}
        records.sort(key=lambda record: order.get(record["cell_id"], len(order)))
        return records

    # ----------------------------------------------------------- strategies
    def _run_serial(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        records = []
        executor = type(self).executor
        for payload in payloads:
            self._report(f"cell {payload['cell_id']} (n={payload['n']}) ...")
            record = executor(payload)
            self._report(_outcome_line(record))
            records.append(record)
        return records

    def _run_parallel(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        workers = min(self.workers, len(payloads))
        self._report(
            f"running {len(payloads)} cells on {workers} worker processes"
        )
        with PoolExecutor(
            type(self).executor, workers=workers, progress=self.progress
        ) as pool:
            return pool.map(
                payloads, on_result=lambda record: self._report(_outcome_line(record))
            )


def _outcome_line(record: Dict[str, Any]) -> str:
    if record["error"]:
        reason = record["error"].strip().splitlines()[-1]
        return f"  {record['cell_id']}: FAILED ({reason})"
    stats = record["stats"] or {}
    rate = stats.get("convergence_rate")
    interactions = (stats.get("convergence_interactions") or {}).get("mean")
    mean_text = f"{interactions:.3g}" if interactions is not None else "n/a"
    return (
        f"  {record['cell_id']}: {stats.get('converged_runs', 0)}/{stats.get('runs', 0)} "
        f"converged (rate {rate:.2f}), mean convergence {mean_text} interactions, "
        f"{record['wall_time_s']:.1f}s"
    )

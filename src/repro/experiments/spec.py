"""Declarative sweep specifications with JSON round-tripping.

A :class:`SweepSpec` describes a full experiment grid — protocol, population
sizes, per-protocol parameter variants, seeds per cell, backend, interaction
budget, and convergence-check policy — without referencing any live objects,
so it can be written to disk, shipped to a spawned worker process, embedded
in a ``SWEEP_*.json`` artifact, and re-run bit-identically (per-cell seeds
are derived deterministically from the root seed).
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..engine.backends import ACCEL_NAMES, BACKEND_NAMES, SAMPLER_NAMES
from ..engine.errors import ConfigurationError
from ..engine.rng import SeedLike, derive_seed
from .registry import resolve_protocol

__all__ = ["BudgetPolicy", "GridSpec", "SweepCell", "SweepSpec", "policy_from"]


@dataclass(frozen=True)
class BudgetPolicy:
    """Interaction budget as ``factor * n^n_exponent * log2(n)^log_exponent``.

    The default reproduces :func:`repro.engine.simulator.default_interaction_budget`
    (``64 n log2(n)^2``), which covers the fast counting protocols; the
    quadratic backup protocols of Appendix C use ``n_exponent=2``.
    """

    factor: float = 64.0
    n_exponent: float = 1.0
    log_exponent: float = 2.0

    def budget(self, n: int) -> int:
        """Interaction budget for population size ``n``."""
        if n < 2:
            raise ConfigurationError("population size must be at least 2")
        return int(self.factor * n ** self.n_exponent * max(1.0, math.log2(n)) ** self.log_exponent)


def _validate_accel(accel: str, sampler: str, spec_kind: str) -> None:
    """Shared accel-knob validation for the declarative spec layers.

    Validates the name and the accel/sampler conflict (mirroring
    :func:`repro.engine.vectorized.resolve_accel`) without requiring NumPy:
    availability is a property of the executing machine, not the spec.
    """
    if accel not in ACCEL_NAMES:
        raise ConfigurationError(
            f"unknown accel {accel!r}; expected one of {ACCEL_NAMES}"
        )
    if accel == "numpy" and sampler not in ("auto", "vector"):
        raise ConfigurationError(
            f"{spec_kind} forcing accel='numpy' cannot also force the Python "
            f"sampler strategy {sampler!r}; use sampler='auto' or drop the "
            f"accel override"
        )


def policy_from(value: Any, context: str) -> BudgetPolicy:
    """Coerce a :class:`BudgetPolicy` or its JSON dict form, with validation."""
    if isinstance(value, BudgetPolicy):
        return value
    if isinstance(value, dict):
        try:
            return BudgetPolicy(**value)
        except TypeError as error:
            raise ConfigurationError(f"invalid {context}: {error}") from None
    raise ConfigurationError(f"{context} must be a factor/exponent object")


class GridSpec:
    """Shared machinery of the declarative grid specs (sweeps, scenarios).

    Subclasses are dataclasses declaring at least ``name``, ``protocol``,
    ``ns``, ``seeds_per_cell``, ``params``, ``param_grid``, ``budget``,
    ``check_interval_factor``, ``max_checks``, ``confirm_checks`` and
    ``cell_timeout_s``; this base provides the common validation, the
    parameter-grid expansion, the check cadence, and the JSON round-trip —
    one implementation, so the two spec layers cannot drift apart.
    """

    #: Human-readable spec kind used in error messages.
    _spec_kind = "grid"

    def _validate_grid(self) -> None:
        """Validate (and normalise) the fields shared by every grid spec."""
        if not self.name:
            raise ConfigurationError(f"{self._spec_kind} name must be non-empty")
        resolve_protocol(self.protocol)  # fail fast on unknown protocols
        if not self.ns:
            raise ConfigurationError(
                f"{self._spec_kind} requires at least one population size"
            )
        if any(n < 2 for n in self.ns):
            raise ConfigurationError("population sizes must be at least 2")
        if self.seeds_per_cell < 1:
            raise ConfigurationError("seeds_per_cell must be at least 1")
        self.budget = policy_from(self.budget, "budget policy")
        if self.check_interval_factor <= 0:
            raise ConfigurationError("check_interval_factor must be positive")
        if self.max_checks < 1:
            raise ConfigurationError("max_checks must be at least 1")
        if self.confirm_checks < 1:
            raise ConfigurationError("confirm_checks must be at least 1")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigurationError("cell_timeout_s must be positive")

    # ------------------------------------------------------------------ grid
    def _param_variants(self) -> Iterator[Dict[str, Any]]:
        if not self.param_grid:
            yield dict(self.params)
            return
        keys = sorted(self.param_grid)
        for values in itertools.product(*(self.param_grid[key] for key in keys)):
            variant = dict(self.params)
            variant.update(dict(zip(keys, values)))
            yield variant

    def check_interval(self, n: int) -> int:
        """Convergence-check cadence for population size ``n``.

        ``check_interval_factor`` units of ``n`` (one parallel-time unit
        each), stretched to ``budget / max_checks`` when the budget is large
        so checkpointing overhead stays bounded.
        """
        cadence = max(1, int(self.check_interval_factor * n))
        stretched = self.budget.budget(n) // self.max_checks
        return max(cadence, stretched, 1)

    # ------------------------------------------------------------------ JSON
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary representation (round-trips via from_dict)."""
        # asdict recurses into nested dataclasses (policies, event specs).
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GridSpec":
        """Inverse of :meth:`to_dict`, with schema validation."""
        if not isinstance(data, dict):
            raise ConfigurationError(f"{cls._spec_kind} spec must be a JSON object")
        payload = dict(data)
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown {cls._spec_kind} spec fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(
                f"invalid {cls._spec_kind} spec: {error}"
            ) from None

    def to_json(self, indent: int = 2) -> str:
        """Serialise the spec to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "GridSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{cls._spec_kind} spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a (protocol parameters, population size) combination.

    The cell's ``cell_id`` is stable across runs and is what ``--resume``
    matches on; ``seeds`` lists the per-repetition seeds derived from the
    spec's root seed.
    """

    cell_id: str
    n: int
    params: Dict[str, Any]
    seeds: Tuple[int, ...]


def _param_suffix(params: Dict[str, Any]) -> str:
    if not params:
        return ""
    parts = [f"{key}={params[key]}" for key in sorted(params)]
    return "-" + "-".join(parts)


@dataclass
class SweepSpec(GridSpec):
    """A declarative experiment sweep.

    Attributes:
        name: Sweep name; determines the artifact file names.
        protocol: Registry name (see :mod:`repro.experiments.registry`).
        ns: Population sizes of the grid.
        seeds_per_cell: Seeded repetitions per cell.
        base_seed: Root seed; every cell seed is derived from it.
        backend: Simulation backend (``"agent"``, ``"batch"``, ``"auto"``).
        sampler: Batch-backend weighted-sampling strategy (``"auto"``,
            ``"scan"``, ``"alias"``, ``"fenwick"``, ``"vector"`` — see
            :mod:`repro.engine.samplers`).  Ignored by agent-backend cells.
        accel: Batch-backend hot-loop implementation (``"auto"``,
            ``"numpy"``, ``"python"`` — see :mod:`repro.engine.vectorized`).
            ``"auto"`` selects the NumPy kernels when available and the
            pure-Python path otherwise; ignored by agent-backend cells.
        params: Protocol parameters shared by every cell.
        param_grid: Optional per-parameter value lists; the grid is the
            cartesian product of these with ``ns``.
        budget: Interaction-budget policy.
        check_interval_factor: Convergence-check cadence in units of ``n``
            (one parallel-time unit each).
        max_checks: Upper bound on the number of convergence checks per run;
            the cadence is stretched to ``budget / max_checks`` when the
            budget is large (quadratic protocols), keeping checkpointing
            overhead bounded while the geometric skips do the fast-forwarding.
        confirm_checks: Consecutive satisfied checks required to stop early.
        cell_timeout_s: Optional wall-time budget per cell.  The worker
            threads the remaining budget into every run (the simulator stops
            with ``stopped_reason="wall-time"`` when it is exceeded) and
            marks the cell as failed with a clean timeout record instead of
            hanging the sweep; ``--resume`` re-runs timed-out cells.
        description: Free-form text carried into the artifact.
    """

    name: str
    protocol: str
    ns: List[int]
    seeds_per_cell: int = 5
    base_seed: SeedLike = 0
    backend: str = "auto"
    sampler: str = "auto"
    accel: str = "auto"
    params: Dict[str, Any] = field(default_factory=dict)
    param_grid: Dict[str, List[Any]] = field(default_factory=dict)
    budget: BudgetPolicy = field(default_factory=BudgetPolicy)
    check_interval_factor: float = 1.0
    max_checks: int = 2000
    confirm_checks: int = 3
    cell_timeout_s: Optional[float] = None
    description: str = ""

    _spec_kind = "sweep"

    def __post_init__(self) -> None:
        self._validate_grid()
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.sampler not in SAMPLER_NAMES:
            raise ConfigurationError(
                f"unknown sampler {self.sampler!r}; expected one of {SAMPLER_NAMES}"
            )
        _validate_accel(self.accel, self.sampler, self._spec_kind)

    # ------------------------------------------------------------------ grid
    def cells(self) -> List[SweepCell]:
        """Expand the grid into cells with deterministically derived seeds."""
        expanded: List[SweepCell] = []
        for variant in self._param_variants():
            suffix = _param_suffix(
                {key: variant[key] for key in sorted(self.param_grid)}
            )
            for n in self.ns:
                seeds = tuple(
                    derive_seed(self.base_seed, "sweep", self.name, self.protocol, n, repr(sorted(variant.items())), index)
                    for index in range(self.seeds_per_cell)
                )
                expanded.append(
                    SweepCell(
                        cell_id=f"{self.protocol}{suffix}-n{n}",
                        n=n,
                        params=variant,
                        seeds=seeds,
                    )
                )
        return expanded

"""Declarative sweep specifications with JSON round-tripping.

A :class:`SweepSpec` describes a full experiment grid — protocol, population
sizes, per-protocol parameter variants, seeds per cell, backend, interaction
budget, and convergence-check policy — without referencing any live objects,
so it can be written to disk, shipped to a spawned worker process, embedded
in a ``SWEEP_*.json`` artifact, and re-run bit-identically (per-cell seeds
are derived deterministically from the root seed).
"""

from __future__ import annotations

import itertools
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..engine.backends import BACKEND_NAMES
from ..engine.errors import ConfigurationError
from ..engine.rng import SeedLike, derive_seed
from .registry import resolve_protocol

__all__ = ["BudgetPolicy", "SweepCell", "SweepSpec"]


@dataclass(frozen=True)
class BudgetPolicy:
    """Interaction budget as ``factor * n^n_exponent * log2(n)^log_exponent``.

    The default reproduces :func:`repro.engine.simulator.default_interaction_budget`
    (``64 n log2(n)^2``), which covers the fast counting protocols; the
    quadratic backup protocols of Appendix C use ``n_exponent=2``.
    """

    factor: float = 64.0
    n_exponent: float = 1.0
    log_exponent: float = 2.0

    def budget(self, n: int) -> int:
        """Interaction budget for population size ``n``."""
        if n < 2:
            raise ConfigurationError("population size must be at least 2")
        return int(self.factor * n ** self.n_exponent * max(1.0, math.log2(n)) ** self.log_exponent)


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a (protocol parameters, population size) combination.

    The cell's ``cell_id`` is stable across runs and is what ``--resume``
    matches on; ``seeds`` lists the per-repetition seeds derived from the
    spec's root seed.
    """

    cell_id: str
    n: int
    params: Dict[str, Any]
    seeds: Tuple[int, ...]


def _param_suffix(params: Dict[str, Any]) -> str:
    if not params:
        return ""
    parts = [f"{key}={params[key]}" for key in sorted(params)]
    return "-" + "-".join(parts)


@dataclass
class SweepSpec:
    """A declarative experiment sweep.

    Attributes:
        name: Sweep name; determines the artifact file names.
        protocol: Registry name (see :mod:`repro.experiments.registry`).
        ns: Population sizes of the grid.
        seeds_per_cell: Seeded repetitions per cell.
        base_seed: Root seed; every cell seed is derived from it.
        backend: Simulation backend (``"agent"``, ``"batch"``, ``"auto"``).
        params: Protocol parameters shared by every cell.
        param_grid: Optional per-parameter value lists; the grid is the
            cartesian product of these with ``ns``.
        budget: Interaction-budget policy.
        check_interval_factor: Convergence-check cadence in units of ``n``
            (one parallel-time unit each).
        max_checks: Upper bound on the number of convergence checks per run;
            the cadence is stretched to ``budget / max_checks`` when the
            budget is large (quadratic protocols), keeping checkpointing
            overhead bounded while the geometric skips do the fast-forwarding.
        confirm_checks: Consecutive satisfied checks required to stop early.
        description: Free-form text carried into the artifact.
    """

    name: str
    protocol: str
    ns: List[int]
    seeds_per_cell: int = 5
    base_seed: SeedLike = 0
    backend: str = "auto"
    params: Dict[str, Any] = field(default_factory=dict)
    param_grid: Dict[str, List[Any]] = field(default_factory=dict)
    budget: BudgetPolicy = field(default_factory=BudgetPolicy)
    check_interval_factor: float = 1.0
    max_checks: int = 2000
    confirm_checks: int = 3
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must be non-empty")
        resolve_protocol(self.protocol)  # fail fast on unknown protocols
        if not self.ns:
            raise ConfigurationError("sweep requires at least one population size")
        if any(n < 2 for n in self.ns):
            raise ConfigurationError("population sizes must be at least 2")
        if self.seeds_per_cell < 1:
            raise ConfigurationError("seeds_per_cell must be at least 1")
        if self.backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.check_interval_factor <= 0:
            raise ConfigurationError("check_interval_factor must be positive")
        if self.max_checks < 1:
            raise ConfigurationError("max_checks must be at least 1")
        if self.confirm_checks < 1:
            raise ConfigurationError("confirm_checks must be at least 1")

    # ------------------------------------------------------------------ grid
    def _param_variants(self) -> Iterator[Dict[str, Any]]:
        if not self.param_grid:
            yield dict(self.params)
            return
        keys = sorted(self.param_grid)
        for values in itertools.product(*(self.param_grid[key] for key in keys)):
            variant = dict(self.params)
            variant.update(dict(zip(keys, values)))
            yield variant

    def cells(self) -> List[SweepCell]:
        """Expand the grid into cells with deterministically derived seeds."""
        expanded: List[SweepCell] = []
        for variant in self._param_variants():
            suffix = _param_suffix(
                {key: variant[key] for key in sorted(self.param_grid)}
            )
            for n in self.ns:
                seeds = tuple(
                    derive_seed(self.base_seed, "sweep", self.name, self.protocol, n, repr(sorted(variant.items())), index)
                    for index in range(self.seeds_per_cell)
                )
                expanded.append(
                    SweepCell(
                        cell_id=f"{self.protocol}{suffix}-n{n}",
                        n=n,
                        params=variant,
                        seeds=seeds,
                    )
                )
        return expanded

    def check_interval(self, n: int) -> int:
        """Convergence-check cadence for population size ``n``."""
        cadence = max(1, int(self.check_interval_factor * n))
        stretched = self.budget.budget(n) // self.max_checks
        return max(cadence, stretched, 1)

    # ------------------------------------------------------------------ JSON
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dictionary representation (round-trips via from_dict)."""
        # asdict recurses into the nested BudgetPolicy dataclass.
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        """Inverse of :meth:`to_dict`, with schema validation."""
        if not isinstance(data, dict):
            raise ConfigurationError("sweep spec must be a JSON object")
        payload = dict(data)
        budget = payload.pop("budget", None)
        if budget is not None:
            if not isinstance(budget, dict):
                raise ConfigurationError("budget must be a JSON object")
            try:
                payload["budget"] = BudgetPolicy(**budget)
            except TypeError as error:
                raise ConfigurationError(f"invalid budget policy: {error}") from None
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py3.10 compat
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sweep spec fields: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(**payload)
        except TypeError as error:
            raise ConfigurationError(f"invalid sweep spec: {error}") from None

    def to_json(self, indent: int = 2) -> str:
        """Serialise the spec to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"sweep spec is not valid JSON: {error}") from None
        return cls.from_dict(data)

"""Built-in sweep specifications reproducing the paper's scaling curves.

Each builtin is a ready-to-run :class:`~repro.experiments.spec.SweepSpec`;
``repro-sweep --builtin NAME`` executes one, ``--list`` enumerates them, and
``--spec`` dumps any of them as a JSON starting point for custom grids.

Calibration notes
-----------------
* ``counting-curve`` is the headline: the Appendix C.1 counting protocol
  measured over three decades of ``n``.  Lemma 12 bounds its convergence by
  ``O(n^2 log^2 n)`` interactions; empirically the mean sits near
  ``0.6 * n^2`` with a fitted exponent of about 1.95.  The batch backend's
  geometric skipping is what makes ``1.8 * 10^10`` interactions at
  ``n = 10^5`` a minutes-scale run.
* ``theorem-1`` and ``theorem-2`` measure the composed fast protocols.
  Every interaction of those protocols can change the configuration, so the
  batch backend processes events one by one and simulation cost scales with
  the interaction count — which is why their grids stop at ``n = 1024``.
* ``counting-smoke`` is the CI grid: two tiny cells, a couple of seconds.
"""

from __future__ import annotations

from typing import Dict, List

from ..engine.errors import ConfigurationError
from .spec import BudgetPolicy, SweepSpec

__all__ = ["builtin_specs", "builtin_names", "resolve_builtin"]


def builtin_specs() -> Dict[str, SweepSpec]:
    """Construct the builtin sweeps (fresh instances each call)."""
    specs = [
        SweepSpec(
            name="counting-curve",
            protocol="backup-approximate",
            ns=[1_000, 10_000, 100_000],
            seeds_per_cell=5,
            backend="batch",
            budget=BudgetPolicy(factor=40.0, n_exponent=2.0, log_exponent=0.0),
            max_checks=500,
            description=(
                "Appendix C.1 approximate-counting protocol: interactions to "
                "agree on floor(log2 n), three decades of n; Lemma 12 predicts "
                "a scaling exponent of ~2."
            ),
        ),
        SweepSpec(
            name="theorem-1",
            protocol="approximate",
            ns=[128, 256, 512, 1_024],
            seeds_per_cell=5,
            backend="auto",
            budget=BudgetPolicy(factor=128.0, n_exponent=1.0, log_exponent=2.0),
            max_checks=2_000,
            description=(
                "Protocol Approximate (Theorem 1): interactions until every "
                "output is floor/ceil(log2 n); the paper predicts O(n log^2 n)."
            ),
        ),
        SweepSpec(
            name="theorem-2",
            protocol="count-exact",
            ns=[64, 128, 256, 512],
            seeds_per_cell=5,
            backend="auto",
            budget=BudgetPolicy(factor=192.0, n_exponent=1.0, log_exponent=2.0),
            max_checks=2_000,
            description=(
                "Protocol CountExact (Theorem 2): interactions until every "
                "agent outputs exactly n; the paper predicts O(n log n)."
            ),
        ),
        SweepSpec(
            name="accuracy-grid",
            protocol="approximate",
            ns=[128, 256],
            seeds_per_cell=3,
            backend="auto",
            param_grid={"clock_modulus": [16, 40, 64]},
            budget=BudgetPolicy(factor=128.0, n_exponent=1.0, log_exponent=2.0),
            max_checks=2_000,
            description=(
                "Accuracy/failure trade-off of Protocol Approximate over the "
                "phase-clock modulus (the param_grid sweep): the calibrated "
                "modulus (~40 at these n) converges reliably and fast, while "
                "an over-long clock (64) stretches every phase and starts "
                "missing the budget — the convergence rate drops below 1."
            ),
        ),
        SweepSpec(
            name="counting-smoke",
            protocol="backup-approximate",
            ns=[64, 256],
            seeds_per_cell=2,
            backend="batch",
            budget=BudgetPolicy(factor=16.0, n_exponent=2.0, log_exponent=0.0),
            max_checks=200,
            description="Bounded CI grid exercising the sweep subsystem end to end.",
        ),
        SweepSpec(
            name="backup-profile",
            protocol="backup-exact",
            ns=[64, 128],
            seeds_per_cell=2,
            backend="batch",
            budget=BudgetPolicy(factor=16.0, n_exponent=2.0, log_exponent=0.0),
            max_checks=200,
            description=(
                "Telemetry showcase for --profile: the exact-counting "
                "protocol's churning pair table splits wall time across "
                "sampling, transition application, and pair-weight "
                "maintenance; the aggregated PROFILE artifact breaks those "
                "phases down."
            ),
        ),
    ]
    return {spec.name: spec for spec in specs}


def builtin_names() -> List[str]:
    """Names of the builtin sweeps, headline first."""
    return list(builtin_specs())


def resolve_builtin(name: str) -> SweepSpec:
    """Look up a builtin spec by name."""
    specs = builtin_specs()
    try:
        return specs[name]
    except KeyError:
        known = ", ".join(specs)
        raise ConfigurationError(
            f"unknown builtin sweep {name!r}; available: {known}"
        ) from None

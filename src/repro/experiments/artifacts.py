"""Sweep artifacts: ``SWEEP_<name>.json`` documents and CSV tables.

The JSON artifact is the durable record of a sweep: it embeds the full spec
(so the sweep is re-runnable from the artifact alone), every cell's run
summaries and statistics, and the fitted scaling exponents.  ``--resume``
reads the previous artifact, treats cells whose every seeded repetition
completed without error as done, and merges them with the freshly run cells.

The CSV table is a flat per-cell view for spreadsheet/plotting workflows.
"""

from __future__ import annotations

import csv
import json
import os
import time
from typing import Any, Dict, List, Optional, Set

from ..bench.runner import write_report
from ..engine.errors import ExperimentError
from ..fingerprint import code_fingerprint, spec_sha256
from ..obs.profile import profile_from_cells
from ..resume import completed_cell_ids as _completed_cell_ids
from ..resume import merge_cells as _merge_cells
from .aggregate import sweep_fits
from .spec import SweepSpec

__all__ = [
    "sweep_json_path",
    "sweep_csv_path",
    "build_document",
    "write_sweep",
    "load_document",
    "completed_cell_ids",
    "merge_cells",
]


def sweep_json_path(output_dir: str, spec: SweepSpec) -> str:
    """Path of the sweep's JSON artifact."""
    return os.path.join(output_dir, f"SWEEP_{spec.name}.json")


def sweep_csv_path(output_dir: str, spec: SweepSpec) -> str:
    """Path of the sweep's CSV table."""
    return os.path.join(output_dir, f"SWEEP_{spec.name}.csv")


def build_document(
    spec: SweepSpec,
    cells: List[Dict[str, Any]],
    workers: int,
) -> Dict[str, Any]:
    """Assemble the JSON artifact document for a completed sweep."""
    failed = [cell["cell_id"] for cell in cells if cell.get("error")]
    spec_dict = spec.to_dict()
    return {
        "artifact": "sweep",
        "name": spec.name,
        "generated_unix": int(time.time()),
        "workers": workers,
        "code_fingerprint": code_fingerprint(),
        "spec_sha256": spec_sha256(spec_dict),
        "spec": spec_dict,
        "fits": sweep_fits([cell for cell in cells if not cell.get("error")]),
        "telemetry": profile_from_cells(cells),
        "failed_cells": failed,
        "cells": cells,
    }


def load_document(path: str) -> Optional[Dict[str, Any]]:
    """Load a previous artifact, or ``None`` when absent.

    A file that exists but cannot be parsed raises
    :class:`~repro.engine.errors.ExperimentError` rather than being silently
    overwritten — resuming over a corrupt artifact is a user decision.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ExperimentError(f"cannot read sweep artifact {path}: {error}") from None
    if not isinstance(document, dict) or document.get("artifact") != "sweep":
        raise ExperimentError(f"{path} is not a sweep artifact")
    return document


def completed_cell_ids(document: Optional[Dict[str, Any]], spec: SweepSpec) -> Set[str]:
    """Cell ids from a previous artifact that ``--resume`` may skip.

    Delegates to the shared grid-resume helper of :mod:`repro.resume`: a
    cell counts as complete when it belongs to the same spec grid, carries
    no error, and ran every one of its currently-specified seeds — and a
    document stamped by a different code version resumes nothing.
    """
    return _completed_cell_ids(document, spec)


def merge_cells(
    document: Optional[Dict[str, Any]],
    fresh: List[Dict[str, Any]],
    spec: SweepSpec,
) -> List[Dict[str, Any]]:
    """Combine resumed cells from ``document`` with freshly run ones.

    Shared-helper semantics (:func:`repro.resume.merge_cells`): fresh wins,
    except a fresh *failed* record never replaces a previous successful and
    complete one; the merged list follows the spec's grid order.
    """
    return _merge_cells(document, fresh, spec)


_CSV_COLUMNS = [
    "cell_id",
    "n",
    "runs",
    "converged_runs",
    "convergence_rate",
    "convergence_interactions_mean",
    "convergence_interactions_median",
    "convergence_interactions_p90",
    "parallel_time_mean",
    "distinct_states_mean",
    "wall_time_s_mean",
    "error",
]


def _csv_row(cell: Dict[str, Any]) -> Dict[str, Any]:
    stats = cell.get("stats") or {}

    def stat(name: str, key: str) -> Any:
        summary = stats.get(name) or {}
        return summary.get(key, "")

    return {
        "cell_id": cell["cell_id"],
        "n": cell["n"],
        "runs": stats.get("runs", 0),
        "converged_runs": stats.get("converged_runs", 0),
        "convergence_rate": stats.get("convergence_rate", ""),
        "convergence_interactions_mean": stat("convergence_interactions", "mean"),
        "convergence_interactions_median": stat("convergence_interactions", "median"),
        "convergence_interactions_p90": stat("convergence_interactions", "p90"),
        "parallel_time_mean": stat("parallel_time", "mean"),
        "distinct_states_mean": stat("distinct_states", "mean"),
        "wall_time_s_mean": stat("wall_time_s", "mean"),
        "error": (cell.get("error") or "").strip().splitlines()[-1] if cell.get("error") else "",
    }


def write_sweep(
    document: Dict[str, Any],
    output_dir: str,
    spec: SweepSpec,
) -> Dict[str, str]:
    """Write the JSON artifact and CSV table; return their paths."""
    os.makedirs(output_dir, exist_ok=True)
    json_path = sweep_json_path(output_dir, spec)
    write_report(document, json_path)
    csv_path = sweep_csv_path(output_dir, spec)
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_CSV_COLUMNS)
        writer.writeheader()
        for cell in document["cells"]:
            writer.writerow(_csv_row(cell))
    return {"json": json_path, "csv": csv_path}

"""Shared completed-cell accounting for resumable grids and result caches.

Three subsystems reuse previously computed cell records: ``repro-sweep
--resume``, ``repro-chaos --resume``, and the server's content-addressed
:class:`~repro.server.cache.ResultCache`.  They all need the same two
decisions made identically:

* *Is a previous record still trustworthy for this spec?* —
  :func:`cell_is_complete` (same grid cell, same derived seeds, every run
  present, no error) plus the document-level code-fingerprint gate of
  :func:`completed_cell_ids` (results from a different code version are
  stale by definition).
* *Which record wins when both a previous and a fresh one exist?* —
  :func:`merge_cells`.  Fresh records win, with one exception: a fresh
  *failed* record never overwrites a previous *successful, complete* one —
  a transient worker crash on a re-run must not destroy good data.

The helpers are duck-typed over ``spec.cells()`` (any object whose cells
expose ``cell_id`` and ``seeds``), which is how one implementation serves
sweeps, scenarios, and the server's job kinds alike.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from .fingerprint import code_fingerprint

__all__ = ["cell_is_complete", "completed_cell_ids", "merge_cells"]


def cell_is_complete(record: Optional[Dict[str, Any]], expected_cell: Any) -> bool:
    """Whether ``record`` fully covers ``expected_cell`` and succeeded.

    Complete means: same cell id, no error, the same derived seeds as the
    spec currently prescribes (so raising ``seeds_per_cell`` or reseeding
    invalidates the record, as it must), and one run per seed.
    """
    if not record or record.get("error"):
        return False
    if record.get("cell_id") != expected_cell.cell_id:
        return False
    if list(record.get("seeds", ())) != list(expected_cell.seeds):
        return False
    return len(record.get("runs", ())) == len(expected_cell.seeds)


def _stale_document(document: Dict[str, Any]) -> bool:
    """A document stamped by a *different* code version is stale.

    Documents predating the fingerprint stamp carry no field and are
    accepted (their cells still match on id + seeds); once stamped, only an
    exact fingerprint match may feed ``--resume`` or the result cache.
    """
    stamp = document.get("code_fingerprint")
    return stamp is not None and stamp != code_fingerprint()


def completed_cell_ids(document: Optional[Dict[str, Any]], spec: Any) -> Set[str]:
    """Cell ids from a previous artifact that a resume may skip."""
    if not document or _stale_document(document):
        return set()
    by_id = {cell.cell_id: cell for cell in spec.cells()}
    done: Set[str] = set()
    for record in document.get("cells", ()):
        expected = by_id.get(record.get("cell_id"))
        if expected is not None and cell_is_complete(record, expected):
            done.add(record["cell_id"])
    return done


def merge_cells(
    document: Optional[Dict[str, Any]],
    fresh: List[Dict[str, Any]],
    spec: Any,
) -> List[Dict[str, Any]]:
    """Combine resumed cells from ``document`` with freshly run ones.

    The merged list follows the spec's grid order and drops stale cells no
    longer in the grid.  Fresh records win on conflicts — except that a
    fresh *failed* record never replaces a previous record that is complete
    and successful for the same cell: re-running a finished cell (e.g.
    after a spec round-trip, or a worker lost mid-retry) must not downgrade
    the artifact.
    """
    if document is not None and _stale_document(document):
        document = None
    fresh_by_id = {record["cell_id"]: record for record in fresh}
    previous_by_id = {
        record["cell_id"]: record for record in (document or {}).get("cells", ())
    }
    merged: List[Dict[str, Any]] = []
    for cell in spec.cells():
        fresh_record = fresh_by_id.get(cell.cell_id)
        previous_record = previous_by_id.get(cell.cell_id)
        record = fresh_record if fresh_record is not None else previous_record
        if (
            fresh_record is not None
            and fresh_record.get("error")
            and cell_is_complete(previous_record, cell)
        ):
            record = previous_record
        if record is not None:
            merged.append(record)
    return merged

"""Population-protocol simulation engine (the substrate of this reproduction).

The engine implements the probabilistic population model of Angluin et al.
exactly as the paper assumes it (Section 1.1): ``n`` anonymous agents, a
uniformly random ordered pair interacting at each discrete step, a common
transition function, and per-agent output functions.  Everything else in the
library — the auxiliary protocols of Section 2, the counting protocols of
Sections 3–4, the baselines and the experiment harness — is built on top of
these primitives.
"""

from .backends import (
    AgentBackend,
    Backend,
    BatchBackend,
    LiftedKeyTransitions,
)
from .samplers import (
    SAMPLER_NAMES,
    AliasSampler,
    AliasTable,
    FenwickSampler,
    ScanSampler,
    WeightedSampler,
    make_sampler,
)
from .vectorized import (
    ACCEL_NAMES,
    DenseBlockKernel,
    FactorisedPairKernel,
    VectorSampler,
    numpy_available,
    resolve_accel,
)
from .convergence import (
    ConvergenceTracker,
    accuracy_fraction,
    all_outputs_equal,
    all_outputs_satisfy,
    fraction_outputs_satisfy,
    output_items,
    outputs_in,
    outputs_within_spread,
    total_outputs,
)
from .errors import (
    ConfigurationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    SimulationError,
    UniformityError,
)
from .hooks import CallbackHook, FailureInjectionHook, Hook, TimelineEvent
from .metrics import (
    AggregateInteractionCounter,
    InteractionCounter,
    MetricsSnapshot,
    StateSpaceTracker,
)
from .protocol import Protocol, generic_state_key
from .recorder import OutputTraceRecorder, StateHistogramRecorder
from .rng import derive_seed, make_rng, mix_seed, spawn_rngs, spawn_seeds
from .scheduler import (
    BiasedScheduler,
    PartitionedScheduler,
    RoundRobinScheduler,
    Scheduler,
    SequenceScheduler,
    UniformRandomScheduler,
)
from .simulator import (
    SimulationResult,
    Simulator,
    default_interaction_budget,
    json_value,
    simulate,
)
from .stats import (
    chi_square_gof,
    chi_square_pvalue,
    chi_square_statistic,
    ks_pvalue,
    ks_statistic,
)

__all__ = [
    "AgentBackend",
    "AliasSampler",
    "AliasTable",
    "Backend",
    "BatchBackend",
    "FenwickSampler",
    "LiftedKeyTransitions",
    "SAMPLER_NAMES",
    "ScanSampler",
    "WeightedSampler",
    "make_sampler",
    "ACCEL_NAMES",
    "DenseBlockKernel",
    "FactorisedPairKernel",
    "VectorSampler",
    "numpy_available",
    "resolve_accel",
    "ConvergenceTracker",
    "accuracy_fraction",
    "all_outputs_equal",
    "all_outputs_satisfy",
    "fraction_outputs_satisfy",
    "output_items",
    "outputs_in",
    "outputs_within_spread",
    "total_outputs",
    "ConfigurationError",
    "ExperimentError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "UniformityError",
    "CallbackHook",
    "FailureInjectionHook",
    "Hook",
    "TimelineEvent",
    "AggregateInteractionCounter",
    "InteractionCounter",
    "MetricsSnapshot",
    "StateSpaceTracker",
    "Protocol",
    "generic_state_key",
    "OutputTraceRecorder",
    "StateHistogramRecorder",
    "derive_seed",
    "make_rng",
    "mix_seed",
    "spawn_rngs",
    "spawn_seeds",
    "BiasedScheduler",
    "PartitionedScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SequenceScheduler",
    "UniformRandomScheduler",
    "SimulationResult",
    "Simulator",
    "default_interaction_budget",
    "json_value",
    "simulate",
    "chi_square_gof",
    "chi_square_pvalue",
    "chi_square_statistic",
    "ks_pvalue",
    "ks_statistic",
]

"""Simulation hooks.

Hooks observe a running simulation without being part of any protocol.  They
are used for trace recording, progress reporting, failure injection in tests,
and for the *oracle clock driver* used by the idealized analyses (which is a
deliberate, documented break of uniformity confined to the analysis layer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Optional

from .errors import ConfigurationError
from .rng import SeedLike, make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from .simulator import Simulator

__all__ = ["Hook", "CallbackHook", "FailureInjectionHook", "TimelineEvent"]


@dataclass
class TimelineEvent:
    """A scheduled intervention in a running simulation.

    The simulator applies the event once its interaction counter reaches
    ``at``: it stops the chain exactly there (truncating any pending
    geometric skip, which is exact by memorylessness), calls ``apply`` with
    the simulator, and resumes.  Events drive the dynamic-population
    scenarios: churn (``backend.join`` / ``leave`` / ``replace``), restarts,
    fault campaigns, and scheduler reconfiguration are all expressed as
    timeline events.

    Attributes:
        at: Interaction index at which the event fires.  Events scheduled at
            or beyond the interaction budget never fire (they are reported as
            unfired in the run's ``extra["timeline"]``).
        kind: Machine-readable event category (``"join"``, ``"leave"``, …).
        apply: Callable receiving the simulator; performs the intervention
            and returns a JSON-friendly dict of details for the run record.
        label: Human-readable tag carried into records (defaults to *kind*).
    """

    at: int
    kind: str
    apply: Callable[["Simulator"], Dict[str, Any]]
    label: str = ""

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("timeline events cannot fire before interaction 0")
        if not self.label:
            self.label = self.kind


class Hook:
    """Base class for simulation observers.  All callbacks default to no-ops.

    Hooks that can only observe correctly through the per-agent callbacks
    (``before_interaction``/``after_interaction``) must set
    :attr:`requires_agent_backend` so the simulator rejects them under the
    batch backend instead of silently never invoking them.
    """

    #: When ``True``, constructing a batch-backend simulator with this hook
    #: raises ``ConfigurationError`` (and ``backend="auto"`` selects the
    #: per-agent backend instead).
    requires_agent_backend: bool = False

    def on_start(self, simulator: "Simulator") -> None:
        """Called once before the first interaction of a run."""

    def before_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        """Called before each interaction with the scheduled agent indices."""

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        """Called after each interaction with the scheduled agent indices."""

    def on_batch_event(
        self,
        simulator: "Simulator",
        key_a: Hashable,
        key_b: Hashable,
        new_key_a: Hashable,
        new_key_b: Hashable,
    ) -> None:
        """Called by the batch backend after each individually simulated event.

        The batch backend has no agent identities, so ``before_interaction``
        and ``after_interaction`` never fire under it; this callback receives
        the ordered pair of pre-interaction state keys and the resulting
        post-interaction keys instead.  One callback fires per *event* — an
        interaction whose pair type could change the configuration.  The
        event may still be a no-op (``new_key_a == key_a`` etc.) when the
        protocol's ``can_interaction_change`` is conservative; interactions
        that provably preserve the configuration are skipped in bulk and
        produce no callback.
        """

    def before_checkpoint(self, simulator: "Simulator") -> None:
        """Called at each checkpoint *before* the convergence predicate runs.

        This is the place for interventions that must be visible to the
        predicate evaluated at the same checkpoint (e.g. batch-mode failure
        injection): firing from :meth:`on_checkpoint` instead could corrupt
        the configuration *after* the final satisfied check, producing a
        "converged" result whose reported outputs never passed the predicate.
        """

    def on_checkpoint(self, simulator: "Simulator", satisfied: bool) -> None:
        """Called whenever the simulator evaluates its convergence predicate."""

    def on_timeline_event(
        self, simulator: "Simulator", event: "TimelineEvent", record: Dict[str, Any]
    ) -> None:
        """Called after a timeline event was applied to the simulation.

        ``record`` is the JSON-friendly event record (``at``, ``kind``,
        ``label``, ``n_after``, the ``apply`` details) that will land in the
        run's ``extra["timeline"]``; hooks may annotate it in place — the
        scenario subsystem's invariant tracker adds its measurements here.
        """

    def on_end(self, simulator: "Simulator") -> None:
        """Called once when a run finishes (for any reason)."""


class CallbackHook(Hook):
    """Adapter turning plain callables into a :class:`Hook`.

    Any subset of the callbacks may be provided; missing ones are no-ops.
    """

    def __init__(
        self,
        on_start: Optional[Callable[["Simulator"], None]] = None,
        before_interaction: Optional[Callable[["Simulator", int, int], None]] = None,
        after_interaction: Optional[Callable[["Simulator", int, int], None]] = None,
        on_checkpoint: Optional[Callable[["Simulator", bool], None]] = None,
        on_end: Optional[Callable[["Simulator"], None]] = None,
        on_batch_event: Optional[
            Callable[["Simulator", Hashable, Hashable, Hashable, Hashable], None]
        ] = None,
        before_checkpoint: Optional[Callable[["Simulator"], None]] = None,
        on_timeline_event: Optional[
            Callable[["Simulator", "TimelineEvent", Dict[str, Any]], None]
        ] = None,
    ) -> None:
        self._on_start = on_start
        self._before = before_interaction
        self._after = after_interaction
        self._on_checkpoint = on_checkpoint
        self._on_end = on_end
        self._on_batch_event = on_batch_event
        self._before_checkpoint = before_checkpoint
        self._on_timeline_event = on_timeline_event

    def on_start(self, simulator: "Simulator") -> None:
        if self._on_start:
            self._on_start(simulator)

    def before_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if self._before:
            self._before(simulator, initiator, responder)

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if self._after:
            self._after(simulator, initiator, responder)

    def on_batch_event(
        self,
        simulator: "Simulator",
        key_a: Hashable,
        key_b: Hashable,
        new_key_a: Hashable,
        new_key_b: Hashable,
    ) -> None:
        if self._on_batch_event:
            self._on_batch_event(simulator, key_a, key_b, new_key_a, new_key_b)

    def before_checkpoint(self, simulator: "Simulator") -> None:
        if self._before_checkpoint:
            self._before_checkpoint(simulator)

    def on_checkpoint(self, simulator: "Simulator", satisfied: bool) -> None:
        if self._on_checkpoint:
            self._on_checkpoint(simulator, satisfied)

    def on_timeline_event(
        self, simulator: "Simulator", event: TimelineEvent, record: Dict[str, Any]
    ) -> None:
        if self._on_timeline_event:
            self._on_timeline_event(simulator, event, record)

    def on_end(self, simulator: "Simulator") -> None:
        if self._on_end:
            self._on_end(simulator)


class FailureInjectionHook(Hook):
    """Corrupt agent states at a chosen interaction, under either backend.

    Used by the stability test-suite to verify that the error-detection
    routines of the stable protocols (Appendix B / F) catch injected faults
    and fall back to the always-correct backup protocols.

    Two corruption modes exist, matching the two population representations:

    * ``corrupt`` mutates per-agent state objects in place — only possible
      under the agent backend, which materialises them.
    * ``corrupt_key`` rewrites state *keys*; under the batch backend
      ``victims`` agents are sampled from the key histogram (weighted by
      multiplicity, i.e. uniformly over agents) and each victim's key is
      replaced by ``corrupt_key(key, rng)`` via
      :meth:`~repro.engine.backends.BatchBackend.corrupt_histogram`.  This is
      the marginalised view of uniform-victim corruption, so stability
      experiments scale to populations where agent objects are prohibitive.

    At least one mode must be provided; a hook with only ``corrupt`` keeps
    the historical behaviour of refusing the batch backend outright (a
    silent no-fire would report falsely clean stability results).  The batch
    trigger is checked after every simulated event and at every convergence
    checkpoint, so with a conservative interaction budget the corruption
    fires even across long configuration-preserving skips.

    Under *either* backend a run that ends before ``at_interaction`` — an
    early convergence stop, an exhausted budget, or (batch) a terminal fixed
    point — finishes without the corruption ever firing; stability
    experiments must therefore place ``at_interaction`` inside the
    pre-convergence window and assert :attr:`fired` afterwards.

    Args:
        at_interaction: Interaction index after which the corruption fires.
        corrupt: Callable receiving the simulator; mutates one or more agent
            states in place (agent backend).
        corrupt_key: Callable ``(key, rng) -> new_key`` applied to each
            sampled victim's state key (batch backend).
        victims: Number of agents corrupted by the batch-mode injection.
        seed: Seed of the injection's private random stream.
    """

    def __init__(
        self,
        at_interaction: int,
        corrupt: Optional[Callable[["Simulator"], None]] = None,
        corrupt_key: Optional[Callable[[Hashable, random.Random], Hashable]] = None,
        victims: int = 1,
        seed: SeedLike = 0,
    ) -> None:
        if corrupt is None and corrupt_key is None:
            raise ConfigurationError(
                "FailureInjectionHook needs corrupt (agent backend) and/or "
                "corrupt_key (batch backend)"
            )
        if victims < 1:
            raise ConfigurationError("victims must be at least 1")
        self.at_interaction = at_interaction
        self.corrupt = corrupt
        self.corrupt_key = corrupt_key
        self.victims = victims
        self.fired = False
        self._rng = make_rng(seed, "failure-injection")
        # Without a key-level corruption the batch backend must refuse the
        # hook instead of silently never firing it.
        self.requires_agent_backend = corrupt_key is None

    def on_start(self, simulator: "Simulator") -> None:
        if simulator.backend_name == "agent" and self.corrupt is None:
            raise ConfigurationError(
                "FailureInjectionHook has no agent-state corruption; provide "
                "corrupt= to run under the agent backend"
            )

    def _maybe_fire_batch(self, simulator: "Simulator") -> None:
        if not self.fired and simulator.interactions >= self.at_interaction:
            self.fired = True
            simulator.backend.corrupt_histogram(
                self.victims, self.corrupt_key, self._rng
            )

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if not self.fired and simulator.interactions >= self.at_interaction:
            self.fired = True
            self.corrupt(simulator)

    def on_batch_event(
        self,
        simulator: "Simulator",
        key_a: Hashable,
        key_b: Hashable,
        new_key_a: Hashable,
        new_key_b: Hashable,
    ) -> None:
        self._maybe_fire_batch(simulator)

    def before_checkpoint(self, simulator: "Simulator") -> None:
        # Fire *before* the predicate runs so a checkpoint-triggered
        # corruption is always visible to the check evaluated alongside it
        # (matching the agent backend, where after_interaction precedes the
        # next checkpoint).
        if simulator.backend_name == "batch":
            self._maybe_fire_batch(simulator)

"""Simulation hooks.

Hooks observe a running simulation without being part of any protocol.  They
are used for trace recording, progress reporting, failure injection in tests,
and for the *oracle clock driver* used by the idealized analyses (which is a
deliberate, documented break of uniformity confined to the analysis layer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from .simulator import Simulator

__all__ = ["Hook", "CallbackHook", "FailureInjectionHook"]


class Hook:
    """Base class for simulation observers.  All callbacks default to no-ops.

    Hooks that can only observe correctly through the per-agent callbacks
    (``before_interaction``/``after_interaction``) must set
    :attr:`requires_agent_backend` so the simulator rejects them under the
    batch backend instead of silently never invoking them.
    """

    #: When ``True``, constructing a batch-backend simulator with this hook
    #: raises ``ConfigurationError`` (and ``backend="auto"`` selects the
    #: per-agent backend instead).
    requires_agent_backend: bool = False

    def on_start(self, simulator: "Simulator") -> None:
        """Called once before the first interaction of a run."""

    def before_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        """Called before each interaction with the scheduled agent indices."""

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        """Called after each interaction with the scheduled agent indices."""

    def on_batch_event(
        self,
        simulator: "Simulator",
        key_a: Hashable,
        key_b: Hashable,
        new_key_a: Hashable,
        new_key_b: Hashable,
    ) -> None:
        """Called by the batch backend after each individually simulated event.

        The batch backend has no agent identities, so ``before_interaction``
        and ``after_interaction`` never fire under it; this callback receives
        the ordered pair of pre-interaction state keys and the resulting
        post-interaction keys instead.  One callback fires per *event* — an
        interaction whose pair type could change the configuration.  The
        event may still be a no-op (``new_key_a == key_a`` etc.) when the
        protocol's ``can_interaction_change`` is conservative; interactions
        that provably preserve the configuration are skipped in bulk and
        produce no callback.
        """

    def on_checkpoint(self, simulator: "Simulator", satisfied: bool) -> None:
        """Called whenever the simulator evaluates its convergence predicate."""

    def on_end(self, simulator: "Simulator") -> None:
        """Called once when a run finishes (for any reason)."""


class CallbackHook(Hook):
    """Adapter turning plain callables into a :class:`Hook`.

    Any subset of the callbacks may be provided; missing ones are no-ops.
    """

    def __init__(
        self,
        on_start: Optional[Callable[["Simulator"], None]] = None,
        before_interaction: Optional[Callable[["Simulator", int, int], None]] = None,
        after_interaction: Optional[Callable[["Simulator", int, int], None]] = None,
        on_checkpoint: Optional[Callable[["Simulator", bool], None]] = None,
        on_end: Optional[Callable[["Simulator"], None]] = None,
        on_batch_event: Optional[
            Callable[["Simulator", Hashable, Hashable, Hashable, Hashable], None]
        ] = None,
    ) -> None:
        self._on_start = on_start
        self._before = before_interaction
        self._after = after_interaction
        self._on_checkpoint = on_checkpoint
        self._on_end = on_end
        self._on_batch_event = on_batch_event

    def on_start(self, simulator: "Simulator") -> None:
        if self._on_start:
            self._on_start(simulator)

    def before_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if self._before:
            self._before(simulator, initiator, responder)

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if self._after:
            self._after(simulator, initiator, responder)

    def on_batch_event(
        self,
        simulator: "Simulator",
        key_a: Hashable,
        key_b: Hashable,
        new_key_a: Hashable,
        new_key_b: Hashable,
    ) -> None:
        if self._on_batch_event:
            self._on_batch_event(simulator, key_a, key_b, new_key_a, new_key_b)

    def on_checkpoint(self, simulator: "Simulator", satisfied: bool) -> None:
        if self._on_checkpoint:
            self._on_checkpoint(simulator, satisfied)

    def on_end(self, simulator: "Simulator") -> None:
        if self._on_end:
            self._on_end(simulator)


class FailureInjectionHook(Hook):
    """Corrupt agent states at chosen interactions.

    Used by the stability test-suite to verify that the error-detection
    routines of the stable protocols (Appendix B / F) catch injected faults
    and fall back to the always-correct backup protocols.

    Args:
        at_interaction: Interaction index after which the corruption fires.
        corrupt: Callable receiving ``(simulator, rng)`` that mutates one or
            more agent states in place.
    """

    # Corruption mutates per-agent state objects, which only the agent
    # backend materialises; under the batch backend this hook would silently
    # never fire and report falsely clean stability results.
    requires_agent_backend = True

    def __init__(self, at_interaction: int, corrupt: Callable[["Simulator"], None]) -> None:
        self.at_interaction = at_interaction
        self.corrupt = corrupt
        self.fired = False

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if not self.fired and simulator.interactions >= self.at_interaction:
            self.corrupt(simulator)
            self.fired = True

"""Distribution-level test statistics (dependency-free).

Correct weighted sampling is the kind of claim that dies silently: a broken
sampler still produces plausible-looking runs, means stay reasonable, and
only the *distribution* drifts.  Following the Herman-protocol analysis
tradition of checking distributions rather than point estimates, this module
provides the two workhorses of the repository's statistical test harness —
the chi-square goodness-of-fit test (does a sampler draw from exactly the
weights it was given?) and the two-sample Kolmogorov–Smirnov test (do two
execution strategies induce the same convergence-time law?) — implemented in
pure Python so the core library stays dependency-free.

P-values are asymptotic (Numerical-Recipes-style regularized incomplete
gamma for chi-square, the Kolmogorov series for KS) and accurate far beyond
what the generous significance thresholds used in the tests require.
"""

from __future__ import annotations

import math
from typing import Hashable, Mapping, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "chi_square_statistic",
    "chi_square_pvalue",
    "chi_square_gof",
    "ks_statistic",
    "ks_pvalue",
    "regularized_gamma_q",
]

_MAX_ITERATIONS = 500
_EPSILON = 3.0e-15


def _lower_gamma_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x) by series (x < s + 1)."""
    term = 1.0 / s
    total = term
    a = s
    for _ in range(_MAX_ITERATIONS):
        a += 1.0
        term *= x / a
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    return total * math.exp(-x + s * math.log(x) - math.lgamma(s))


def _upper_gamma_continued_fraction(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x) by continued fraction (x >= s + 1)."""
    tiny = 1.0e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return h * math.exp(-x + s * math.log(x) - math.lgamma(s))


def regularized_gamma_q(s: float, x: float) -> float:
    """Regularized upper incomplete gamma ``Q(s, x) = Γ(s, x) / Γ(s)``.

    The survival function of the ``Gamma(s, 1)`` law; ``Q(df / 2, x / 2)``
    is the chi-square p-value for statistic ``x`` at ``df`` degrees of
    freedom.
    """
    if s <= 0:
        raise ConfigurationError("gamma shape must be positive")
    if x < 0:
        raise ConfigurationError("gamma argument must be non-negative")
    if x == 0:
        return 1.0
    if x < s + 1.0:
        return 1.0 - _lower_gamma_series(s, x)
    return _upper_gamma_continued_fraction(s, x)


def chi_square_statistic(
    observed: Mapping[Hashable, int], expected: Mapping[Hashable, float]
) -> Tuple[float, int]:
    """Pearson chi-square statistic of ``observed`` counts against ``expected``.

    ``expected`` holds *weights* (any positive scale); they are normalised to
    the observed total.  Returns ``(statistic, degrees_of_freedom)`` with
    ``df = len(expected) - 1``.  Observations outside ``expected``'s support
    are impossible draws and raise.
    """
    if not expected:
        raise ConfigurationError("chi-square needs a non-empty expected distribution")
    unsupported = set(observed) - set(expected)
    if unsupported:
        raise ConfigurationError(
            f"observed values outside the expected support: {sorted(map(repr, unsupported))[:5]}"
        )
    total_weight = float(sum(expected.values()))
    if total_weight <= 0:
        raise ConfigurationError("expected weights must sum to a positive value")
    draws = sum(observed.values())
    statistic = 0.0
    for value, weight in expected.items():
        if weight < 0:
            raise ConfigurationError("expected weights must be non-negative")
        mean = draws * weight / total_weight
        count = observed.get(value, 0)
        if mean == 0:
            if count:
                raise ConfigurationError(
                    f"observed {count} draws of zero-probability value {value!r}"
                )
            continue
        statistic += (count - mean) ** 2 / mean
    support = sum(1 for weight in expected.values() if weight > 0)
    return statistic, max(1, support - 1)


def chi_square_pvalue(statistic: float, df: int) -> float:
    """Asymptotic chi-square p-value (survival function at ``statistic``)."""
    if df < 1:
        raise ConfigurationError("chi-square needs at least one degree of freedom")
    return regularized_gamma_q(df / 2.0, statistic / 2.0)


def chi_square_gof(
    observed: Mapping[Hashable, int], expected: Mapping[Hashable, float]
) -> float:
    """One-call goodness of fit: p-value of ``observed`` under ``expected``."""
    statistic, df = chi_square_statistic(observed, expected)
    return chi_square_pvalue(statistic, df)


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (max empirical-CDF gap).

    The empirical CDFs are compared only *between* distinct values: on a
    tie, both pointers advance past every duplicate of the common value
    before the gap is measured (interaction counts tie often at small
    ``n``, and measuring mid-tie would inflate the statistic — identical
    samples must yield exactly 0).
    """
    if not first or not second:
        raise ConfigurationError("KS needs two non-empty samples")
    xs = sorted(first)
    ys = sorted(second)
    n, m = len(xs), len(ys)
    gap = 0.0
    i = j = 0
    while i < n and j < m:
        x, y = xs[i], ys[j]
        if x <= y:
            while i < n and xs[i] == x:
                i += 1
        if y <= x:
            while j < m and ys[j] == y:
                j += 1
        gap = max(gap, abs(i / n - j / m))
    return gap


def ks_pvalue(statistic: float, n: int, m: int) -> float:
    """Asymptotic two-sample KS p-value (Kolmogorov distribution).

    Uses the effective sample size ``n m / (n + m)`` with the standard
    small-sample correction; accurate enough for the generous thresholds the
    suite uses (sample sizes of a few dozen, alpha around 10^-3).
    """
    if n < 1 or m < 1:
        raise ConfigurationError("KS needs positive sample sizes")
    effective = math.sqrt(n * m / (n + m))
    lam = (effective + 0.12 + 0.11 / effective) * statistic
    if lam <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1.0e-10:
            break
    return max(0.0, min(1.0, 2.0 * total))

"""The population-protocol simulator.

:class:`Simulator` executes the probabilistic population model: at each time
step an ordered pair of distinct agents is drawn (by default uniformly at
random) and the protocol's transition function is applied.  The simulator
tracks interaction counts, observed state-space size, and convergence of a
user-supplied output predicate, and reports everything in a
:class:`SimulationResult`.

Execution is delegated to a pluggable *backend*
(:mod:`repro.engine.backends`): the per-agent reference backend runs one
Python-level transition per interaction, while the batch backend operates on
the configuration histogram and samples batches of interactions at once —
the representation that makes runs at ``n >= 10**6`` tractable.

A convenience function :func:`simulate` covers the common one-shot case.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from .backends import (
    ACCEL_NAMES,
    BACKEND_NAMES,
    SAMPLER_NAMES,
    AgentBackend,
    Backend,
    BatchBackend,
)
from .convergence import ConvergenceTracker, OutputPredicate
from .errors import ConfigurationError, SimulationError, UniformityError
from .hooks import Hook, TimelineEvent
from .metrics import InteractionCounter, StateSpaceTracker
from .protocol import Protocol
from .rng import SeedLike, make_rng
from .scheduler import Scheduler, UniformRandomScheduler

__all__ = [
    "SimulationResult",
    "Simulator",
    "simulate",
    "default_interaction_budget",
    "json_value",
]


def json_value(value: Any) -> Any:
    """Return a JSON-serialisable stand-in for an arbitrary result value.

    Scalars pass through; mappings and sequences are converted recursively;
    anything else (tuples of state-key fragments, protocol objects, …) falls
    back to its stable ``repr``.  Used by the result serialisation hooks so
    experiment artifacts never fail on exotic output values.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(json_value(key)): json_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_value(item) for item in value]
    return repr(value)

#: Above this population size the batch backend omits the expanded per-agent
#: ``outputs`` list from results (the histogram is always present).
OUTPUT_LIST_LIMIT = 1 << 17


def default_interaction_budget(n: int, factor: float = 64.0, exponent: float = 2.0) -> int:
    """Return a generous default interaction budget of ``factor * n * log2(n)^exponent``.

    Protocol `Approximate` converges in ``O(n log^2 n)`` interactions, so the
    default budget (with ``exponent=2``) comfortably covers both of the
    paper's fast protocols at simulation scales.
    """
    if n < 2:
        raise ConfigurationError("population size must be at least 2")
    return int(factor * n * max(1.0, math.log2(n)) ** exponent)


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        protocol_name: Name of the protocol that was run.
        n: Population size.
        seed: Seed the run was started with.  Integer seeds are stored
            as-is; any other seed value is stored as its stable ``repr``.
        interactions: Total number of interactions executed.
        converged: Whether the convergence predicate held at the final
            checkpoint (and therefore from :attr:`convergence_interaction` on).
        convergence_interaction: First interaction of the final satisfied
            streak of convergence checks, or ``None`` if never satisfied.
        stopped_reason: Why the run ended (``"converged"``, ``"budget"``,
            ``"converged-at-budget"``, ``"terminal"``).
        outputs: Final per-agent outputs.  The batch backend synthesises
            this list from the histogram (its order is arbitrary) and omits
            it entirely above ``OUTPUT_LIST_LIMIT`` agents, in which case
            ``extra["outputs_omitted"]`` is set.
        output_counts: Histogram of final outputs.
        distinct_states: Number of distinct state keys observed.
        state_space: Detailed state-space summary (per-field ranges).
        min_participation: Minimum number of interactions any agent took part
            in (0 under the batch backend, which does not track identities;
            see ``extra["participation_tracked"]``).
        wall_time_s: Wall-clock duration of the run in seconds.
        extra: Free-form protocol- or experiment-specific data.  Always
            includes ``backend``, ``transition_calls``, ``convergence_checks``
            and ``satisfied_checks``.
    """

    protocol_name: str
    n: int
    seed: Optional[Union[int, str]]
    interactions: int
    converged: bool
    convergence_interaction: Optional[int]
    stopped_reason: str
    outputs: List[Any]
    output_counts: Counter
    distinct_states: int
    state_space: Dict[str, Any]
    min_participation: int
    wall_time_s: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def consensus_output(self) -> Optional[Any]:
        """The unique common output if all agents agree, else ``None``."""
        if len(self.output_counts) == 1:
            return next(iter(self.output_counts))
        return None

    @property
    def agreement_fraction(self) -> float:
        """Fraction of agents reporting the most common final output."""
        if not self.output_counts:
            return 0.0
        return self.output_counts.most_common(1)[0][1] / self.n

    def summary(self) -> Dict[str, Any]:
        """Return a compact JSON-friendly summary of the run."""
        return {
            "protocol": self.protocol_name,
            "n": self.n,
            "seed": self.seed,
            "backend": self.extra.get("backend"),
            "interactions": self.interactions,
            "transition_calls": self.extra.get("transition_calls"),
            "converged": self.converged,
            "convergence_interaction": self.convergence_interaction,
            "stopped_reason": self.stopped_reason,
            "consensus_output": json_value(self.consensus_output),
            "agreement_fraction": round(self.agreement_fraction, 4),
            "distinct_states": self.distinct_states,
            "wall_time_s": round(self.wall_time_s, 4),
        }

    def as_json_dict(self) -> Dict[str, Any]:
        """Return a lossless-ish JSON-safe record of the run.

        Extends :meth:`summary` with the output histogram, the state-space
        summary, and the ``extra`` payload, with every non-JSON value passed
        through :func:`json_value`.  This is the serialisation hook used by
        the experiment artifact writers (``SWEEP_*.json``); it deliberately
        omits the per-agent ``outputs`` list, which the histogram already
        represents up to the (meaningless) agent order.
        """
        record = self.summary()
        record["output_counts"] = [
            [json_value(value), count] for value, count in self.output_counts.most_common()
        ]
        record["state_space"] = json_value(self.state_space)
        record["min_participation"] = self.min_participation
        record["extra"] = json_value(self.extra)
        return record


def _record_seed(seed: SeedLike) -> Optional[Union[int, str]]:
    """Stable, JSON-friendly representation of the run seed."""
    if seed is None or isinstance(seed, int):
        return seed
    return repr(seed)


class Simulator:
    """Discrete-event simulator for population protocols.

    Args:
        protocol: The protocol to run.
        n: Population size (``>= 2``).
        seed: Base seed; the scheduler and the agents' synthetic coins derive
            independent sub-streams from it.
        scheduler: Interaction scheduler; defaults to the uniform random
            scheduler of the population model.  Custom schedulers force the
            per-agent backend.
        hooks: Observers notified of simulation events.
        track_state_space: Whether to maintain the observed-state-space
            tracker (cheap, but can be disabled for micro-benchmarks).
        require_uniform: When ``True``, refuse to construct a simulator for a
            protocol that declares ``uniform = False``.
        backend: ``"agent"`` (default) runs the reference per-agent loop;
            ``"batch"`` runs the batched configuration-vector backend (using
            the key-lifting adapter when the protocol has no native
            ``delta_key``); ``"auto"`` picks ``"batch"`` when the protocol
            natively supports key-level transitions and neither a custom
            scheduler nor a hook requiring per-agent callbacks is in play,
            else ``"agent"``.
        sampler: Weighted-sampling strategy of the batch backend
            (``"auto"``, ``"scan"``, ``"alias"``, ``"fenwick"`` — see
            :mod:`repro.engine.samplers`).  ``"auto"`` (default) starts on
            the alias table and switches to the Fenwick tree when the
            weight table churns too fast to amortise.  The knob only
            affects the batch backend; the per-agent backend draws agent
            indices, not weighted types, and accepts any value unchanged
            (so mixed agent/batch scenario grids can share one spec).
        accel: Hot-loop implementation of the batch backend (``"auto"``,
            ``"numpy"``, ``"python"`` — see :mod:`repro.engine.vectorized`).
            ``"auto"`` (default) selects the NumPy block-drawing kernels
            when NumPy is importable and no specific sampler strategy was
            forced, and the pure-Python path otherwise; the
            ``REPRO_NO_NUMPY`` environment variable vetoes detection.  Like
            ``sampler``, the knob is accepted (and ignored) by the
            per-agent backend.  The active path is recorded in
            ``SimulationResult.extra["accel"]``.
    """

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: SeedLike = 0,
        scheduler: Optional[Scheduler] = None,
        hooks: Iterable[Hook] = (),
        track_state_space: bool = True,
        require_uniform: bool = False,
        backend: str = "agent",
        sampler: str = "auto",
        accel: str = "auto",
    ) -> None:
        if n < 2:
            raise ConfigurationError("population size must be at least 2")
        if require_uniform and not protocol.uniform:
            raise UniformityError(
                f"protocol {protocol.name!r} is not uniform but uniformity was required"
            )
        if backend not in BACKEND_NAMES:
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
            )
        if sampler not in SAMPLER_NAMES:
            raise ConfigurationError(
                f"unknown sampler {sampler!r}; expected one of {SAMPLER_NAMES}"
            )
        if accel not in ACCEL_NAMES:
            raise ConfigurationError(
                f"unknown accel {accel!r}; expected one of {ACCEL_NAMES}"
            )
        self.sampler = sampler
        self.accel = accel
        self.protocol = protocol
        #: Population size the simulator was constructed with; the current
        #: size is the (dynamic) :attr:`n` property, which timeline churn
        #: events may change mid-run.
        self.initial_n = n
        self.seed = seed
        self.hooks: List[Hook] = list(hooks)
        self._scheduler_rng = make_rng(seed, "scheduler")
        self._agent_rng = make_rng(seed, "agents")
        self.track_state_space = track_state_space

        custom_scheduler = scheduler is not None and not isinstance(
            scheduler, UniformRandomScheduler
        )
        agent_only_hooks = [
            hook for hook in self.hooks if getattr(hook, "requires_agent_backend", False)
        ]
        if backend == "auto":
            backend = (
                "batch"
                if protocol.supports_key_transitions()
                and not custom_scheduler
                and not agent_only_hooks
                else "agent"
            )
        if backend == "batch":
            if custom_scheduler:
                raise ConfigurationError(
                    "the batch backend implements the uniform random scheduler; "
                    f"it cannot honour {type(scheduler).__name__}"
                )
            if agent_only_hooks:
                names = ", ".join(type(hook).__name__ for hook in agent_only_hooks)
                raise ConfigurationError(
                    f"hooks requiring per-agent callbacks cannot observe the "
                    f"batch backend: {names}"
                )
            self.scheduler: Scheduler = UniformRandomScheduler()
            self._backend: Backend = BatchBackend(
                self,
                scheduler_rng=self._scheduler_rng,
                agent_rng=self._agent_rng,
                track_state_space=track_state_space,
                sampler=sampler,
                accel=accel,
            )
        else:
            self.scheduler = scheduler if scheduler is not None else UniformRandomScheduler()
            self._backend = AgentBackend(
                self,
                scheduler=self.scheduler,
                scheduler_rng=self._scheduler_rng,
                agent_rng=self._agent_rng,
                track_state_space=track_state_space,
            )

    # --------------------------------------------------------------- backend
    @property
    def n(self) -> int:
        """Current population size (timeline churn events change it mid-run)."""
        backend = getattr(self, "_backend", None)
        return backend.n if backend is not None else self.initial_n

    @property
    def backend(self) -> Backend:
        """The execution backend driving this simulator."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Name of the active backend (``"agent"`` or ``"batch"``)."""
        return self._backend.name

    @property
    def interactions(self) -> int:
        """Total number of interactions executed so far."""
        return self._backend.interactions

    @property
    def counter(self):
        """The backend's interaction counter (aggregate-only for batch)."""
        return self._backend.counter

    @property
    def state_space(self) -> StateSpaceTracker:
        """The backend's observed-state-space tracker."""
        return self._backend.state_space

    @property
    def states(self) -> List[Any]:
        """Per-agent state objects (per-agent backend only)."""
        backend = self._backend
        if isinstance(backend, AgentBackend):
            return backend.states
        raise SimulationError(
            "the batch backend does not materialise per-agent states; "
            "use state_key_counts() instead"
        )

    # ------------------------------------------------------------ observers
    def outputs(self) -> List[Any]:
        """Return the current per-agent outputs.

        Under the batch backend the list is synthesised from the output
        histogram and its order is arbitrary.
        """
        return self._backend.outputs()

    def output_counts(self) -> Counter:
        """Return a histogram of the current per-agent outputs."""
        return self._backend.output_counts()

    def state_keys(self) -> List[Hashable]:
        """Return the current per-agent state keys."""
        return self._backend.state_keys()

    def state_key_counts(self) -> Counter:
        """Return the current configuration as a state-key histogram."""
        return self._backend.state_key_counts()

    def is_stable_configuration(self) -> bool:
        """Check structural stability of the current configuration.

        A configuration is stable when no ordered pair of currently-present
        state keys can change it.  This relies on the protocol overriding
        :meth:`repro.engine.protocol.Protocol.can_interaction_change`; for
        protocols using the conservative default this returns ``False``
        unless only a single state key remains and it is a fixed point.
        """
        counts = self._backend.state_key_counts()
        can_change = self.protocol.can_interaction_change
        for a in counts:
            for b in counts:
                if a is b or a == b:
                    if counts[a] >= 2 and can_change(a, b):
                        return False
                elif can_change(a, b) or can_change(b, a):
                    return False
        return True

    # ------------------------------------------------------------- stepping
    def step(self) -> Tuple[int, int]:
        """Execute a single interaction and return the (initiator, responder) pair.

        Only meaningful for the per-agent backend; the batch backend advances
        whole windows of interactions at once via :meth:`run`.
        """
        backend = self._backend
        if not isinstance(backend, AgentBackend):
            raise SimulationError(
                "step() requires the per-agent backend; the batch backend is "
                "driven through run()"
            )
        return backend.step()

    def run(
        self,
        max_interactions: Optional[int] = None,
        convergence: Optional[OutputPredicate] = None,
        check_interval: Optional[int] = None,
        stop_when_converged: bool = True,
        confirm_checks: int = 3,
        require_convergence: bool = False,
        timeline: Sequence[TimelineEvent] = (),
        convergence_factory: Optional[Callable[["Simulator"], OutputPredicate]] = None,
        max_wall_time_s: Optional[float] = None,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        Args:
            max_interactions: Interaction budget.  Defaults to
                :func:`default_interaction_budget`.
            convergence: Predicate over the agent outputs defining the
                desired configurations.  It receives the per-agent output
                list under the agent backend and the output histogram under
                the batch backend; the predicates built by
                :mod:`repro.engine.convergence` accept both.  When omitted,
                the run simply exhausts its budget.
            check_interval: How often (in interactions) the predicate is
                evaluated.  Defaults to the *initial* ``n`` (one parallel-time
                unit); the cadence stays fixed through churn so checkpoint
                series remain comparable across a timeline.
            stop_when_converged: Stop early once the predicate has held for
                ``confirm_checks`` consecutive checkpoints.  With a timeline,
                early stopping only applies after the last event — an already-
                converged population must keep running into its next
                disturbance.
            confirm_checks: Number of consecutive satisfied checkpoints
                required before an early stop.
            require_convergence: Raise :class:`SimulationError` if the budget
                is exhausted without the predicate holding at the end.
            timeline: Scheduled :class:`~repro.engine.hooks.TimelineEvent`
                interventions (churn, fault campaigns, scheduler changes).
                The run is split into *segments* at the event boundaries;
                each segment gets its own convergence accounting, and the
                per-segment records (including the recovery time after each
                event) land in ``extra["segments"]`` / ``extra["timeline"]``.
            convergence_factory: Alternative to ``convergence``: a callable
                receiving the simulator and returning the predicate.  It is
                re-invoked after every timeline event, so acceptance criteria
                that depend on the population size track the *new* true ``n``
                through churn.  Mutually exclusive with ``convergence``.
            max_wall_time_s: Wall-clock budget for this run.  Checked between
                checkpoints and advance windows; when exceeded the run stops
                with ``stopped_reason="wall-time"`` (the experiment layer's
                per-cell timeout enforcement).
        """
        budget = max_interactions if max_interactions is not None else default_interaction_budget(self.n)
        if budget < 0:
            raise ConfigurationError("max_interactions must be non-negative")
        cadence = check_interval if check_interval is not None else max(1, self.n)
        if cadence <= 0:
            raise ConfigurationError("check_interval must be positive")
        if confirm_checks < 1:
            raise ConfigurationError("confirm_checks must be at least 1")
        if convergence is not None and convergence_factory is not None:
            raise ConfigurationError(
                "pass either convergence or convergence_factory, not both"
            )
        if max_wall_time_s is not None and max_wall_time_s <= 0:
            raise ConfigurationError("max_wall_time_s must be positive")
        events = sorted(timeline, key=lambda event: event.at)

        backend = self._backend
        predicate = (
            convergence_factory(self) if convergence_factory is not None else convergence
        )
        tracker = ConvergenceTracker()
        started = time.perf_counter()
        deadline = started + max_wall_time_s if max_wall_time_s is not None else None
        stopped_reason = "budget"
        # Interaction index of the last evaluated checkpoint; guards against
        # double-recording the final configuration when the budget is aligned
        # with the check cadence.
        last_checked = 0
        event_index = 0
        segment_start = 0
        segment_event: Optional[Dict[str, Any]] = None  # record of the opening event
        timeline_records: List[Dict[str, Any]] = []
        segment_records: List[Dict[str, Any]] = []
        checks_before = 0  # checkpoint totals of already-closed segments
        satisfied_before = 0
        for hook in self.hooks:
            hook.on_start(self)

        def evaluate_checkpoint() -> bool:
            nonlocal last_checked
            checkpoint_started = time.perf_counter()
            for hook in self.hooks:
                hook.before_checkpoint(self)
            satisfied = predicate(backend.convergence_view())
            tracker.record(last_checked + 1, satisfied)
            last_checked = backend.interactions
            for hook in self.hooks:
                hook.on_checkpoint(self, satisfied)
            backend.tracer.add(
                "checkpoint", time.perf_counter() - checkpoint_started
            )
            return satisfied

        def close_segment() -> None:
            converged_here = tracker.currently_satisfied
            streak_start = tracker.convergence_interaction if converged_here else None
            record = {
                "start": segment_start,
                "end": backend.interactions,
                "n": self.n,
                "opened_by": segment_event["label"] if segment_event else None,
                "checks": tracker.checks,
                "converged": converged_here,
                "convergence_interaction": streak_start,
                "recovery_interactions": (
                    streak_start - segment_start
                    if converged_here and segment_event is not None
                    else None
                ),
            }
            segment_records.append(record)
            if segment_event is not None:
                segment_event["reconverged"] = converged_here
                segment_event["recovery_interactions"] = record["recovery_interactions"]

        while True:
            next_event_at: Optional[int] = None
            if event_index < len(events) and events[event_index].at < budget:
                next_event_at = events[event_index].at
            final_segment = next_event_at is None
            segment_end = budget if final_segment else next_event_at

            while backend.interactions < segment_end:
                if deadline is not None and time.perf_counter() >= deadline:
                    stopped_reason = "wall-time"
                    break
                if predicate is not None:
                    next_stop = min(
                        segment_end, (backend.interactions // cadence + 1) * cadence
                    )
                else:
                    next_stop = segment_end
                backend.advance_to(next_stop)
                if (
                    predicate is not None
                    and backend.interactions % cadence == 0
                    and backend.interactions != last_checked
                ):
                    satisfied = evaluate_checkpoint()
                    if (
                        final_segment
                        and stop_when_converged
                        and satisfied
                        and tracker.current_streak >= confirm_checks
                    ):
                        stopped_reason = "converged"
                        break
                if backend.terminal:
                    if final_segment:
                        stopped_reason = "terminal"
                        break
                    # The configuration is provably frozen until the next
                    # event re-activates it; skipping the window is exact.
                    # One synthetic checkpoint records the frozen state (and
                    # lets checkpoint-triggered hooks fire, which may undo
                    # the terminality).
                    backend.skip_to(segment_end)
                    if predicate is not None and backend.interactions != last_checked:
                        evaluate_checkpoint()
            if stopped_reason != "budget" or final_segment:
                break

            # Apply the pending timeline event and open a new segment.  One
            # extra checkpoint pins down the pre-event configuration so the
            # closing segment's convergence state is exact at the boundary.
            event = events[event_index]
            event_index += 1
            if predicate is not None and backend.interactions != last_checked:
                evaluate_checkpoint()
            close_segment()
            details = event.apply(self)
            event_record: Dict[str, Any] = {
                "at": event.at,
                "kind": event.kind,
                "label": event.label,
                "fired": True,
                "n_after": self.n,
                "details": details,
            }
            timeline_records.append(event_record)
            for hook in self.hooks:
                hook.on_timeline_event(self, event, event_record)
            if convergence_factory is not None:
                predicate = convergence_factory(self)
            checks_before += tracker.checks
            satisfied_before += tracker.satisfied_checks
            tracker = ConvergenceTracker()
            segment_start = event.at
            segment_event = event_record

        converged = False
        convergence_interaction: Optional[int] = None
        if predicate is not None:
            if backend.interactions != last_checked or tracker.checks == 0:
                final_satisfied = predicate(backend.convergence_view())
                tracker.record(last_checked + 1, final_satisfied)
            converged = tracker.currently_satisfied
            convergence_interaction = tracker.convergence_interaction if converged else None
            if converged and stopped_reason == "budget":
                stopped_reason = "converged-at-budget"
        close_segment()
        for event in events[event_index:]:
            timeline_records.append(
                {"at": event.at, "kind": event.kind, "label": event.label, "fired": False}
            )
        wall = time.perf_counter() - started

        for hook in self.hooks:
            hook.on_end(self)

        if require_convergence and predicate is not None and not converged:
            raise SimulationError(
                f"protocol {self.protocol.name!r} (n={self.n}, seed={self.seed!r}) did not "
                f"converge within {budget} interactions"
            )

        output_counts = backend.output_counts()
        extra: Dict[str, Any] = {
            "backend": backend.name,
            "transition_calls": backend.transition_calls,
            "convergence_checks": checks_before + tracker.checks,
            "satisfied_checks": satisfied_before + tracker.satisfied_checks,
            "participation_tracked": isinstance(backend, AgentBackend),
        }
        # Unified per-run trace: phase timers, runtime events, checkpoint
        # cadence, and (batch) geometric-skip efficiency plus the sampler
        # and accel records that previously lived as top-level blobs.
        telemetry: Dict[str, Any] = backend.tracer.as_dict()
        telemetry["backend"] = backend.name
        telemetry["checkpoints"] = {
            "count": checks_before + tracker.checks,
            "satisfied": satisfied_before + tracker.satisfied_checks,
            "cadence": cadence,
        }
        if isinstance(backend, BatchBackend):
            applied = backend.applied_events
            skipped = max(0, backend.interactions - applied)
            telemetry["skips"] = {
                "interactions": backend.interactions,
                "applied_events": applied,
                "skipped_interactions": skipped,
                "efficiency": (
                    round(skipped / backend.interactions, 6)
                    if backend.interactions
                    else 0.0
                ),
            }
            telemetry["sampler"] = backend.sampler_stats()
            telemetry["accel"] = backend.accel_info()
        extra["telemetry"] = telemetry
        if isinstance(backend, BatchBackend):
            # Deprecated aliases of telemetry["sampler"] / telemetry["accel"]
            # (the same objects), kept for pre-telemetry consumers.
            extra["sampler"] = telemetry["sampler"]
            extra["accel"] = telemetry["accel"]
        if events:
            extra["initial_n"] = self.initial_n
            extra["timeline"] = timeline_records
            extra["segments"] = segment_records
        if stopped_reason == "wall-time":
            extra["wall_time_exceeded"] = True
        if isinstance(backend, AgentBackend) or self.n <= OUTPUT_LIST_LIMIT:
            outputs = backend.outputs()
        else:
            outputs = []
            extra["outputs_omitted"] = True
        return SimulationResult(
            protocol_name=self.protocol.name,
            n=self.n,
            seed=_record_seed(self.seed),
            interactions=backend.interactions,
            converged=converged,
            convergence_interaction=convergence_interaction,
            stopped_reason=stopped_reason,
            outputs=outputs,
            output_counts=output_counts,
            distinct_states=backend.state_space.distinct_states,
            state_space=backend.state_space.as_dict(),
            min_participation=backend.min_participation,
            wall_time_s=wall,
            extra=extra,
        )


def simulate(
    protocol: Protocol,
    n: int,
    seed: SeedLike = 0,
    max_interactions: Optional[int] = None,
    convergence: Optional[OutputPredicate] = None,
    check_interval: Optional[int] = None,
    hooks: Iterable[Hook] = (),
    scheduler: Optional[Scheduler] = None,
    stop_when_converged: bool = True,
    confirm_checks: int = 3,
    require_convergence: bool = False,
    require_uniform: bool = False,
    backend: str = "agent",
    sampler: str = "auto",
    accel: str = "auto",
    timeline: Sequence[TimelineEvent] = (),
    convergence_factory: Optional[Callable[[Simulator], OutputPredicate]] = None,
    max_wall_time_s: Optional[float] = None,
) -> SimulationResult:
    """One-shot convenience wrapper: construct a :class:`Simulator` and run it.

    See :meth:`Simulator.run` for the meaning of the arguments and the
    ``backend`` / ``sampler`` / ``accel`` parameters of :class:`Simulator`
    for backend, batch-sampling-strategy, and acceleration-path selection.
    """
    simulator = Simulator(
        protocol,
        n,
        seed=seed,
        scheduler=scheduler,
        hooks=hooks,
        require_uniform=require_uniform,
        backend=backend,
        sampler=sampler,
        accel=accel,
    )
    return simulator.run(
        max_interactions=max_interactions,
        convergence=convergence,
        check_interval=check_interval,
        stop_when_converged=stop_when_converged,
        confirm_checks=confirm_checks,
        require_convergence=require_convergence,
        timeline=timeline,
        convergence_factory=convergence_factory,
        max_wall_time_s=max_wall_time_s,
    )

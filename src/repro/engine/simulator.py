"""The population-protocol simulator.

:class:`Simulator` executes the probabilistic population model: at each time
step an ordered pair of distinct agents is drawn (by default uniformly at
random) and the protocol's transition function is applied.  The simulator
tracks interaction counts, observed state-space size, and convergence of a
user-supplied output predicate, and reports everything in a
:class:`SimulationResult`.

A convenience function :func:`simulate` covers the common one-shot case.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from .convergence import ConvergenceTracker, OutputPredicate
from .errors import ConfigurationError, SimulationError, UniformityError
from .hooks import Hook
from .metrics import InteractionCounter, StateSpaceTracker
from .protocol import Protocol
from .rng import SeedLike, make_rng
from .scheduler import Scheduler, UniformRandomScheduler

__all__ = ["SimulationResult", "Simulator", "simulate", "default_interaction_budget"]


def default_interaction_budget(n: int, factor: float = 64.0, exponent: float = 2.0) -> int:
    """Return a generous default interaction budget of ``factor * n * log2(n)^exponent``.

    Protocol `Approximate` converges in ``O(n log^2 n)`` interactions, so the
    default budget (with ``exponent=2``) comfortably covers both of the
    paper's fast protocols at simulation scales.
    """
    if n < 2:
        raise ConfigurationError("population size must be at least 2")
    return int(factor * n * max(1.0, math.log2(n)) ** exponent)


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        protocol_name: Name of the protocol that was run.
        n: Population size.
        seed: Seed the run was started with.
        interactions: Total number of interactions executed.
        converged: Whether the convergence predicate held at the final
            checkpoint (and therefore from :attr:`convergence_interaction` on).
        convergence_interaction: First interaction of the final satisfied
            streak of convergence checks, or ``None`` if never satisfied.
        stopped_reason: Why the run ended (``"converged"``, ``"budget"``,
            ``"terminal"``).
        outputs: Final per-agent outputs.
        output_counts: Histogram of final outputs.
        distinct_states: Number of distinct state keys observed.
        state_space: Detailed state-space summary (per-field ranges).
        min_participation: Minimum number of interactions any agent took part in.
        wall_time_s: Wall-clock duration of the run in seconds.
        extra: Free-form protocol- or experiment-specific data.
    """

    protocol_name: str
    n: int
    seed: Optional[int]
    interactions: int
    converged: bool
    convergence_interaction: Optional[int]
    stopped_reason: str
    outputs: List[Any]
    output_counts: Counter
    distinct_states: int
    state_space: Dict[str, Any]
    min_participation: int
    wall_time_s: float
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def consensus_output(self) -> Optional[Any]:
        """The unique common output if all agents agree, else ``None``."""
        if len(self.output_counts) == 1:
            return next(iter(self.output_counts))
        return None

    @property
    def agreement_fraction(self) -> float:
        """Fraction of agents reporting the most common final output."""
        if not self.output_counts:
            return 0.0
        return self.output_counts.most_common(1)[0][1] / self.n

    def summary(self) -> Dict[str, Any]:
        """Return a compact JSON-friendly summary of the run."""
        return {
            "protocol": self.protocol_name,
            "n": self.n,
            "seed": self.seed,
            "interactions": self.interactions,
            "converged": self.converged,
            "convergence_interaction": self.convergence_interaction,
            "stopped_reason": self.stopped_reason,
            "consensus_output": self.consensus_output,
            "agreement_fraction": round(self.agreement_fraction, 4),
            "distinct_states": self.distinct_states,
            "wall_time_s": round(self.wall_time_s, 4),
        }


class Simulator:
    """Discrete-event simulator for population protocols.

    Args:
        protocol: The protocol to run.
        n: Population size (``>= 2``).
        seed: Base seed; the scheduler and the agents' synthetic coins derive
            independent sub-streams from it.
        scheduler: Interaction scheduler; defaults to the uniform random
            scheduler of the population model.
        hooks: Observers notified of simulation events.
        track_state_space: Whether to maintain the observed-state-space
            tracker (cheap, but can be disabled for micro-benchmarks).
        require_uniform: When ``True``, refuse to construct a simulator for a
            protocol that declares ``uniform = False``.
    """

    def __init__(
        self,
        protocol: Protocol,
        n: int,
        seed: SeedLike = 0,
        scheduler: Optional[Scheduler] = None,
        hooks: Iterable[Hook] = (),
        track_state_space: bool = True,
        require_uniform: bool = False,
    ) -> None:
        if n < 2:
            raise ConfigurationError("population size must be at least 2")
        if require_uniform and not protocol.uniform:
            raise UniformityError(
                f"protocol {protocol.name!r} is not uniform but uniformity was required"
            )
        self.protocol = protocol
        self.n = n
        self.seed = seed
        self.scheduler = scheduler if scheduler is not None else UniformRandomScheduler()
        self.hooks: List[Hook] = list(hooks)
        self._scheduler_rng = make_rng(seed, "scheduler")
        self._agent_rng = make_rng(seed, "agents")
        self.states: List[Any] = [protocol.initial_state(i) for i in range(n)]
        self.interactions = 0
        self.counter = InteractionCounter(n)
        self.track_state_space = track_state_space
        self.state_space = StateSpaceTracker()
        if track_state_space:
            for state in self.states:
                self.state_space.observe(protocol.state_key(state))

    # ------------------------------------------------------------ observers
    def outputs(self) -> List[Any]:
        """Return the current per-agent outputs."""
        output = self.protocol.output
        return [output(state) for state in self.states]

    def output_counts(self) -> Counter:
        """Return a histogram of the current per-agent outputs."""
        return Counter(self.outputs())

    def state_keys(self) -> List[Hashable]:
        """Return the current per-agent state keys."""
        key = self.protocol.state_key
        return [key(state) for state in self.states]

    def is_stable_configuration(self) -> bool:
        """Check structural stability of the current configuration.

        A configuration is stable when no ordered pair of currently-present
        state keys can change either participant.  This relies on the
        protocol overriding
        :meth:`repro.engine.protocol.Protocol.can_interaction_change`; for
        protocols using the conservative default this returns ``False``
        unless only a single state key remains and it is a fixed point.
        """
        keys = set(self.state_keys())
        can_change = self.protocol.can_interaction_change
        for a in keys:
            for b in keys:
                if a is b or a == b:
                    if can_change(a, b):
                        return False
                elif can_change(a, b) or can_change(b, a):
                    return False
        return True

    # ------------------------------------------------------------- stepping
    def step(self) -> Tuple[int, int]:
        """Execute a single interaction and return the (initiator, responder) pair."""
        initiator, responder = self.scheduler.next_pair(
            self.n, self._scheduler_rng, self.interactions
        )
        for hook in self.hooks:
            hook.before_interaction(self, initiator, responder)
        self.protocol.transition(
            self.states[initiator], self.states[responder], self._agent_rng
        )
        self.interactions += 1
        self.counter.record(initiator, responder)
        if self.track_state_space:
            key = self.protocol.state_key
            self.state_space.observe(key(self.states[initiator]))
            self.state_space.observe(key(self.states[responder]))
        for hook in self.hooks:
            hook.after_interaction(self, initiator, responder)
        return initiator, responder

    def run(
        self,
        max_interactions: Optional[int] = None,
        convergence: Optional[OutputPredicate] = None,
        check_interval: Optional[int] = None,
        stop_when_converged: bool = True,
        confirm_checks: int = 3,
        require_convergence: bool = False,
    ) -> SimulationResult:
        """Run the simulation and return a :class:`SimulationResult`.

        Args:
            max_interactions: Interaction budget.  Defaults to
                :func:`default_interaction_budget`.
            convergence: Predicate over the vector of agent outputs defining
                the desired configurations.  When omitted, the run simply
                exhausts its budget.
            check_interval: How often (in interactions) the predicate is
                evaluated.  Defaults to ``n`` (one parallel-time unit).
            stop_when_converged: Stop early once the predicate has held for
                ``confirm_checks`` consecutive checkpoints.
            confirm_checks: Number of consecutive satisfied checkpoints
                required before an early stop.
            require_convergence: Raise :class:`SimulationError` if the budget
                is exhausted without the predicate holding at the end.
        """
        budget = max_interactions if max_interactions is not None else default_interaction_budget(self.n)
        if budget < 0:
            raise ConfigurationError("max_interactions must be non-negative")
        cadence = check_interval if check_interval is not None else max(1, self.n)
        if cadence <= 0:
            raise ConfigurationError("check_interval must be positive")
        if confirm_checks < 1:
            raise ConfigurationError("confirm_checks must be at least 1")

        tracker = ConvergenceTracker()
        started = time.perf_counter()
        stopped_reason = "budget"
        for hook in self.hooks:
            hook.on_start(self)

        while self.interactions < budget:
            self.step()
            if convergence is not None and self.interactions % cadence == 0:
                satisfied = convergence(self.outputs())
                tracker.record(self.interactions - cadence + 1, satisfied)
                for hook in self.hooks:
                    hook.on_checkpoint(self, satisfied)
                if (
                    stop_when_converged
                    and satisfied
                    and tracker.current_streak >= confirm_checks
                ):
                    stopped_reason = "converged"
                    break

        converged = False
        convergence_interaction: Optional[int] = None
        if convergence is not None:
            final_satisfied = convergence(self.outputs())
            if stopped_reason != "converged" or not tracker.currently_satisfied:
                tracker.record(self.interactions, final_satisfied)
            converged = tracker.currently_satisfied and final_satisfied
            convergence_interaction = tracker.convergence_interaction if converged else None
            if converged and stopped_reason == "budget":
                stopped_reason = "converged-at-budget"
        wall = time.perf_counter() - started

        for hook in self.hooks:
            hook.on_end(self)

        if require_convergence and convergence is not None and not converged:
            raise SimulationError(
                f"protocol {self.protocol.name!r} (n={self.n}, seed={self.seed!r}) did not "
                f"converge within {budget} interactions"
            )

        outputs = self.outputs()
        return SimulationResult(
            protocol_name=self.protocol.name,
            n=self.n,
            seed=self.seed if isinstance(self.seed, int) else None,
            interactions=self.interactions,
            converged=converged,
            convergence_interaction=convergence_interaction,
            stopped_reason=stopped_reason,
            outputs=outputs,
            output_counts=Counter(outputs),
            distinct_states=self.state_space.distinct_states,
            state_space=self.state_space.as_dict(),
            min_participation=self.counter.min_participation,
            wall_time_s=wall,
        )


def simulate(
    protocol: Protocol,
    n: int,
    seed: SeedLike = 0,
    max_interactions: Optional[int] = None,
    convergence: Optional[OutputPredicate] = None,
    check_interval: Optional[int] = None,
    hooks: Iterable[Hook] = (),
    scheduler: Optional[Scheduler] = None,
    stop_when_converged: bool = True,
    confirm_checks: int = 3,
    require_convergence: bool = False,
    require_uniform: bool = False,
) -> SimulationResult:
    """One-shot convenience wrapper: construct a :class:`Simulator` and run it.

    See :meth:`Simulator.run` for the meaning of the arguments.
    """
    simulator = Simulator(
        protocol,
        n,
        seed=seed,
        scheduler=scheduler,
        hooks=hooks,
        require_uniform=require_uniform,
    )
    return simulator.run(
        max_interactions=max_interactions,
        convergence=convergence,
        check_interval=check_interval,
        stop_when_converged=stop_when_converged,
        confirm_checks=confirm_checks,
        require_convergence=require_convergence,
    )

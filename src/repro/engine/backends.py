"""Simulation backends: per-agent and batched configuration-vector execution.

The population model is a Markov chain over *configurations* — multisets of
agent states.  Two execution strategies for that chain are provided:

* :class:`AgentBackend` materialises one mutable state object per agent and
  executes one Python-level ``transition()`` call per interaction.  It is the
  reference implementation, supports arbitrary schedulers, per-agent hooks
  and per-agent participation accounting, and is exact at the agent level.

* :class:`BatchBackend` collapses the population into a histogram
  ``Counter[state_key] -> count`` (the configuration-as-multiset view of the
  population Markov chain) and samples *batches* of interactions at once:
  the number of configuration-preserving interactions before the next
  configuration-changing one is drawn from a geometric distribution over the
  active pair-type weights, and the transition is then applied once per pair
  *type* (memoised for protocols declaring
  :attr:`~repro.engine.protocol.Protocol.deterministic_transitions`) instead
  of once per agent.  Conditioned on the configuration, the resulting chain
  is distributed exactly as the agent-level chain marginalised over agent
  identities, because agents are anonymous and the uniform scheduler is
  exchangeable.

The batch backend requires the uniform random scheduler and a protocol whose
behaviour depends on states only through their keys (true for every protocol
in this library; state keys encode the full state).  Protocols without a
native :meth:`~repro.engine.protocol.Protocol.delta_key` are lifted to key
space by :class:`LiftedKeyTransitions` using representative state objects.
"""

from __future__ import annotations

import math
from collections import Counter
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

import abc
import random

from ..obs.trace import RunTracer
from .errors import ConfigurationError, SimulationError
from .metrics import AggregateInteractionCounter, InteractionCounter, StateSpaceTracker
from .protocol import Protocol
from .samplers import (
    SAMPLER_NAMES,
    AliasSampler,
    AliasTable,
    FenwickSampler,
    WeightedSampler,
    make_sampler,
)
from .vectorized import (
    ACCEL_NAMES,
    AccelCapacityError,
    DenseBlockKernel,
    FactorisedPairKernel,
    numpy_available,
    resolve_accel,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for typing only
    from .scheduler import Scheduler
    from .simulator import Simulator

__all__ = [
    "Backend",
    "AgentBackend",
    "BatchBackend",
    "LiftedKeyTransitions",
    "AliasTable",
    "BACKEND_NAMES",
    "SAMPLER_NAMES",
    "ACCEL_NAMES",
]

#: Valid values for the ``backend=`` argument of the simulator.
BACKEND_NAMES = ("agent", "batch", "auto")


class LiftedKeyTransitions:
    """Lift a mutating ``transition()`` to pure key space via representatives.

    One representative state object is kept per observed key; a key-level
    transition copies the two representatives, applies the protocol's
    mutating ``transition()``, and returns (registering) the resulting keys.
    This is exact whenever the protocol's behaviour depends on a state only
    through its key — which holds for every protocol in this library, since
    state keys encode the complete state.

    Requires a working
    :meth:`~repro.engine.protocol.Protocol.copy_state`.
    """

    def __init__(self, protocol: Protocol) -> None:
        self.protocol = protocol
        self._representatives: Dict[Hashable, Any] = {}

    def register(self, state: Any) -> Hashable:
        """Record ``state`` as the representative of its key; return the key."""
        key = self.protocol.state_key(state)
        if key not in self._representatives:
            self._representatives[key] = self.protocol.copy_state(state)
        return key

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        """Key-level transition implemented on copies of the representatives."""
        protocol = self.protocol
        state_a = protocol.copy_state(self._representatives[key_a])
        state_b = protocol.copy_state(self._representatives[key_b])
        protocol.transition(state_a, state_b, rng)
        return self.register(state_a), self.register(state_b)

    def output_key(self, key: Hashable) -> Any:
        """Output of an agent in the state represented by ``key``."""
        return self.protocol.output(self._representatives[key])

    def knows(self, key: Hashable) -> bool:
        """Whether a representative state exists for ``key``."""
        return key in self._representatives


class Backend(abc.ABC):
    """Execution strategy for the population Markov chain.

    A backend owns the population representation, the interaction counter,
    and the observed-state-space tracker, and advances the chain on behalf
    of :class:`~repro.engine.simulator.Simulator`.  All observers are
    histogram-first: :meth:`state_key_counts` and :meth:`output_counts` are
    cheap for both backends, while per-agent views may be synthesised from
    the histogram (batch) or read off directly (agent).
    """

    name: str = ""

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator
        self.protocol: Protocol = simulator.protocol
        self.n: int = simulator.n
        #: Next agent id handed to ``Protocol.initial_state`` when agents
        #: join a running population (ids never repeat within a run).
        self._next_agent_id: int = self.n
        #: Number of population-changing operations (join/leave/restart)
        #: applied so far.
        self.population_changes: int = 0
        self.interactions: int = 0
        #: Number of Python-level transition invocations actually executed
        #: (``transition()`` for the agent backend, ``delta_key()`` for the
        #: batch backend; memoised applications do not count).
        self.transition_calls: int = 0
        #: Set when the configuration has provably reached a fixed point
        #: (no ordered pair of present keys can change it).
        self.terminal: bool = False
        self.state_space = StateSpaceTracker()
        #: Per-run phase timers and runtime event log; folded into
        #: ``SimulationResult.extra["telemetry"]`` by the simulator.
        #: Tracing reads ``perf_counter`` only — never an RNG stream — so
        #: instrumented runs stay stream-identical.
        self.tracer = RunTracer()

    # -------------------------------------------------------------- stepping
    @abc.abstractmethod
    def advance_to(self, target: int) -> None:
        """Advance the chain until ``interactions == target`` or terminal."""

    def skip_to(self, target: int) -> None:
        """Jump the interaction counter forward without simulating.

        Exact only while the configuration provably cannot change (the batch
        backend's :attr:`terminal` state); the simulator uses it to fast-
        forward a terminal configuration to the next timeline event, which
        may then re-activate the population.
        """
        if target < self.interactions:
            raise SimulationError(
                f"cannot skip backwards from {self.interactions} to {target}"
            )
        self.interactions = target

    # ------------------------------------------------- population dynamics
    def fresh_initial_state(self) -> Any:
        """Initial state of a brand-new agent (consumes a never-used id).

        Protocols whose ``initial_state`` depends on the agent id (epidemic
        sources, designated piles) hand fresh agents the "blank" state of a
        late agent — the natural semantics for joiners and reset victims.
        """
        state = self.protocol.initial_state(self._next_agent_id)
        self._next_agent_id += 1
        return state

    @abc.abstractmethod
    def join(self, count: int) -> Dict[str, Any]:
        """Add ``count`` fresh agents (in their protocol initial state).

        New agents receive never-before-used agent ids, so protocols whose
        ``initial_state`` depends on the id (e.g. epidemic sources) hand
        joiners the "blank" state of a late agent.  Returns a JSON-friendly
        record of the change.
        """

    @abc.abstractmethod
    def leave(self, count: int, rng: random.Random, min_remaining: int = 2) -> Dict[str, Any]:
        """Remove ``count`` uniformly random distinct agents.

        Raises :class:`ConfigurationError` when fewer than ``min_remaining``
        agents would remain (the population model needs two).
        """

    def replace(self, count: int, rng: random.Random) -> Dict[str, Any]:
        """Crash-and-rejoin churn: ``count`` random agents leave, ``count`` join.

        The joiners are fresh agents (initial state, new ids); the population
        size is unchanged.
        """
        left = self.leave(count, rng, min_remaining=0)
        joined = self.join(count)
        return {"replaced": count, "left": left, "joined": joined}

    @abc.abstractmethod
    def restart_population(self) -> Dict[str, Any]:
        """Reset every agent to the initial configuration at the current size.

        This is the recovery action of the paper's hybrid protocols after a
        detected error, applied population-wide: the run continues as a fresh
        execution over the *current* ``n`` (agent ids ``0..n-1``), which is
        what lets the counting protocols re-count after churn.
        """

    def _check_population(self, count: int) -> None:
        if count < 0:
            raise ConfigurationError("population change count must be non-negative")

    # ------------------------------------------------------------- observers
    @abc.abstractmethod
    def state_key_counts(self) -> Counter:
        """Histogram of current state keys (the configuration vector)."""

    @abc.abstractmethod
    def output_counts(self) -> Counter:
        """Histogram of current agent outputs."""

    @abc.abstractmethod
    def outputs(self) -> List[Any]:
        """Per-agent outputs (order is meaningful only for the agent backend)."""

    @abc.abstractmethod
    def convergence_view(self) -> Any:
        """Value handed to convergence predicates.

        The agent backend passes the per-agent output list (full backwards
        compatibility with sequence predicates); the batch backend passes the
        output histogram, which the built-in predicates in
        :mod:`repro.engine.convergence` also accept.
        """

    def state_keys(self) -> List[Hashable]:
        """Current state keys, expanded to one entry per agent."""
        expanded: List[Hashable] = []
        for key, count in self.state_key_counts().items():
            expanded.extend([key] * count)
        return expanded

    @property
    def min_participation(self) -> int:
        """Minimum per-agent participation (0 when not tracked)."""
        return 0


class AgentBackend(Backend):
    """The reference per-agent execution strategy (one object per agent)."""

    name = "agent"

    def __init__(
        self,
        simulator: "Simulator",
        scheduler: "Scheduler",
        scheduler_rng: random.Random,
        agent_rng: random.Random,
        track_state_space: bool = True,
    ) -> None:
        super().__init__(simulator)
        self.scheduler = scheduler
        self._scheduler_rng = scheduler_rng
        self._agent_rng = agent_rng
        self.states: List[Any] = [self.protocol.initial_state(i) for i in range(self.n)]
        self.counter = InteractionCounter(self.n)
        self.track_state_space = track_state_space
        if track_state_space:
            key = self.protocol.state_key
            for state in self.states:
                self.state_space.observe(key(state))

    def step(self) -> Tuple[int, int]:
        """Execute one interaction; return the (initiator, responder) pair."""
        simulator = self.simulator
        tracer = self.tracer
        tic = perf_counter()
        initiator, responder = self.scheduler.next_pair(
            self.n, self._scheduler_rng, self.interactions
        )
        tracer.add("sampling", perf_counter() - tic)
        for hook in simulator.hooks:
            hook.before_interaction(simulator, initiator, responder)
        tic = perf_counter()
        self.protocol.transition(
            self.states[initiator], self.states[responder], self._agent_rng
        )
        tracer.add("transition", perf_counter() - tic)
        self.interactions += 1
        self.transition_calls += 1
        self.counter.record(initiator, responder)
        if self.track_state_space:
            key = self.protocol.state_key
            self.state_space.observe(key(self.states[initiator]))
            self.state_space.observe(key(self.states[responder]))
        for hook in simulator.hooks:
            hook.after_interaction(simulator, initiator, responder)
        return initiator, responder

    def advance_to(self, target: int) -> None:
        while self.interactions < target:
            self.step()

    def state_key_counts(self) -> Counter:
        key = self.protocol.state_key
        return Counter(key(state) for state in self.states)

    def outputs(self) -> List[Any]:
        output = self.protocol.output
        return [output(state) for state in self.states]

    def output_counts(self) -> Counter:
        return Counter(self.outputs())

    def convergence_view(self) -> List[Any]:
        return self.outputs()

    def state_keys(self) -> List[Hashable]:
        key = self.protocol.state_key
        return [key(state) for state in self.states]

    @property
    def min_participation(self) -> int:
        return self.counter.min_participation

    # ------------------------------------------------- population dynamics
    def join(self, count: int) -> Dict[str, Any]:
        self._check_population(count)
        protocol = self.protocol
        for _ in range(count):
            state = self.fresh_initial_state()
            self.states.append(state)
            self.counter.add_agent()
            if self.track_state_space:
                self.state_space.observe(protocol.state_key(state))
        self.n += count
        self.population_changes += 1
        return {"joined": count, "n": self.n}

    def leave(self, count: int, rng: random.Random, min_remaining: int = 2) -> Dict[str, Any]:
        self._check_population(count)
        if self.n - count < min_remaining:
            raise ConfigurationError(
                f"cannot remove {count} of {self.n} agents; at least "
                f"{min_remaining} must remain"
            )
        # Swap-removal in descending index order keeps pending indices valid;
        # the per-agent participation counters follow the same moves.
        for index in sorted(rng.sample(range(self.n), count), reverse=True):
            self.states[index] = self.states[-1]
            self.states.pop()
            self.counter.remove_agent(index)
        self.n -= count
        self.population_changes += 1
        return {"left": count, "n": self.n}

    def restart_population(self) -> Dict[str, Any]:
        protocol = self.protocol
        self.states = [protocol.initial_state(i) for i in range(self.n)]
        if self.track_state_space:
            key = protocol.state_key
            for state in self.states:
                self.state_space.observe(key(state))
        self.population_changes += 1
        return {"restarted": self.n, "n": self.n}

    # ----------------------------------------------------- failure injection
    def corrupt_agents(
        self,
        victims: int,
        rewrite: Any,
        rng: random.Random,
    ) -> int:
        """Corrupt ``victims`` distinct agents' state objects.

        The agent-level analogue of
        :meth:`BatchBackend.corrupt_histogram`: ``rewrite(state, rng)``
        returns the victim's replacement state (or ``None`` to keep the —
        possibly mutated in place — original object).  Returns the number of
        victims whose state *key* actually changed, matching the batch
        backend's accounting so scenario records compare across backends.
        """
        if victims < 0:
            raise ConfigurationError("victims must be non-negative")
        if victims > self.n:
            raise ConfigurationError(
                f"cannot corrupt {victims} distinct agents in a population of {self.n}"
            )
        key = self.protocol.state_key
        changed = 0
        for index in rng.sample(range(self.n), victims):
            old_key = key(self.states[index])
            new_state = rewrite(self.states[index], rng)
            if new_state is not None:
                self.states[index] = new_state
            new_key = key(self.states[index])
            if new_key != old_key:
                changed += 1
            if self.track_state_space:
                self.state_space.observe(new_key)
        return changed


class BatchBackend(Backend):
    """Batched configuration-vector execution of the population chain.

    The configuration is a histogram ``counts: key -> multiplicity``.  Let
    ``T = n (n - 1)`` be the number of ordered agent pairs and, for each
    ordered key pair ``(a, b)`` that
    :meth:`~repro.engine.protocol.Protocol.can_interaction_change` marks as
    able to change the configuration, let ``w(a, b) = c_a c_b`` (or
    ``c_a (c_a - 1)`` when ``a == b``) be the number of ordered agent pairs
    realising it.  One *event loop iteration* then

    1. draws the number of configuration-preserving interactions preceding
       the next configuration-changing one from ``Geometric(W / T)`` where
       ``W = sum w(a, b)`` — these are skipped in O(1);
    2. picks the active ordered pair type with probability ``w(a, b) / W``;
    3. applies :meth:`~repro.engine.protocol.Protocol.delta_key` once for
       that *type* (memoised when the protocol declares deterministic
       transitions) and updates the histogram.

    Pair-type weights are maintained incrementally: an event changes the
    multiplicities of at most four keys, so only the pair weights involving
    those keys are recomputed (``O(K)`` per event for ``K`` distinct keys,
    instead of ``O(K^2)``).  When ``W == 0`` the configuration is a fixed
    point and the backend reports :attr:`~Backend.terminal`.

    Truncating a geometric skip at an interaction budget or checkpoint
    boundary and re-sampling later is exact by memorylessness.

    Two sampling regimes are used, chosen at construction:

    * **Pruning** — the protocol overrides ``can_interaction_change``, so the
      active-pair weight table above is worth maintaining: skips are long and
      the active pair type is drawn from a pluggable
      :class:`~repro.engine.samplers.WeightedSampler` over the table.
    * **Dense** — the protocol keeps the conservative default, every ordered
      pair is active (``W == T``, no skipping is ever possible), and the
      O(K^2) pair table would be pure overhead.  The two participants' keys
      are instead drawn from a :class:`~repro.engine.samplers.WeightedSampler`
      over the key histogram, which realises the uniform ordered-pair law
      exactly.  This is the regime of the composed counting protocols, whose
      no-op analysis is out of reach of a per-pair predicate.

    The ``sampler`` knob picks the strategy for whichever regime is active
    (see :data:`~repro.engine.samplers.SAMPLER_NAMES`): ``"scan"`` /
    ``"alias"`` / ``"fenwick"`` force one, while ``"auto"`` (default) starts
    on the alias strategy and swaps in the Fenwick tree permanently once the
    alias table *thrashes* — is invalidated faster than it serves draws, the
    signature of a churning pair table (``backup-exact`` at ``n >= 10^4``,
    scenario churn).  The final strategy and its counters are reported by
    :meth:`sampler_stats` (surfaced as ``SimulationResult.extra["sampler"]``).

    The ``accel`` knob selects the hot-loop implementation (see
    :mod:`repro.engine.vectorized`): ``"auto"`` (default) uses the NumPy
    kernels when NumPy is importable *and* the sampler knob was left on
    ``"auto"`` — the dense regime then draws participant pairs
    in vectorised blocks, and the pruning regime replaces the materialised
    pair-weight table (and its O(changed * K) per-event
    :meth:`_update_pair_weights` walk) with the factorised
    ``w(a, b) = c_a * c_b`` row/column-product kernel, whose count updates
    are O(changed).  ``"python"`` forces the pure-Python path unchanged;
    ``"numpy"`` makes the acceleration a hard requirement.  The active path
    is reported by :meth:`accel_info` (surfaced as
    ``SimulationResult.extra["accel"]``); a protocol whose live key set
    outgrows the factorised kernel's activity matrix falls back to the
    Python path mid-run and records the reason there.
    """

    name = "batch"

    def __init__(
        self,
        simulator: "Simulator",
        scheduler_rng: random.Random,
        agent_rng: random.Random,
        track_state_space: bool = True,
        sampler: str = "auto",
        accel: str = "auto",
    ) -> None:
        super().__init__(simulator)
        protocol = self.protocol
        self._pair_rng = scheduler_rng
        self._agent_rng = agent_rng
        self.track_state_space = track_state_space
        self._lifted: Optional[LiftedKeyTransitions] = None
        if protocol.supports_key_transitions():
            self._delta = protocol.delta_key
            self._output_key = protocol.output_key
            self.counts: Counter = Counter(protocol.initial_key_counts(self.n))
        else:
            lifted = LiftedKeyTransitions(protocol)
            self._lifted = lifted
            self._delta = lifted.delta_key
            self._output_key = lifted.output_key
            counts: Counter = Counter()
            for agent_id in range(self.n):
                counts[lifted.register(protocol.initial_state(agent_id))] += 1
            self.counts = counts
        total = sum(self.counts.values())
        if total != self.n:
            raise SimulationError(
                f"initial key histogram covers {total} agents, expected {self.n}"
            )
        self.counter = AggregateInteractionCounter(self.n)
        if track_state_space:
            for key in self.counts:
                self.state_space.observe(key)
        self._deterministic = protocol.deterministic_transitions
        self._delta_cache: Dict[Tuple[Hashable, Hashable], Tuple[Hashable, Hashable]] = {}
        self._can_change_cache: Dict[Tuple[Hashable, Hashable], bool] = {}
        self._output_cache: Dict[Hashable, Any] = {}
        # Two sampling regimes (see class docstring).  A protocol that keeps
        # the conservative default ``can_interaction_change`` marks *every*
        # ordered pair active, so the pair-weight table would cost O(K^2)
        # upkeep for zero skipping; such protocols use the dense regime,
        # which samples the two participants straight from the key histogram.
        self._prunes = (
            type(protocol).can_interaction_change is not Protocol.can_interaction_change
        )
        if sampler not in SAMPLER_NAMES:
            raise ConfigurationError(
                f"unknown sampler {sampler!r}; expected one of {SAMPLER_NAMES}"
            )
        #: Requested strategy knob; ``"auto"`` enables the thrash-driven
        #: alias-to-Fenwick switch.
        self.sampler_mode = sampler
        #: Requested acceleration knob (``accel_active`` is the live path).
        self.accel_mode = accel
        #: Resolved acceleration path: ``"numpy"`` or ``"python"``.  May
        #: flip to ``"python"`` mid-run when a kernel outgrows its capacity
        #: or the dense blocks thrash.
        self.accel_active = resolve_accel(accel, sampler)
        self._accel_fallback: Optional[str] = None
        #: In the pruning regime under ``accel="auto"`` the factorised
        #: kernel only *engages* once the Python alias table thrashes (the
        #: PR-4 churn signal): vectorisation pays off exactly where the
        #: pair table churns and is wide (the backup counting protocols),
        #: and loses on the tiny or static tables where the alias strategy
        #: is unbeatable (epidemic's single active pair, static-table).
        self._accel_pending = False
        #: Stats snapshots of samplers retired by the ``auto`` switch.
        self._retired_samplers: List[Dict[str, Any]] = []
        #: Configuration-changing events actually applied; the complement
        #: of ``interactions`` measures the geometric-skip efficiency.
        self.applied_events: int = 0
        # Pruning regime: sampler over active pair types.  Dense regime:
        # sampler over the key histogram.  Only the active regime's sampler
        # is materialised.
        self._pair_sampler: Optional[WeightedSampler] = None
        self._count_sampler: Optional[WeightedSampler] = None
        # NumPy kernels (accel path); at most one is live, matching the regime.
        self._pair_kernel: Optional[FactorisedPairKernel] = None
        self._dense_kernel: Optional[DenseBlockKernel] = None
        # Active ordered pair types and their integer weights; rebuilt lazily
        # in full once, then maintained incrementally per event.
        self._pair_weights: Dict[Tuple[Hashable, Hashable], int] = {}
        self._active_weight = 0
        if self.accel_active == "numpy":
            if self._prunes and accel != "numpy":
                # accel="auto": arm the kernel, engage on alias thrash.
                self._accel_pending = True
            else:
                try:
                    if self._prunes:
                        self._pair_kernel = FactorisedPairKernel(
                            dict(self.counts),
                            self._can_change,
                            seed=self._kernel_seed(),
                        )
                    else:
                        self._dense_kernel = DenseBlockKernel(
                            dict(self.counts), seed=self._kernel_seed()
                        )
                except AccelCapacityError as error:
                    self._note_fallback(str(error))
        if self._pair_kernel is None and self._dense_kernel is None:
            if self._prunes:
                self._rebuild_pair_weights()
            else:
                self._count_sampler = make_sampler(sampler, self.counts)
            if not self._accel_pending:
                self.accel_active = "python"
        if not self._prunes:
            # An initial configuration may already be the provable fixed
            # point (single key, deterministic no-op self-interaction).
            self._check_dense_fixed_point()

    # ------------------------------------------------------------ pair table
    def _can_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        cached = self._can_change_cache.get((key_a, key_b))
        if cached is None:
            cached = bool(self.protocol.can_interaction_change(key_a, key_b))
            self._can_change_cache[(key_a, key_b)] = cached
        return cached

    def _pair_weight(self, key_a: Hashable, key_b: Hashable) -> int:
        count_a = self.counts.get(key_a, 0)
        if key_a == key_b:
            return count_a * (count_a - 1)
        return count_a * self.counts.get(key_b, 0)

    #: Below this many distinct keys a full O(K^2) table rebuild (with lower
    #: constants) beats the O(changed * K) incremental update.
    _REBUILD_THRESHOLD = 16

    def _rebuild_pair_weights(self) -> None:
        """Recompute the full active-pair weight table (O(K^2), inlined hot path)."""
        counts = self.counts
        can_cache = self._can_change_cache
        can_change = self.protocol.can_interaction_change
        pair_weights: Dict[Tuple[Hashable, Hashable], int] = {}
        total = 0
        items = list(counts.items())
        for key_a, count_a in items:
            for key_b, count_b in items:
                if key_a == key_b:
                    weight = count_a * (count_a - 1)
                else:
                    weight = count_a * count_b
                if weight <= 0:
                    continue
                pair = (key_a, key_b)
                changeable = can_cache.get(pair)
                if changeable is None:
                    changeable = bool(can_change(key_a, key_b))
                    can_cache[pair] = changeable
                if changeable:
                    pair_weights[pair] = weight
                    total += weight
        self._pair_weights = pair_weights
        self._active_weight = total
        if self._pair_sampler is None:
            self._pair_sampler = make_sampler(self.sampler_mode, pair_weights)
        else:
            # The auto switch is sticky: a rebuild refreshes whatever
            # strategy is currently active rather than reverting to alias.
            self._pair_sampler.rebuild(pair_weights)

    def _update_pair_weights(self, changed: Tuple[Hashable, ...]) -> None:
        """Refresh pair weights after an event changed the ``changed`` keys.

        Small configurations are rebuilt wholesale (lower constants); larger
        ones are updated incrementally, touching only the O(changed * K)
        ordered pairs that involve a changed key — with the sampler notified
        per changed pair, which is where the Fenwick strategy's O(log P)
        point updates pay off.
        """
        if len(self.counts) <= self._REBUILD_THRESHOLD:
            self._rebuild_pair_weights()
            return
        changed_set = set(changed)
        neighbours = set(self.counts) | changed_set
        pair_weights = self._pair_weights
        sampler = self._pair_sampler
        total = self._active_weight
        for key_d in changed_set:
            for key_x in neighbours:
                pairs = (
                    ((key_d, key_d),)
                    if key_x == key_d
                    else ((key_d, key_x), (key_x, key_d))
                )
                for pair in pairs:
                    old = pair_weights.pop(pair, 0)
                    total -= old
                    weight = self._pair_weight(*pair)
                    if weight > 0 and self._can_change(*pair):
                        pair_weights[pair] = weight
                        total += weight
                        if weight != old:
                            sampler.update(pair, weight)
                    elif old:
                        sampler.update(pair, 0)
        self._active_weight = total

    # -------------------------------------------------------------- stepping
    def advance_to(self, target: int) -> None:
        if self._pair_kernel is not None:
            self._advance_pruning_numpy(target)
            return
        if self._dense_kernel is not None:
            self._advance_dense_numpy(target)
            return
        ordered_pairs = self.n * (self.n - 1)
        log = math.log
        log1p = math.log1p
        pair_rng = self._pair_rng
        prunes = self._prunes
        while self.interactions < target and not self.terminal:
            if self._accel_pending:
                sampler = self._pair_sampler
                if isinstance(sampler, AliasSampler) and sampler.thrashing:
                    self._engage_pair_kernel()
                    if self._pair_kernel is not None:
                        self._advance_pruning_numpy(target)
                        return
            weight = self._active_weight if prunes else ordered_pairs
            if weight <= 0:
                self.terminal = True
                break
            if weight >= ordered_pairs:
                skip = 0
            else:
                # Number of configuration-preserving interactions before the
                # next configuration-changing one: Geometric(p), p = W / T.
                uniform = 1.0 - pair_rng.random()  # in (0, 1]
                if uniform >= 1.0:
                    skip = 0
                else:
                    skip = int(log(uniform) / log1p(-weight / ordered_pairs))
            remaining = target - self.interactions
            if skip >= remaining:
                # The whole window is configuration-preserving; the pending
                # active event is re-sampled next call (memorylessness).
                self.interactions = target
                break
            self.interactions += skip + 1
            self._apply_event()
        self.counter.total = self.interactions

    def _retire_sampler(
        self, stats: Dict[str, Any], regime: str, retired_by: str
    ) -> None:
        """Snapshot a sampler/kernel being replaced mid-run.

        Every retirement — thrash swap, accel engagement, accel fallback —
        funnels through here, so no replacement path can drop the counters
        that triggered it (the bug when ``auto`` swapped twice in one run),
        and each snapshot is stamped with why and when it was retired.
        """
        stats["regime"] = regime
        stats["retired_by"] = retired_by
        stats["retired_at"] = self.interactions
        self._retired_samplers.append(stats)
        self.tracer.note_event(
            "sampler-retired",
            at=self.interactions,
            strategy=stats.get("strategy", stats.get("kernel")),
            regime=regime,
            reason=retired_by,
        )

    def _maybe_switch_on_thrash(
        self, sampler: WeightedSampler, weights: Dict[Any, int], regime: str
    ) -> WeightedSampler:
        """Swap a thrashing alias sampler for a Fenwick tree (``auto`` only).

        The alias strategy reports :attr:`~repro.engine.samplers.AliasSampler.
        thrashing` once tables stop amortising (churn on nearly every draw);
        under the ``auto`` knob that is the signal to move to O(log P) point
        updates permanently.  The retired sampler's counters are kept for
        :meth:`sampler_stats`.
        """
        if (
            self.sampler_mode == "auto"
            and isinstance(sampler, AliasSampler)
            and sampler.thrashing
        ):
            self._retire_sampler(sampler.stats(), regime, "thrash")
            self.tracer.note_event(
                "sampler-swap",
                at=self.interactions,
                regime=regime,
                **{"from": "alias", "to": "fenwick"},
            )
            sampler = FenwickSampler(weights)
            if regime == "pruning":
                self._pair_sampler = sampler
            else:
                self._count_sampler = sampler
        return sampler

    def _sample_pair_type(self) -> Tuple[Hashable, Hashable]:
        """Sample one active ordered pair type (pruning regime)."""
        sampler = self._maybe_switch_on_thrash(
            self._pair_sampler, self._pair_weights, "pruning"
        )
        return sampler.sample(self._pair_rng)

    def _sample_dense_pair(self) -> Tuple[Hashable, Hashable]:
        """Sample the ordered key pair of a uniform interaction (dense regime).

        Exactly the uniform law over ordered pairs of distinct agents read at
        key level: the initiator's key is drawn with probability ``c_a / n``
        and the responder's with ``(c_b - [a = b]) / (n - 1)``, implemented
        by rejection against the plain ``c_b / n`` proposal.
        """
        counts = self.counts
        if len(counts) == 1:
            key = next(iter(counts))
            return key, key
        sampler = self._maybe_switch_on_thrash(
            self._count_sampler, counts, "dense"
        )
        rng = self._pair_rng
        key_a = sampler.sample(rng)
        count_a = counts[key_a]
        while True:
            key_b = sampler.sample(rng)
            if key_b != key_a:
                return key_a, key_b
            # Same key drawn: one of its count_a agents is the initiator, so
            # accept with probability (count_a - 1) / count_a.
            if count_a > 1 and rng.random() * count_a < count_a - 1:
                return key_a, key_b

    def _apply_transition(
        self, key_a: Hashable, key_b: Hashable
    ) -> Tuple[Hashable, Hashable, Tuple[Hashable, ...]]:
        """Apply one pair type's transition to the histogram.

        Shared by the Python and NumPy event loops: evaluates (memoising
        when deterministic) ``delta_key``, updates the histogram and the
        state-space tracker when the configuration changed, and returns
        ``(new_a, new_b, changed)`` where ``changed`` is the (possibly
        overlapping) 4-tuple of touched keys, or ``()`` when the interaction
        was configuration-preserving.  Weight-structure maintenance is the
        caller's job — it differs per path.
        """
        if self._deterministic:
            result = self._delta_cache.get((key_a, key_b))
            if result is None:
                result = self._delta(key_a, key_b, self._agent_rng)
                self.transition_calls += 1
                self._delta_cache[(key_a, key_b)] = result
        else:
            result = self._delta(key_a, key_b, self._agent_rng)
            self.transition_calls += 1
        new_a, new_b = result
        if (new_a == key_a and new_b == key_b) or (
            new_a == key_b and new_b == key_a
        ):
            return new_a, new_b, ()
        counts = self.counts
        counts[key_a] -= 1
        counts[key_b] -= 1
        counts[new_a] += 1
        counts[new_b] += 1
        for key in (key_a, key_b):
            if counts.get(key) == 0:
                del counts[key]
        if self.track_state_space:
            self.state_space.observe(new_a)
            self.state_space.observe(new_b)
        return new_a, new_b, (key_a, key_b, new_a, new_b)

    def _apply_event(self) -> None:
        """Sample one interaction's pair type and apply its transition.

        In the pruning regime "active" means :meth:`can_interaction_change`
        could not rule out a configuration change; in the dense regime every
        pair is active, so the applied transition may turn out to be a no-op
        either way.
        """
        tracer = self.tracer
        tic = perf_counter()
        if self._prunes:
            key_a, key_b = self._sample_pair_type()
        else:
            key_a, key_b = self._sample_dense_pair()
        toc = perf_counter()
        tracer.add("sampling", toc - tic)
        new_a, new_b, changed = self._apply_transition(key_a, key_b)
        tic = perf_counter()
        tracer.add("transition", tic - toc)
        self.applied_events += 1
        if changed:
            if self._prunes:
                self._update_pair_weights(changed)
            else:
                sampler = self._count_sampler
                counts = self.counts
                for key in changed:
                    sampler.update(key, counts.get(key, 0))
                self._check_dense_fixed_point()
            tracer.add("pair_weights", perf_counter() - tic)
        simulator = self.simulator
        if simulator.hooks:
            for hook in simulator.hooks:
                hook.on_batch_event(simulator, key_a, key_b, new_a, new_b)

    # --------------------------------------------------- NumPy event loops
    def _kernel_seed(self) -> int:
        """Seed for a kernel's dedicated NumPy generator.

        Drawn from the run's scheduler stream at the moment a kernel is
        built — never on the pure-Python path, so ``accel="python"`` runs
        stay stream-identical to earlier releases.
        """
        return self._pair_rng.getrandbits(64)

    def _note_fallback(self, reason: str) -> None:
        self._accel_fallback = reason
        self._accel_pending = False
        self.accel_active = "python"
        self.tracer.note_event("accel-fallback", at=self.interactions, reason=reason)

    def _engage_pair_kernel(self) -> None:
        """Swap the thrashing Python pair structures for the NumPy kernel.

        The ``accel="auto"`` engagement point: the alias table reported
        thrash, so the pair table is churning — the exact workload where
        the factorised kernel's O(changed) updates beat the O(changed * K)
        Python walk.  The retired Python sampler's counters are kept for
        :meth:`sampler_stats`, mirroring the alias-to-Fenwick switch.
        """
        self._accel_pending = False
        try:
            kernel = FactorisedPairKernel(
                dict(self.counts), self._can_change, seed=self._kernel_seed()
            )
        except AccelCapacityError as error:
            self._note_fallback(str(error))
            return
        if self._pair_sampler is not None:
            self._retire_sampler(self._pair_sampler.stats(), "pruning", "accel-engage")
        self.tracer.note_event(
            "accel-engage", at=self.interactions, kernel="factorised-pair"
        )
        self._pair_kernel = kernel
        self._pair_sampler = None
        self._pair_weights = {}
        self._active_weight = 0

    def _fallback_to_python(self, reason: str) -> None:
        """Abandon the NumPy kernels mid-run and rebuild the Python path.

        Triggered when a kernel outgrows its capacity (an activity matrix
        wider than :attr:`~repro.engine.vectorized.FactorisedPairKernel.
        MATRIX_LIMIT` keys).  The configuration histogram is the source of
        truth, so rebuilding the Python sampling structures from it is
        exact; the reason is surfaced via :meth:`accel_info` and the
        retired kernel's counters are kept in the sampler record (the
        counters that *triggered* the fallback would otherwise vanish from
        the result).
        """
        retired_kernel = self._pair_kernel or self._dense_kernel
        if retired_kernel is not None:
            self._retire_sampler(
                retired_kernel.stats(),
                "pruning" if self._prunes else "dense",
                "accel-fallback",
            )
        self._pair_kernel = None
        self._dense_kernel = None
        self._note_fallback(reason)
        if self._prunes:
            self._rebuild_pair_weights()
        else:
            # A live histogram sampler would be silently replaced here —
            # retire its counters first so no swap chain can drop them.
            if self._count_sampler is not None:
                self._retire_sampler(
                    self._count_sampler.stats(), "dense", "accel-fallback"
                )
            self._count_sampler = make_sampler(self.sampler_mode, self.counts)

    def _advance_pruning_numpy(self, target: int) -> None:
        """Pruning-regime event loop over the factorised pair kernel."""
        kernel = self._pair_kernel
        simulator = self.simulator
        counts = self.counts
        tracer = self.tracer
        while self.interactions < target and not self.terminal:
            weight = kernel.active_weight()
            if weight <= 0:
                self.terminal = True
                break
            ordered_pairs = self.n * (self.n - 1)
            tic = perf_counter()
            skip = (
                0 if weight >= ordered_pairs else kernel.next_skip(ordered_pairs)
            )
            remaining = target - self.interactions
            if skip >= remaining:
                # The whole window is configuration-preserving; the
                # pending active event is re-sampled next call
                # (memorylessness).
                tracer.add("sampling", perf_counter() - tic, ops=0)
                self.interactions = target
                break
            self.interactions += skip + 1
            key_a, key_b = kernel.next_pair()
            toc = perf_counter()
            tracer.add("sampling", toc - tic)
            new_a, new_b, changed = self._apply_transition(key_a, key_b)
            tic = perf_counter()
            tracer.add("transition", tic - toc)
            self.applied_events += 1
            overflow: Optional[AccelCapacityError] = None
            if changed:
                try:
                    for key in changed:
                        kernel.set_count(key, counts.get(key, 0))
                except AccelCapacityError as error:
                    # The event is already applied to the histogram; note
                    # the overflow but fire this event's hooks first so
                    # hook-based trackers never undercount.
                    overflow = error
                tracer.add("pair_weights", perf_counter() - tic)
            if simulator.hooks:
                for hook in simulator.hooks:
                    hook.on_batch_event(simulator, key_a, key_b, new_a, new_b)
            if overflow is not None:
                self._fallback_to_python(str(overflow))
                self.counter.total = self.interactions
                self.advance_to(target)
                return
        self.counter.total = self.interactions

    def _advance_dense_numpy(self, target: int) -> None:
        """Dense-regime event loop over blocked histogram pair draws.

        Falls back to the Python sampler path when the kernel reports
        :attr:`~repro.engine.vectorized.DenseBlockKernel.thrashing` — a
        configuration that changes on nearly every interaction invalidates
        every block after one event, so the vectorised draws cost more than
        the per-event sampler they replace.
        """
        kernel = self._dense_kernel
        simulator = self.simulator
        counts = self.counts
        while self.interactions < target and not self.terminal:
            if kernel.thrashing:
                self._fallback_to_python(
                    "dense block draws thrashed (the histogram changes on "
                    "nearly every interaction)"
                )
                self.counter.total = self.interactions
                self.advance_to(target)
                return
            tracer = self.tracer
            tic = perf_counter()
            if len(counts) == 1:
                key = next(iter(counts))
                key_a = key_b = key
            else:
                key_a, key_b = kernel.next_pair()
            toc = perf_counter()
            tracer.add("sampling", toc - tic)
            self.interactions += 1
            new_a, new_b, changed = self._apply_transition(key_a, key_b)
            tic = perf_counter()
            tracer.add("transition", tic - toc)
            self.applied_events += 1
            if changed:
                for key in changed:
                    kernel.set_count(key, counts.get(key, 0))
                self._check_dense_fixed_point()
                tracer.add("pair_weights", perf_counter() - tic)
            if simulator.hooks:
                for hook in simulator.hooks:
                    hook.on_batch_event(simulator, key_a, key_b, new_a, new_b)
        self.counter.total = self.interactions

    def _check_dense_fixed_point(self) -> None:
        """Detect the one provable fixed point available without pruning.

        With a conservative ``can_interaction_change`` the dense regime has
        no pair-weight table to drain to zero, but when a *deterministic*
        protocol collapses the whole population onto a single key whose
        self-interaction is a no-op, the configuration provably never changes
        again.
        """
        if not self._deterministic or len(self.counts) != 1:
            return
        key = next(iter(self.counts))
        result = self._delta_cache.get((key, key))
        if result is None:
            result = self._delta(key, key, self._agent_rng)
            self.transition_calls += 1
            self._delta_cache[(key, key)] = result
        new_a, new_b = result
        if (new_a == key and new_b == key):
            self.terminal = True

    # ------------------------------------------------- population dynamics
    def register_state(self, state: Any) -> Hashable:
        """Key of ``state``, registering a lifted representative when needed.

        Keys produced outside the simulated chain (joining agents, fault
        rewrites) must pass through here so the key-lifting adapter learns a
        representative before the key first participates in a transition.
        """
        if self._lifted is not None:
            return self._lifted.register(state)
        return self.protocol.state_key(state)

    def _population_changed(
        self, changed: Tuple[Hashable, ...] = (), full_rebuild: bool = False
    ) -> None:
        """Invalidate the sampling structures after the histogram changed.

        Pair weights are refreshed incrementally — ``O(changed * K)`` for
        ``K`` distinct keys — rather than rebuilt from scratch, so repeated
        churn on wide histograms stays cheap; ``full_rebuild`` covers
        wholesale edits (population restarts) where no small changed-key set
        exists.
        """
        self.counter.n = self.n
        self.terminal = False
        self.population_changes += 1
        if self._pair_kernel is not None:
            kernel = self._pair_kernel
            counts = self.counts
            try:
                if full_rebuild:
                    kernel.resync(counts)
                else:
                    for key in changed:
                        kernel.set_count(key, counts.get(key, 0))
            except AccelCapacityError as error:
                self._fallback_to_python(str(error))
                if self._active_weight <= 0:
                    self.terminal = True
                return
            if kernel.active_weight() <= 0:
                # Churn may land on an already-stable configuration.
                self.terminal = True
        elif self._dense_kernel is not None:
            kernel = self._dense_kernel
            if full_rebuild:
                kernel.rebuild(self.counts)
            else:
                counts = self.counts
                for key in changed:
                    kernel.set_count(key, counts.get(key, 0))
            self._check_dense_fixed_point()
        elif self._prunes:
            if full_rebuild:
                self._rebuild_pair_weights()
            else:
                self._update_pair_weights(changed)
            if self._active_weight <= 0:
                # Churn may land on an already-stable configuration.
                self.terminal = True
        else:
            if full_rebuild or len(changed) * 4 >= len(self.counts):
                self._count_sampler.rebuild(self.counts)
            else:
                sampler = self._count_sampler
                counts = self.counts
                for key in changed:
                    sampler.update(key, counts.get(key, 0))
            self._check_dense_fixed_point()

    def _sample_victim_keys(self, victims: int, rng: random.Random) -> List[Hashable]:
        """Keys of ``victims`` distinct agents drawn uniformly at random.

        Victim tickets index agents in an arbitrary but fixed key order and
        are resolved against the current histogram in one cumulative pass —
        exchangeability of the uniform choice makes the order irrelevant.
        """
        if victims < 0:
            raise ConfigurationError("victims must be non-negative")
        if victims > self.n:
            raise ConfigurationError(
                f"cannot draw {victims} distinct agents from a population of {self.n}"
            )
        tickets = sorted(rng.sample(range(self.n), victims))
        victim_keys: List[Hashable] = []
        cumulative = 0
        ticket_index = 0
        for key, count in self.counts.items():
            cumulative += count
            while ticket_index < len(tickets) and tickets[ticket_index] < cumulative:
                victim_keys.append(key)
                ticket_index += 1
            if ticket_index == len(tickets):
                break
        return victim_keys

    def join(self, count: int) -> Dict[str, Any]:
        self._check_population(count)
        counts = self.counts
        changed: set = set()
        for _ in range(count):
            key = self.register_state(self.fresh_initial_state())
            counts[key] += 1
            changed.add(key)
            if self.track_state_space:
                self.state_space.observe(key)
        self.n += count
        self._population_changed(tuple(changed))
        return {"joined": count, "n": self.n}

    def leave(self, count: int, rng: random.Random, min_remaining: int = 2) -> Dict[str, Any]:
        self._check_population(count)
        if self.n - count < min_remaining:
            raise ConfigurationError(
                f"cannot remove {count} of {self.n} agents; at least "
                f"{min_remaining} must remain"
            )
        counts = self.counts
        changed: set = set()
        for key in self._sample_victim_keys(count, rng):
            counts[key] -= 1
            if not counts[key]:
                del counts[key]
            changed.add(key)
        self.n -= count
        self._population_changed(tuple(changed))
        return {"left": count, "n": self.n}

    def restart_population(self) -> Dict[str, Any]:
        protocol = self.protocol
        if self._lifted is not None:
            counts: Counter = Counter()
            for agent_id in range(self.n):
                counts[self._lifted.register(protocol.initial_state(agent_id))] += 1
            self.counts = counts
        else:
            self.counts = Counter(protocol.initial_key_counts(self.n))
        if self.track_state_space:
            for key in self.counts:
                self.state_space.observe(key)
        self._population_changed(full_rebuild=True)
        return {"restarted": self.n, "n": self.n}

    def skip_to(self, target: int) -> None:
        super().skip_to(target)
        self.counter.total = self.interactions

    # ----------------------------------------------------- failure injection
    def corrupt_histogram(
        self,
        victims: int,
        rewrite: Any,
        rng: random.Random,
    ) -> int:
        """Corrupt ``victims`` *distinct* agents drawn uniformly at random.

        The batch-mode analogue of mutating agent states in place: the
        victims are chosen without replacement over the population (exactly
        the agent-mode ``rng.sample`` fault model, marginalised to keys),
        each victim's key is removed from the histogram and replaced by
        ``rewrite(key, rng)``.  The sampling structures are rebuilt
        afterwards.  Returns the number of agents whose key actually
        changed.
        """
        counts = self.counts
        victim_keys = self._sample_victim_keys(victims, rng)
        changed = 0
        for key in victim_keys:
            new_key = rewrite(key, rng)
            if new_key == key:
                continue
            if self._lifted is not None and not self._lifted.knows(new_key):
                # The lifted adapter can only simulate keys it has seen a
                # representative state for; an unseen key would crash the
                # next transition with an opaque KeyError.
                raise SimulationError(
                    f"key-level corruption produced {new_key!r}, which the "
                    "key-lifting adapter has no representative state for; "
                    "rewrite only to already-observed keys or implement the "
                    "native key API on the protocol"
                )
            counts[key] -= 1
            if not counts[key]:
                del counts[key]
            counts[new_key] += 1
            if self.track_state_space:
                self.state_space.observe(new_key)
            changed += 1
        if changed:
            if self._pair_kernel is not None:
                try:
                    self._pair_kernel.resync(counts)
                except AccelCapacityError as error:
                    self._fallback_to_python(str(error))
            elif self._dense_kernel is not None:
                self._dense_kernel.rebuild(counts)
            elif self._prunes:
                self._rebuild_pair_weights()
            else:
                self._count_sampler.rebuild(counts)
            self.terminal = False
        return changed

    # ------------------------------------------------------------- observers
    def sampler_stats(self) -> Dict[str, Any]:
        """JSON-friendly record of the sampling strategy this run ended on.

        Includes the requested knob, the regime, the active strategy's
        counters, and (after an ``auto`` switch) the retired samplers'
        counters — the hook the regression tests use to pin the switching
        heuristic.
        """
        record: Dict[str, Any] = {
            "requested": self.sampler_mode,
            "regime": "pruning" if self._prunes else "dense",
            "switched": bool(self._retired_samplers),
        }
        if self._pair_kernel is not None:
            record["strategy"] = "factorised"
            record.update(self._pair_kernel.stats())
        elif self._dense_kernel is not None:
            record["strategy"] = "vector"
            record.update(self._dense_kernel.stats())
        else:
            sampler = self._pair_sampler if self._prunes else self._count_sampler
            if sampler is not None:
                record.update(sampler.stats())
        if self._retired_samplers:
            record["retired"] = list(self._retired_samplers)
        return record

    def accel_info(self) -> Dict[str, Any]:
        """JSON-friendly record of the acceleration path this run is on.

        ``active`` reflects the live hot loop (it flips to ``"python"``
        after a mid-run capacity fallback); the CI matrix's guard test pins
        it against the leg's intent so the two legs can never silently test
        the same code.
        """
        record: Dict[str, Any] = {
            "requested": self.accel_mode,
            "active": self.accel_active,
            "numpy_available": numpy_available(),
            # Whether a NumPy kernel is driving the hot loop right now.
            # Under accel="auto" the pruning kernel only engages once the
            # alias table thrashes, so active="numpy" with engaged=False
            # means "armed, but the Python path is still the better tool
            # for this table" (tiny or static pair tables).
            "engaged": self._pair_kernel is not None
            or self._dense_kernel is not None,
        }
        if self._accel_fallback is not None:
            record["fallback_reason"] = self._accel_fallback
        return record

    def state_key_counts(self) -> Counter:
        return Counter(self.counts)

    def output_counts(self) -> Counter:
        output_counts: Counter = Counter()
        cache = self._output_cache
        for key, count in self.counts.items():
            output = cache.get(key, cache)
            if output is cache:  # sentinel: not yet computed
                output = self._output_key(key)
                cache[key] = output
            output_counts[output] += count
        return output_counts

    def outputs(self) -> List[Any]:
        expanded: List[Any] = []
        for output, count in self.output_counts().items():
            expanded.extend([output] * count)
        return expanded

    def convergence_view(self) -> Counter:
        return self.output_counts()

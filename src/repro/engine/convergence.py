"""Convergence and stabilisation detection.

The paper distinguishes two notions (Section 1.1):

* **Convergence time** ``T_C`` — the number of interactions until the system
  enters the set of desired configurations and never leaves it again.
* **Stabilisation time** ``T_S`` — the number of interactions until the
  system enters a configuration from which *no* sequence of interactions can
  leave the set of desired configurations.

Convergence is detected empirically: the simulator evaluates a predicate on
the vector of agent outputs at a configurable cadence and reports the first
interaction of the final uninterrupted run of satisfied checks.
Stabilisation is detected structurally for protocols that implement
:meth:`repro.engine.protocol.Protocol.can_interaction_change`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence

__all__ = [
    "OutputPredicate",
    "all_outputs_equal",
    "all_outputs_satisfy",
    "fraction_outputs_satisfy",
    "outputs_in",
    "ConvergenceTracker",
]

OutputPredicate = Callable[[Sequence[Any]], bool]


def all_outputs_equal(target: Any = None) -> OutputPredicate:
    """Predicate: every agent reports the same output (optionally ``target``).

    Args:
        target: When given, all outputs must additionally equal this value.
    """

    def predicate(outputs: Sequence[Any]) -> bool:
        if not outputs:
            return False
        first = outputs[0]
        if target is not None and first != target:
            return False
        return all(value == first for value in outputs)

    predicate.__name__ = f"all_outputs_equal({target!r})"
    return predicate


def all_outputs_satisfy(check: Callable[[Any], bool]) -> OutputPredicate:
    """Predicate: every individual agent output satisfies ``check``."""

    def predicate(outputs: Sequence[Any]) -> bool:
        return bool(outputs) and all(check(value) for value in outputs)

    predicate.__name__ = f"all_outputs_satisfy({getattr(check, '__name__', 'check')})"
    return predicate


def fraction_outputs_satisfy(check: Callable[[Any], bool], fraction: float) -> OutputPredicate:
    """Predicate: at least ``fraction`` of agent outputs satisfy ``check``.

    Used for Theorem 1(3), where only ``n - log n`` agents need the correct
    output.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")

    def predicate(outputs: Sequence[Any]) -> bool:
        if not outputs:
            return False
        good = sum(1 for value in outputs if check(value))
        return good >= fraction * len(outputs)

    predicate.__name__ = f"fraction_outputs_satisfy({fraction})"
    return predicate


def outputs_in(allowed: Iterable[Any]) -> OutputPredicate:
    """Predicate: every agent output lies in the ``allowed`` set.

    This is the natural acceptance condition for Theorem 1, whose protocol may
    output either ``floor(log2 n)`` or ``ceil(log2 n)``.
    """
    allowed_set = set(allowed)

    def predicate(outputs: Sequence[Any]) -> bool:
        return bool(outputs) and all(value in allowed_set for value in outputs)

    predicate.__name__ = f"outputs_in({sorted(map(repr, allowed_set))})"
    return predicate


@dataclass
class ConvergenceTracker:
    """Track the satisfaction history of a convergence predicate.

    The tracker records, for each checkpoint, whether the predicate held.  Its
    :attr:`convergence_interaction` is the interaction index of the first
    checkpoint of the *final* uninterrupted satisfied streak — the empirical
    analogue of "enters the set of desired configurations and never leaves it
    again (within the observed horizon)".
    """

    checks: int = 0
    satisfied_checks: int = 0
    _streak_start: Optional[int] = None
    _streak_length: int = 0
    _ever_satisfied: bool = False
    history: List[bool] = field(default_factory=list)
    keep_history: bool = False

    def record(self, interaction: int, satisfied: bool) -> None:
        """Record the predicate value observed after ``interaction`` interactions."""
        self.checks += 1
        if self.keep_history:
            self.history.append(satisfied)
        if satisfied:
            self.satisfied_checks += 1
            self._ever_satisfied = True
            if self._streak_start is None:
                self._streak_start = interaction
            self._streak_length += 1
        else:
            self._streak_start = None
            self._streak_length = 0

    @property
    def currently_satisfied(self) -> bool:
        """Whether the most recent checkpoint satisfied the predicate."""
        return self._streak_start is not None

    @property
    def current_streak(self) -> int:
        """Number of consecutive satisfied checkpoints ending at the latest one."""
        return self._streak_length

    @property
    def ever_satisfied(self) -> bool:
        """Whether the predicate held at any checkpoint."""
        return self._ever_satisfied

    @property
    def convergence_interaction(self) -> Optional[int]:
        """Interaction index at which the final satisfied streak began, if any."""
        return self._streak_start

"""Convergence and stabilisation detection.

The paper distinguishes two notions (Section 1.1):

* **Convergence time** ``T_C`` — the number of interactions until the system
  enters the set of desired configurations and never leaves it again.
* **Stabilisation time** ``T_S`` — the number of interactions until the
  system enters a configuration from which *no* sequence of interactions can
  leave the set of desired configurations.

Convergence is detected empirically: the simulator evaluates a predicate on
the agent outputs at a configurable cadence and reports the first
interaction of the final uninterrupted run of satisfied checks.
Stabilisation is detected structurally for protocols that implement
:meth:`repro.engine.protocol.Protocol.can_interaction_change`.

Predicates accept either a *sequence* of per-agent outputs (what the
per-agent backend produces) or a *histogram* mapping output values to
multiplicities (what the batch backend produces — it never materialises
per-agent lists).  Every predicate built by the factories in this module
handles both forms; custom predicates used with the batch backend must do
the same, for which :func:`output_items` is the convenient building block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "OutputPredicate",
    "OutputsView",
    "output_items",
    "total_outputs",
    "all_outputs_equal",
    "all_outputs_satisfy",
    "fraction_outputs_satisfy",
    "outputs_in",
    "outputs_within_spread",
    "accuracy_fraction",
    "ConvergenceTracker",
]

#: What a convergence predicate receives: per-agent outputs or a histogram.
OutputsView = Union[Sequence[Any], Mapping[Any, int]]

OutputPredicate = Callable[[OutputsView], bool]

_UNSET = object()


def output_items(outputs: OutputsView) -> Iterator[Tuple[Any, int]]:
    """Yield ``(value, multiplicity)`` pairs from either output view.

    Sequences yield each element with multiplicity 1; histograms yield their
    items with zero-count entries skipped.
    """
    if isinstance(outputs, Mapping):
        for value, count in outputs.items():
            if count > 0:
                yield value, count
    else:
        for value in outputs:
            yield value, 1


def total_outputs(outputs: OutputsView) -> int:
    """Number of agents represented by either output view."""
    if isinstance(outputs, Mapping):
        return sum(count for count in outputs.values() if count > 0)
    return len(outputs)


def all_outputs_equal(target: Any = None) -> OutputPredicate:
    """Predicate: every agent reports the same output (optionally ``target``).

    Args:
        target: When given, all outputs must additionally equal this value.
    """

    def predicate(outputs: OutputsView) -> bool:
        first = _UNSET
        for value, _count in output_items(outputs):
            if first is _UNSET:
                if target is not None and value != target:
                    return False
                first = value
            elif value != first:
                return False
        return first is not _UNSET

    predicate.__name__ = f"all_outputs_equal({target!r})"
    return predicate


def all_outputs_satisfy(check: Callable[[Any], bool]) -> OutputPredicate:
    """Predicate: every individual agent output satisfies ``check``."""

    def predicate(outputs: OutputsView) -> bool:
        seen_any = False
        for value, _count in output_items(outputs):
            if not check(value):
                return False
            seen_any = True
        return seen_any

    predicate.__name__ = f"all_outputs_satisfy({getattr(check, '__name__', 'check')})"
    return predicate


def fraction_outputs_satisfy(check: Callable[[Any], bool], fraction: float) -> OutputPredicate:
    """Predicate: at least ``fraction`` of agent outputs satisfy ``check``.

    Used for Theorem 1(3), where only ``n - log n`` agents need the correct
    output.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")

    def predicate(outputs: OutputsView) -> bool:
        good = 0
        total = 0
        for value, count in output_items(outputs):
            total += count
            if check(value):
                good += count
        return total > 0 and good >= fraction * total

    predicate.__name__ = f"fraction_outputs_satisfy({fraction})"
    return predicate


def outputs_in(allowed: Iterable[Any]) -> OutputPredicate:
    """Predicate: every agent output lies in the ``allowed`` set.

    This is the natural acceptance condition for Theorem 1, whose protocol may
    output either ``floor(log2 n)`` or ``ceil(log2 n)``.
    """
    allowed_set = set(allowed)

    def predicate(outputs: OutputsView) -> bool:
        seen_any = False
        for value, _count in output_items(outputs):
            if value not in allowed_set:
                return False
            seen_any = True
        return seen_any

    predicate.__name__ = f"outputs_in({sorted(map(repr, allowed_set))})"
    return predicate


def outputs_within_spread(width: int) -> OutputPredicate:
    """Predicate: the numeric outputs span at most ``width`` (max − min).

    The acceptance condition of the load-balancing processes ([10], Lemma 8):
    a discrepancy of at most ``width`` between the most and least loaded
    agents.  ``width=0`` degenerates to :func:`all_outputs_equal`.
    """
    if width < 0:
        raise ValueError("width must be non-negative")

    def predicate(outputs: OutputsView) -> bool:
        lowest: Optional[Any] = None
        highest: Optional[Any] = None
        for value, _count in output_items(outputs):
            if lowest is None or value < lowest:
                lowest = value
            if highest is None or value > highest:
                highest = value
        return lowest is not None and highest - lowest <= width

    predicate.__name__ = f"outputs_within_spread({width})"
    # Spread is a whole-population property: a singleton histogram always
    # passes, so per-agent accuracy against this predicate is meaningless.
    predicate.value_wise = False
    return predicate


def accuracy_fraction(
    outputs: OutputsView, predicate: OutputPredicate
) -> Optional[float]:
    """Fraction of agents whose output alone satisfies ``predicate``.

    The per-agent recovery-accuracy measure of the scenario subsystem: after
    a churn event the acceptance predicate is re-derived for the *new* true
    population size, and this function reports how much of the population
    already agrees with it.  Each output value is tested as a singleton
    histogram, which value-wise predicates (equality, membership, per-output
    checks) interpret as intended.  Predicates that are only meaningful on
    whole populations declare ``value_wise = False`` (e.g.
    :func:`outputs_within_spread`, whose singleton evaluation would be
    vacuously true); for those this function returns ``None`` instead of a
    fabricated 1.0.
    """
    if getattr(predicate, "value_wise", True) is False:
        return None
    good = 0
    total = 0
    for value, count in output_items(outputs):
        total += count
        if predicate({value: count}):
            good += count
    return good / total if total else 0.0


@dataclass
class ConvergenceTracker:
    """Track the satisfaction history of a convergence predicate.

    The tracker records, for each checkpoint, whether the predicate held.  Its
    :attr:`convergence_interaction` is the interaction index of the first
    checkpoint of the *final* uninterrupted satisfied streak — the empirical
    analogue of "enters the set of desired configurations and never leaves it
    again (within the observed horizon)".
    """

    checks: int = 0
    satisfied_checks: int = 0
    _streak_start: Optional[int] = None
    _streak_length: int = 0
    _ever_satisfied: bool = False
    history: List[bool] = field(default_factory=list)
    keep_history: bool = False

    def record(self, interaction: int, satisfied: bool) -> None:
        """Record the predicate value observed after ``interaction`` interactions."""
        self.checks += 1
        if self.keep_history:
            self.history.append(satisfied)
        if satisfied:
            self.satisfied_checks += 1
            self._ever_satisfied = True
            if self._streak_start is None:
                self._streak_start = interaction
            self._streak_length += 1
        else:
            self._streak_start = None
            self._streak_length = 0

    @property
    def currently_satisfied(self) -> bool:
        """Whether the most recent checkpoint satisfied the predicate."""
        return self._streak_start is not None

    @property
    def current_streak(self) -> int:
        """Number of consecutive satisfied checkpoints ending at the latest one."""
        return self._streak_length

    @property
    def ever_satisfied(self) -> bool:
        """Whether the predicate held at any checkpoint."""
        return self._ever_satisfied

    @property
    def convergence_interaction(self) -> Optional[int]:
        """Interaction index at which the final satisfied streak began, if any."""
        return self._streak_start

"""Deterministic randomness utilities.

Every simulation in this library is reproducible from ``(parameters, n, seed)``.
To keep independent runs statistically independent while remaining
deterministic, seeds for sub-streams are derived with a SplitMix64-style
mixing function rather than by incrementing the base seed.

The helpers here are intentionally dependency-free (no ``numpy``) so that the
core library has zero runtime requirements.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Sequence, Union

__all__ = [
    "SeedLike",
    "mix_seed",
    "derive_seed",
    "make_rng",
    "spawn_seeds",
    "spawn_rngs",
]

SeedLike = Union[int, str, None]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _to_int(seed: SeedLike) -> int:
    """Convert a seed-like value (int, str, or ``None``) to a 64-bit integer."""
    if seed is None:
        return 0
    if isinstance(seed, int):
        return seed & _MASK64
    if isinstance(seed, str):
        acc = 1469598103934665603  # FNV-1a offset basis
        for ch in seed.encode("utf-8"):
            acc ^= ch
            acc = (acc * 1099511628211) & _MASK64
        return acc
    raise TypeError(f"unsupported seed type: {type(seed)!r}")


def mix_seed(value: int) -> int:
    """Apply the SplitMix64 finalizer to ``value`` and return a 64-bit result.

    The finalizer is a bijection on 64-bit integers with excellent avalanche
    behaviour, which makes nearby input seeds produce unrelated outputs.
    """
    z = (value + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_seed(base: SeedLike, *keys: SeedLike) -> int:
    """Derive a child seed from ``base`` and an arbitrary sequence of keys.

    The same ``(base, keys)`` pair always yields the same child seed, and
    different key tuples yield (with overwhelming probability) unrelated
    seeds.  Keys may be integers or strings, e.g.::

        derive_seed(1234, "sweep", n, repetition)
    """
    acc = mix_seed(_to_int(base))
    for key in keys:
        acc = mix_seed(acc ^ _to_int(key))
    return acc


def make_rng(seed: SeedLike, *keys: SeedLike) -> random.Random:
    """Create a :class:`random.Random` seeded deterministically.

    Extra ``keys`` are mixed into the seed via :func:`derive_seed`, making it
    easy to create named sub-streams: ``make_rng(seed, "scheduler")``.
    """
    return random.Random(derive_seed(seed, *keys))


def spawn_seeds(base: SeedLike, count: int, *keys: SeedLike) -> List[int]:
    """Return ``count`` independent child seeds derived from ``base``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [derive_seed(base, *keys, index) for index in range(count)]


def spawn_rngs(base: SeedLike, count: int, *keys: SeedLike) -> List[random.Random]:
    """Return ``count`` independent :class:`random.Random` generators."""
    return [random.Random(seed) for seed in spawn_seeds(base, count, *keys)]


def iter_seeds(base: SeedLike, *keys: SeedLike) -> Iterator[int]:
    """Yield an unbounded stream of independent seeds derived from ``base``."""
    index = 0
    while True:
        yield derive_seed(base, *keys, index)
        index += 1

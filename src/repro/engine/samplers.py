"""Pluggable weighted samplers for the batch backend's hot draw path.

The batch backend spends its life drawing from discrete weighted
distributions: the active ordered pair-type table in the *pruning* regime and
the key histogram in the *dense* regime.  Three interchangeable strategies
are provided behind the :class:`WeightedSampler` interface:

* :class:`ScanSampler` — linear inverse-CDF scan.  O(1) updates, O(P) draws;
  unbeatable for tables of a few dozen entries and the reference
  implementation the others are differentially tested against.
* :class:`AliasSampler` — an O(P)-build, O(1)-draw lookup table that is
  rebuilt lazily whenever a weight changed.  Amortises beautifully when many
  draws happen between weight changes (the dense regime, where most
  interactions are no-ops at key level) and thrashes when the weights churn
  on nearly every draw, in which case it falls back to scanning and only
  re-probes a rebuild periodically.
* :class:`FenwickSampler` — a Fenwick (binary indexed) tree over the
  weights: O(log P) point update, O(log P) inverse-CDF draw.  The right
  tool for *churning* wide tables — ``backup-exact`` at ``n >= 10^4``
  invalidates the pair table on nearly every event, exactly where the alias
  strategy degenerates to O(P) per event.

Draw-path determinism
---------------------

All strategies obey one **canonical draw contract**: a draw consumes exactly
one ``rng.random()`` variate ``u`` and returns the key whose cumulative
weight interval (taken in the sampler's slot order, which is the insertion
order of the weights it was built from) contains ``u * total`` — i.e. every
strategy evaluates the *same* inverse CDF, differing only in the data
structure used to evaluate it.  Consequently two samplers built from the
same weights map the same random stream to the *identical* key sequence as
long as the weights stay static.  This is what makes the cross-strategy
differential tests in ``tests/test_samplers.py`` exact rather than merely
statistical, and it is why :class:`AliasSampler` uses Walker-style *guide
pointers into the cumulative table* (the cutpoint method — O(1) expected
draws, same inverse-CDF map) rather than the classic Vose alias layout,
whose u-to-key map cannot be aligned with an inverse CDF.

The classic Vose :class:`AliasTable` is retained for API compatibility and
for immutable one-shot distributions.

Integer weights up to ``2**53`` keep every comparison in the draw path exact
(see the float-exactness note on :meth:`FenwickSampler.sample`), so the
determinism guarantee is bit-for-bit, not approximate.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Dict, Hashable, List, Optional

from .errors import ConfigurationError

__all__ = [
    "SAMPLER_NAMES",
    "WeightedSampler",
    "ScanSampler",
    "AliasSampler",
    "FenwickSampler",
    "AliasTable",
    "make_sampler",
]

#: Valid values for the ``sampler=`` knob of the simulator and the batch
#: backend.  ``"auto"`` starts on the alias strategy and switches to the
#: Fenwick tree when the weights churn faster than the alias table amortises.
#: ``"vector"`` is the NumPy cumulative-sum strategy of
#: :mod:`repro.engine.vectorized` (requires the ``accel`` extra).
SAMPLER_NAMES = ("auto", "scan", "alias", "fenwick", "vector")


def _validate_weight(weight: int) -> None:
    if weight < 0:
        raise ConfigurationError("sampler weights must be non-negative")


def _clean_weights(weights: Dict[Hashable, int]) -> Dict[Hashable, int]:
    """Copy ``weights`` dropping zero entries, validating non-negativity."""
    cleaned: Dict[Hashable, int] = {}
    for key, weight in weights.items():
        _validate_weight(weight)
        if weight:
            cleaned[key] = weight
    return cleaned


class WeightedSampler(abc.ABC):
    """Dynamic weighted sampling over a ``{key: weight}`` table.

    The contract every strategy implements:

    * :meth:`sample` draws one key with probability ``weight / total``,
      consuming exactly one uniform variate and following the canonical
      inverse-CDF order (see the module docstring).
    * :meth:`update` sets one key's weight (0 removes it from the
      distribution); :meth:`rebuild` replaces the whole table.
    * :attr:`total` is the current total weight; ``len(sampler)`` the number
      of keys with positive weight.

    Stats counters (``draws``, ``updates``, ``rebuilds`` plus
    strategy-specific extras) feed the ``auto`` switching heuristic and are
    surfaced in ``SimulationResult.extra["sampler"]`` so tests can pin the
    strategy a run ended on.
    """

    #: Stable strategy name (matches the ``sampler=`` knob values).
    strategy: str = ""

    def __init__(self) -> None:
        self.draws = 0
        self.updates = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------- API
    @abc.abstractmethod
    def sample(self, rng: random.Random) -> Hashable:
        """Draw one key with probability proportional to its weight."""

    @abc.abstractmethod
    def update(self, key: Hashable, weight: int) -> None:
        """Set ``key``'s weight (0 removes it from the distribution)."""

    @abc.abstractmethod
    def rebuild(self, weights: Dict[Hashable, int]) -> None:
        """Replace the whole weight table (wholesale churn, restarts)."""

    @property
    @abc.abstractmethod
    def total(self) -> int:
        """Current total weight."""

    @abc.abstractmethod
    def weights(self) -> Dict[Hashable, int]:
        """Current ``{key: weight}`` table (positive weights only)."""

    def __len__(self) -> int:
        return len(self.weights())

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly counters describing the sampler's life so far."""
        return {
            "strategy": self.strategy,
            "draws": self.draws,
            "updates": self.updates,
            "rebuilds": self.rebuilds,
        }

    # ------------------------------------------------------------- internals
    def _require_positive_total(self) -> None:
        if self.total <= 0:
            raise ConfigurationError(
                f"{type(self).__name__} cannot sample from a zero-weight table"
            )


def _scan_inverse_cdf(
    weights: Dict[Hashable, int], total: int, rng: random.Random
) -> Hashable:
    """The canonical draw: inverse CDF over ``weights`` in insertion order.

    Consumes exactly one uniform.  The float corner where ``u * total``
    rounds up to ``total`` falls through to the last key, matching the
    Fenwick descent's clamp.
    """
    target = rng.random() * total
    chosen: Hashable = None
    for key, weight in weights.items():
        target -= weight
        chosen = key
        if target < 0:
            break
    return chosen


class ScanSampler(WeightedSampler):
    """Linear inverse-CDF scan: O(1) update, O(P) draw.

    The reference strategy — trivially correct, cache-friendly, and the
    fastest choice for tables small enough that a draw touches only a few
    entries.  Every other strategy is differentially tested against it.
    """

    strategy = "scan"

    def __init__(self, weights: Optional[Dict[Hashable, int]] = None) -> None:
        super().__init__()
        self._weights: Dict[Hashable, int] = {}
        self._total = 0
        if weights:
            self.rebuild(weights)
            self.rebuilds = 0  # construction is not churn

    @property
    def total(self) -> int:
        return self._total

    def weights(self) -> Dict[Hashable, int]:
        return dict(self._weights)

    def update(self, key: Hashable, weight: int) -> None:
        _validate_weight(weight)
        self.updates += 1
        old = self._weights.pop(key, 0)
        if weight:
            self._weights[key] = weight
        self._total += weight - old

    def rebuild(self, weights: Dict[Hashable, int]) -> None:
        self.rebuilds += 1
        self._weights = _clean_weights(weights)
        self._total = sum(self._weights.values())

    def sample(self, rng: random.Random) -> Hashable:
        self._require_positive_total()
        self.draws += 1
        return _scan_inverse_cdf(self._weights, self._total, rng)


class AliasSampler(WeightedSampler):
    """Lazily rebuilt O(1)-draw table with an adaptive scan fallback.

    The table is a cumulative-weight array plus Walker-style guide pointers
    (one per key) locating the inverse-CDF position of each equal-width
    column of ``[0, total)`` — O(P) to build, O(1) expected per draw, and,
    unlike the classic Vose layout, *identical* in its u-to-key map to the
    canonical scan (module docstring).  Any weight change drops the table;
    it is rebuilt on the next draw, which amortises whenever several draws
    happen between changes.

    When the weights churn so fast that a table rarely serves two draws
    before being invalidated (``builds >= 8`` with ``table_draws <
    2 * builds``), rebuilding costs more than scanning, so draws fall back
    to the linear scan and only every :attr:`REPROBE_PERIOD`-th fallback
    draw re-probes a rebuild.  The fallback-scan counter resets on every
    successful build: a long scan streak from a past churn era must not
    cheapen the re-probe cadence of the next one (PR 4 regression).

    Tables of at most :attr:`SMALL_TABLE` keys are scanned outright without
    touching the table or its counters — at that size the scan wins
    unconditionally and the churn heuristic would only add noise.
    """

    strategy = "alias"

    #: At or below this many keys a draw scans outright (no table).
    SMALL_TABLE = 32
    #: Builds before the churn heuristic may engage.
    CHURN_BUILDS = 8
    #: A table must serve at least this many draws per build to amortise.
    CHURN_DRAW_FACTOR = 2
    #: Every this-many fallback scans, one draw re-probes a rebuild.
    REPROBE_PERIOD = 64

    def __init__(self, weights: Optional[Dict[Hashable, int]] = None) -> None:
        super().__init__()
        self._weights: Dict[Hashable, int] = {}
        self._total = 0
        self._keys: List[Hashable] = []
        self._cum: List[int] = []
        self._guide: List[int] = []
        self._dirty = True
        self.builds = 0       # lazy table constructions
        self.table_draws = 0  # draws served by the table
        self.scans = 0        # fallback scans since the last build
        if weights:
            self.rebuild(weights)
            self.rebuilds = 0  # construction is not churn

    @property
    def total(self) -> int:
        return self._total

    def weights(self) -> Dict[Hashable, int]:
        return dict(self._weights)

    @property
    def thrashing(self) -> bool:
        """Whether the weights churn too fast for the table to amortise."""
        return (
            self.builds >= self.CHURN_BUILDS
            and self.table_draws < self.CHURN_DRAW_FACTOR * self.builds
        )

    def stats(self) -> Dict[str, Any]:
        record = super().stats()
        record.update(
            builds=self.builds,
            table_draws=self.table_draws,
            scans=self.scans,
            thrashing=self.thrashing,
        )
        return record

    def update(self, key: Hashable, weight: int) -> None:
        _validate_weight(weight)
        self.updates += 1
        old = self._weights.pop(key, 0)
        if weight:
            self._weights[key] = weight
        self._total += weight - old
        self._dirty = True

    def rebuild(self, weights: Dict[Hashable, int]) -> None:
        self.rebuilds += 1
        self._weights = _clean_weights(weights)
        self._total = sum(self._weights.values())
        self._dirty = True

    def _build(self) -> None:
        keys = list(self._weights.keys())
        cum: List[int] = []
        acc = 0
        for key in keys:
            acc += self._weights[key]
            cum.append(acc)
        size = len(keys)
        guide: List[int] = [0] * size
        position = 0
        total = self._total
        for column in range(size):
            threshold = column * total / size
            while cum[position] <= threshold:
                position += 1
            guide[column] = position
        self._keys = keys
        self._cum = cum
        self._guide = guide
        self._dirty = False
        self.builds += 1
        # Reset the fallback counter: re-probe cadence must restart fresh
        # after every successful build (a stale streak from an earlier churn
        # era would otherwise misalign the % REPROBE_PERIOD schedule).
        self.scans = 0

    def sample(self, rng: random.Random) -> Hashable:
        self._require_positive_total()
        self.draws += 1
        if len(self._weights) <= self.SMALL_TABLE:
            return _scan_inverse_cdf(self._weights, self._total, rng)
        if self._dirty:
            if self.thrashing:
                self.scans += 1
                if self.scans % self.REPROBE_PERIOD:
                    return _scan_inverse_cdf(self._weights, self._total, rng)
            self._build()
        self.table_draws += 1
        u = rng.random()
        target = u * self._total
        cum = self._cum
        column = int(u * len(self._guide))
        if column >= len(self._guide):  # u * size rounding up to size
            column = len(self._guide) - 1
        index = self._guide[column]
        # One float rounding corner each way: u * len could land one column
        # high, and target could round up past the last cumulative weight.
        while index > 0 and cum[index - 1] > target:
            index -= 1
        last = len(cum) - 1
        while index < last and cum[index] <= target:
            index += 1
        return self._keys[index]


class FenwickSampler(WeightedSampler):
    """Fenwick-tree (binary indexed) weighted sampler.

    Weights live at the leaves of an implicit prefix-sum tree: a point
    update costs O(log P), and a draw walks the tree top-down to locate the
    inverse-CDF position in O(log P) — no rebuild ever, which is what wins
    on churning wide tables where the alias strategy pays O(P) per event
    (rebuild) and the scan pays O(P) per draw.

    Keys keep their slot for life (a key whose weight returns to 0 and back
    reuses its slot), so the canonical slot order is the first-insertion
    order; when more than half the slots are dead the structure compacts
    itself with one O(P) rebuild.

    Float-exactness note: a draw computes ``target = u * total`` once and
    then subtracts integer node sums while descending.  As long as
    ``total < 2**53`` every such difference is exact in IEEE-754 double
    precision (both operands are multiples of the smaller operand's ulp and
    the result shrinks), so the descent lands on *exactly* the slot the
    canonical linear scan would pick for the same ``u`` — the determinism
    contract is bit-for-bit.
    """

    strategy = "fenwick"

    #: Compact (rebuild dropping dead slots) when over half the slots are
    #: dead and the table is at least this large.
    COMPACT_MIN_SIZE = 64

    def __init__(self, weights: Optional[Dict[Hashable, int]] = None) -> None:
        super().__init__()
        self._keys: List[Hashable] = []
        self._slots: Dict[Hashable, int] = {}
        self._leaf: List[int] = []
        self._tree: List[int] = [0]  # 1-based; _tree[0] unused
        self._total = 0
        self._dead = 0
        if weights:
            self.rebuild(weights)
            self.rebuilds = 0  # construction is not churn

    @property
    def total(self) -> int:
        return self._total

    def weights(self) -> Dict[Hashable, int]:
        return {
            key: self._leaf[slot]
            for key, slot in self._slots.items()
            if self._leaf[slot]
        }

    def stats(self) -> Dict[str, Any]:
        record = super().stats()
        record.update(slots=len(self._keys), dead_slots=self._dead)
        return record

    def rebuild(self, weights: Dict[Hashable, int]) -> None:
        self.rebuilds += 1
        cleaned = _clean_weights(weights)
        self._keys = list(cleaned.keys())
        self._slots = {key: slot for slot, key in enumerate(self._keys)}
        leaf = [cleaned[key] for key in self._keys]
        self._leaf = leaf
        size = len(leaf)
        # Linear-time construction: each node accumulates into its parent.
        tree = [0] * (size + 1)
        for index in range(1, size + 1):
            tree[index] += leaf[index - 1]
            parent = index + (index & -index)
            if parent <= size:
                tree[parent] += tree[index]
        self._tree = tree
        self._total = sum(leaf)
        self._dead = 0

    # --------------------------------------------------------------- helpers
    def _prefix(self, count: int) -> int:
        """Sum of the first ``count`` slots' weights."""
        tree = self._tree
        acc = 0
        while count > 0:
            acc += tree[count]
            count -= count & -count
        return acc

    def _add(self, position: int, delta: int) -> None:
        """Add ``delta`` at 1-based ``position``."""
        tree = self._tree
        size = len(tree)
        while position < size:
            tree[position] += delta
            position += position & -position

    def _append(self, key: Hashable, weight: int) -> None:
        position = len(self._keys) + 1
        low = position & -position
        # tree[position] covers slots (position - low, position]; seed it with
        # the already-present part of that range so the invariant holds.
        base = self._prefix(position - 1) - self._prefix(position - low)
        self._keys.append(key)
        self._slots[key] = position - 1
        self._leaf.append(weight)
        self._tree.append(base + weight)
        self._total += weight

    def update(self, key: Hashable, weight: int) -> None:
        _validate_weight(weight)
        self.updates += 1
        slot = self._slots.get(key)
        if slot is None:
            if weight:
                self._append(key, weight)
            return
        old = self._leaf[slot]
        if weight == old:
            return
        self._leaf[slot] = weight
        self._add(slot + 1, weight - old)
        self._total += weight - old
        if old and not weight:
            self._dead += 1
        elif weight and not old:
            self._dead -= 1
        size = len(self._keys)
        if size >= self.COMPACT_MIN_SIZE and self._dead * 2 > size:
            live = self.weights()
            self.rebuild(live)
            self.rebuilds -= 1  # compaction is maintenance, not API churn

    def sample(self, rng: random.Random) -> Hashable:
        self._require_positive_total()
        self.draws += 1
        target = rng.random() * self._total
        tree = self._tree
        size = len(tree) - 1
        position = 0
        bit = 1 << (size.bit_length() - 1) if size else 0
        while bit:
            probe = position + bit
            if probe <= size and tree[probe] <= target:
                target -= tree[probe]
                position = probe
            bit >>= 1
        # Float corner: u * total rounding up to total walks off the end;
        # clamp back to the last live slot (the scan lands there too).
        if position >= size:
            position = size - 1
        leaf = self._leaf
        while position > 0 and not leaf[position]:
            position -= 1
        return self._keys[position]


class AliasTable:
    """Walker/Vose alias table: O(1) draws from a fixed discrete distribution.

    Built once from a ``{value: weight}`` mapping in O(K); each draw costs two
    uniform variates regardless of K.  The table is immutable — for mutable
    weights use a :class:`WeightedSampler` strategy instead.  Note that the
    Vose u-to-value map is *not* the canonical inverse CDF, so this class
    sits outside the draw-path determinism contract; it is kept for
    immutable one-shot distributions and API compatibility.
    """

    __slots__ = ("values", "_prob", "_alias")

    def __init__(self, weights: Dict[Any, int]) -> None:
        values = list(weights.keys())
        self.values = values
        size = len(values)
        if size == 0:
            raise ConfigurationError("AliasTable requires at least one weighted value")
        total = 0
        for weight in weights.values():
            if weight < 0:
                raise ConfigurationError("AliasTable weights must be non-negative")
            total += weight
        if total <= 0:
            raise ConfigurationError("AliasTable requires positive total weight")
        scale = size / total
        scaled = [weights[value] * scale for value in values]
        prob = [0.0] * size
        alias = [0] * size
        small: List[int] = []
        large: List[int] = []
        for index, mass in enumerate(scaled):
            (small if mass < 1.0 else large).append(index)
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for index in large:
            prob[index] = 1.0
        for index in small:  # numerical leftovers
            prob[index] = 1.0
        self._prob = prob
        self._alias = alias

    def sample(self, rng: random.Random) -> Any:
        """Draw one value with probability proportional to its weight."""
        index = rng.randrange(len(self.values))
        if rng.random() < self._prob[index]:
            return self.values[index]
        return self.values[self._alias[index]]


#: Concrete strategy classes by knob name (``"auto"`` resolves to the alias
#: strategy; the batch backend owns the switch-to-Fenwick heuristic).
_STRATEGIES = {
    "scan": ScanSampler,
    "alias": AliasSampler,
    "fenwick": FenwickSampler,
}


def make_sampler(
    name: str, weights: Optional[Dict[Hashable, int]] = None
) -> WeightedSampler:
    """Build the sampler strategy for a ``sampler=`` knob value.

    ``"auto"`` returns an :class:`AliasSampler` — the caller (the batch
    backend) watches its :attr:`~AliasSampler.thrashing` flag and swaps in a
    :class:`FenwickSampler` when the weights churn too fast to amortise.
    ``"vector"`` resolves to the NumPy-backed
    :class:`~repro.engine.vectorized.VectorSampler` (imported lazily so the
    core library stays dependency-free) and raises a
    :class:`~repro.engine.errors.ConfigurationError` when NumPy is absent.
    """
    if name == "auto":
        return AliasSampler(weights)
    if name == "vector":
        from .vectorized import VectorSampler  # lazy: optional dependency

        return VectorSampler(weights)
    try:
        strategy = _STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sampler {name!r}; expected one of {SAMPLER_NAMES}"
        ) from None
    return strategy(weights)

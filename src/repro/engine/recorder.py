"""Trace recording hooks.

Recorders snapshot the evolving output distribution of a run so experiments
can report convergence trajectories (e.g. the fraction of agents outputting
the correct count over time) without storing full per-interaction traces.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, List, Optional

from .hooks import Hook
from .metrics import MetricsSnapshot

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

__all__ = ["OutputTraceRecorder", "StateHistogramRecorder"]


class OutputTraceRecorder(Hook):
    """Record an output histogram every ``every`` interactions.

    Args:
        every: Snapshot cadence in interactions.  When ``None`` the recorder
            snapshots only at checkpoints (the simulator's convergence-check
            cadence), which is usually what experiments want.
        max_snapshots: Safety cap on stored snapshots.
    """

    def __init__(self, every: Optional[int] = None, max_snapshots: int = 100_000) -> None:
        self.every = every
        self.max_snapshots = max_snapshots
        self.snapshots: List[MetricsSnapshot] = []
        self._last_bucket = 0

    def _snapshot(self, simulator: "Simulator") -> None:
        if len(self.snapshots) >= self.max_snapshots:
            return
        histogram = simulator.output_counts()
        self.snapshots.append(
            MetricsSnapshot(
                interaction=simulator.interactions,
                output_histogram=histogram,
                distinct_states=simulator.state_space.distinct_states,
            )
        )

    def on_start(self, simulator: "Simulator") -> None:
        self._snapshot(simulator)

    def after_interaction(self, simulator: "Simulator", initiator: int, responder: int) -> None:
        if self.every is not None and simulator.interactions % self.every == 0:
            self._snapshot(simulator)

    def on_batch_event(self, simulator: "Simulator", *keys) -> None:
        # The batch backend advances many interactions per event, so ``every``
        # is honoured at event granularity: one snapshot per crossed bucket.
        if self.every is None:
            return
        bucket = simulator.interactions // self.every
        if bucket > self._last_bucket:
            self._last_bucket = bucket
            self._snapshot(simulator)

    def on_checkpoint(self, simulator: "Simulator", satisfied: bool) -> None:
        if self.every is None:
            self._snapshot(simulator)

    def on_end(self, simulator: "Simulator") -> None:
        self._snapshot(simulator)

    def agreement_trajectory(self) -> List[tuple]:
        """Return ``(interaction, agreement_fraction)`` pairs over the run."""
        return [(snap.interaction, snap.agreement_fraction()) for snap in self.snapshots]


class StateHistogramRecorder(Hook):
    """Record the multiset of state keys at the end of a run.

    The final histogram is what the backup-protocol lemmas reason about (e.g.
    Lemma 12's claim that level ``i`` ends up holding exactly ``n_i`` agents,
    where ``n_i`` is the ``i``-th bit of ``n``).
    """

    def __init__(self) -> None:
        self.final_histogram: Counter = Counter()

    def on_end(self, simulator: "Simulator") -> None:
        self.final_histogram = simulator.state_key_counts()

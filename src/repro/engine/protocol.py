"""The population-protocol abstraction used throughout the library.

A population protocol is specified by a state space ``Q``, a transition
function ``delta: Q x Q -> Q x Q`` applied to (initiator, responder) pairs,
and an output function ``omega: Q -> O`` (Section 1.1 of the paper).  This
module defines :class:`Protocol`, the abstract base class every protocol in
the library implements, plus small helpers shared by implementations.

Design notes
------------
* **States are mutable objects.**  ``transition`` mutates the two state
  objects in place (they are always distinct objects); this avoids per-
  interaction allocations, which matters because a single Theorem-2 run at
  ``n = 512`` performs hundreds of thousands of interactions.
* **Every state must expose a hashable key** (via a ``key()`` method, a
  ``__slots__`` dataclass, or by overriding :meth:`Protocol.state_key`).
  Keys drive state-space accounting (the paper's second efficiency measure)
  and convergence checks.
* **Uniformity is a declared property.**  Uniform protocols never receive the
  population size; non-uniform baselines/oracles must set ``uniform = False``
  so the experiment layer can exclude them from uniform suites.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from collections import Counter
from typing import Any, Generic, Hashable, Iterable, Sequence, Tuple, TypeVar

__all__ = ["Protocol", "state_fields", "generic_state_key", "deep_replace"]

S = TypeVar("S")


def state_fields(state: Any) -> Sequence[str]:
    """Return the ordered field names of a dataclass state object."""
    return tuple(f.name for f in dataclasses.fields(state))


def deep_replace(state: Any) -> Any:
    """Return a copy of a dataclass instance with nested dataclasses copied too.

    ``dataclasses.replace`` alone is shallow: a composed state such as the
    counting protocols' agents (a dataclass of component dataclasses) would
    share its mutable components with the copy, so mutating the copy corrupts
    the original.  This helper recurses into dataclass-typed field values.
    """
    values = {}
    for f in dataclasses.fields(state):
        value = getattr(state, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = deep_replace(value)
        values[f.name] = value
    return type(state)(**values)


def generic_state_key(state: Any) -> Hashable:
    """Best-effort hashable key for an arbitrary state object.

    Preference order: an explicit ``key()`` method, dataclass field values,
    the object itself when hashable, and finally ``repr``.
    """
    key_method = getattr(state, "key", None)
    if callable(key_method):
        return key_method()
    if dataclasses.is_dataclass(state) and not isinstance(state, type):
        return tuple(getattr(state, f.name) for f in dataclasses.fields(state))
    try:
        hash(state)
    except TypeError:
        return repr(state)
    return state


class Protocol(abc.ABC, Generic[S]):
    """Abstract base class for population protocols.

    Subclasses implement :meth:`initial_state`, :meth:`transition`, and
    :meth:`output`.  The engine treats states as opaque except for the
    hashable key returned by :meth:`state_key`.

    Attributes:
        name: Human-readable protocol name used in reports and experiment
            tables.  Defaults to the class name.
        uniform: ``True`` when the transition function does not depend on the
            population size ``n`` (the paper's uniformity requirement).
    """

    name: str = ""
    uniform: bool = True
    #: ``True`` when :meth:`transition` (and :meth:`delta_key`) never consume
    #: randomness, i.e. the pair of post-interaction states is a pure function
    #: of the pair of pre-interaction state keys.  The batch backend uses this
    #: to memoise key-level transitions per pair *type*.
    deterministic_transitions: bool = False

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.__dict__.get("name"):
            cls.name = cls.__name__

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def initial_state(self, agent_id: int) -> S:
        """Return the initial state of agent ``agent_id``.

        Uniform protocols must ignore ``agent_id`` for everything except
        symmetry breaking that the paper itself allows (the paper's input
        configurations are fully symmetric, so implementations here ignore
        it; it exists so that test fixtures can construct asymmetric
        starting configurations explicitly).
        """

    @abc.abstractmethod
    def transition(self, initiator: S, responder: S, rng: random.Random) -> None:
        """Apply one interaction, mutating ``initiator`` and ``responder``.

        ``rng`` models the synthetic-coin randomness available to agents
        (Appendix D); uniform protocols may use it for fair coin flips but
        must not use it to learn ``n``.
        """

    @abc.abstractmethod
    def output(self, state: S) -> Any:
        """Return the current output ``omega(state)`` of an agent."""

    # ------------------------------------------------------------- optional
    def state_key(self, state: S) -> Hashable:
        """Return a hashable key identifying ``state`` within the state space."""
        return generic_state_key(state)

    def copy_state(self, state: S) -> S:
        """Return an independent copy of ``state`` (used by recorders/tests).

        Nested dataclass fields are copied recursively: composed states (a
        dataclass of component dataclasses, the shape of every counting
        protocol) must not share mutable components with their copies, or the
        key-lifting adapter's representatives would be corrupted in place.
        """
        if dataclasses.is_dataclass(state) and not isinstance(state, type):
            return deep_replace(state)  # type: ignore[return-value]
        raise ProtocolCopyError(
            f"{type(self).__name__} states are not dataclasses; override copy_state()"
        )

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        """Return whether an (a, b) interaction could change the *configuration*.

        The configuration is the multiset of state keys, so an interaction
        that merely swaps the two participants' keys does not count as a
        change.  Used for *stabilisation* detection (a configuration is
        stable when no ordered pair of present state keys can change it) and
        by the batch backend to skip runs of configuration-preserving
        interactions in one geometric jump.  The default is conservative
        (``True``); protocols should override it — a ``False`` answer must be
        exact, a ``True`` answer may be conservative.
        """
        return True

    # --------------------------------------------------- key-level transitions
    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        """Apply one interaction at the level of state *keys*.

        Returns the pair of post-interaction keys for an (initiator,
        responder) interaction between agents whose states have keys
        ``key_a`` and ``key_b``.  This is the configuration-as-multiset view
        of the transition function: the batch backend only ever manipulates
        key histograms, never per-agent state objects, so a protocol that
        implements :meth:`delta_key` (together with :meth:`output_key`) can
        be simulated at population sizes where materialising ``n`` state
        objects is prohibitive.

        Implementations must be *behaviourally identical* to
        :meth:`transition` applied to states with the given keys.  Protocols
        that do not implement the key-level API are lifted automatically via
        :class:`repro.engine.backends.LiftedKeyTransitions` (which relies on
        :meth:`copy_state`).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement key-level transitions"
        )

    def output_key(self, key: Hashable) -> Any:
        """Return the output ``omega`` of an agent whose state has key ``key``.

        Must agree with :meth:`output` on every reachable state.  Required by
        the batch backend alongside :meth:`delta_key`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement key-level outputs"
        )

    def initial_key_counts(self, n: int) -> Counter:
        """Return the initial configuration as a histogram of state keys.

        The default materialises every initial state, which is correct but
        costs ``O(n)`` object constructions; protocols with closed-form
        initial configurations override it so the batch backend can start a
        run at ``n = 10**6`` and beyond in ``O(1)``.
        """
        counts: Counter = Counter()
        for agent_id in range(n):
            counts[self.state_key(self.initial_state(agent_id))] += 1
        return counts

    def supports_key_transitions(self) -> bool:
        """Whether this protocol natively implements the key-level API."""
        return (
            type(self).delta_key is not Protocol.delta_key
            and type(self).output_key is not Protocol.output_key
        )

    def describe(self) -> str:
        """One-line description used by the CLI and experiment reports."""
        return f"{self.name} (uniform={self.uniform})"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<{type(self).__name__} name={self.name!r} uniform={self.uniform}>"


class ProtocolCopyError(TypeError):
    """Raised when :meth:`Protocol.copy_state` cannot copy a state object."""

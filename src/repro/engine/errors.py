"""Exception hierarchy for the population-protocol simulation engine.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a protocol, simulator, or experiment is mis-configured.

    Examples include a population of fewer than two agents, a non-positive
    phase-clock modulus, or an experiment sweep with no population sizes.
    """


class ProtocolError(ReproError):
    """Raised when a protocol implementation violates the engine contract.

    For instance, a transition that returns states of the wrong type or an
    output function applied to a foreign state object.
    """


class UniformityError(ReproError):
    """Raised when a non-uniform protocol is used where uniformity is required.

    The paper's central requirement is that transition functions do not depend
    on the population size ``n``.  Experiments that validate the paper's
    uniform protocols refuse to run protocols that declare
    ``uniform = False``.
    """


class SimulationError(ReproError):
    """Raised when a simulation cannot make progress.

    Typical causes: an exhausted :class:`~repro.engine.scheduler.SequenceScheduler`,
    or a run that exceeded its interaction budget while ``require_convergence``
    was set.
    """


class ExperimentError(ReproError):
    """Raised when an experiment definition is invalid or its run fails."""

"""Metrics collected during simulations.

The paper measures protocols along two axes: the number of interactions until
convergence/stabilisation and the number of *states* used (the product of the
variable ranges actually reached, w.h.p.).  :class:`StateSpaceTracker`
measures the empirical analogue of the second axis: the number of distinct
agent states observed during a run, plus per-field value ranges so the
reported figure can be compared with the paper's per-variable bounds (e.g.
``level = O(log log n)``, ``k = O(log n)``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "StateSpaceTracker",
    "InteractionCounter",
    "AggregateInteractionCounter",
    "MetricsSnapshot",
]


class StateSpaceTracker:
    """Track the set of distinct agent-state keys observed in a run.

    Args:
        track_fields: When ``True`` and state keys are tuples, also track the
            set of distinct values per tuple position, which approximates the
            per-variable ranges the paper multiplies to obtain state bounds.
    """

    def __init__(self, track_fields: bool = True) -> None:
        self._seen: set = set()
        self._track_fields = track_fields
        self._field_values: List[set] = []

    def observe(self, key: Hashable) -> None:
        """Record one observed state key."""
        if key in self._seen:
            return
        self._seen.add(key)
        if self._track_fields and isinstance(key, tuple):
            while len(self._field_values) < len(key):
                self._field_values.append(set())
            for index, value in enumerate(key):
                self._field_values[index].add(value)

    def observe_all(self, keys: Iterable[Hashable]) -> None:
        """Record a batch of observed state keys."""
        for key in keys:
            self.observe(key)

    @property
    def distinct_states(self) -> int:
        """Number of distinct state keys observed so far."""
        return len(self._seen)

    @property
    def field_range_sizes(self) -> Tuple[int, ...]:
        """Number of distinct values observed per state-tuple position."""
        return tuple(len(values) for values in self._field_values)

    @property
    def field_range_product(self) -> int:
        """Product of per-field range sizes (the paper's state-count measure)."""
        product = 1
        for values in self._field_values:
            product *= max(1, len(values))
        return product

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly summary of the tracked state space."""
        return {
            "distinct_states": self.distinct_states,
            "field_range_sizes": list(self.field_range_sizes),
            "field_range_product": self.field_range_product,
        }


class InteractionCounter:
    """Count interactions globally and per agent.

    Per-agent counts support checks such as "every agent participated in at
    least one interaction", the event underlying the ``Omega(n log n)`` lower
    bound discussed in the introduction.
    """

    def __init__(self, n: int) -> None:
        self.total = 0
        self.per_agent: List[int] = [0] * n
        self.initiated: List[int] = [0] * n

    def record(self, initiator: int, responder: int) -> None:
        """Record one interaction between ``initiator`` and ``responder``."""
        self.total += 1
        self.per_agent[initiator] += 1
        self.per_agent[responder] += 1
        self.initiated[initiator] += 1

    def add_agent(self) -> None:
        """Extend the per-agent arrays for one agent joining the population."""
        self.per_agent.append(0)
        self.initiated.append(0)

    def remove_agent(self, index: int) -> None:
        """Drop agent ``index`` by swap-removal (mirrors the backend's order)."""
        self.per_agent[index] = self.per_agent[-1]
        self.per_agent.pop()
        self.initiated[index] = self.initiated[-1]
        self.initiated.pop()

    @property
    def min_participation(self) -> int:
        """Smallest number of interactions any single agent participated in."""
        return min(self.per_agent) if self.per_agent else 0

    @property
    def agents_never_interacted(self) -> int:
        """Number of agents that have not participated in any interaction."""
        return sum(1 for count in self.per_agent if count == 0)

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly summary (without the per-agent arrays)."""
        return {
            "total": self.total,
            "min_participation": self.min_participation,
            "agents_never_interacted": self.agents_never_interacted,
        }


class AggregateInteractionCounter:
    """Interaction totals without per-agent attribution.

    The batch backend operates on the configuration histogram, in which agent
    identities do not exist, so per-agent participation cannot be attributed.
    This counter exposes the same summary interface as
    :class:`InteractionCounter` with the per-agent quantities reported as
    zero and flagged as untracked in :meth:`as_dict`.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.total = 0

    @property
    def min_participation(self) -> int:
        """Not tracked at configuration level; always 0."""
        return 0

    @property
    def agents_never_interacted(self) -> int:
        """Not tracked at configuration level; always 0."""
        return 0

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-friendly summary."""
        return {"total": self.total, "per_agent_tracked": False}


@dataclass
class MetricsSnapshot:
    """A point-in-time snapshot of simulation metrics.

    Attributes:
        interaction: Number of interactions completed when the snapshot was taken.
        output_histogram: Multiset of agent outputs at that time.
        distinct_states: Distinct state keys observed up to that time.
    """

    interaction: int
    output_histogram: Counter = field(default_factory=Counter)
    distinct_states: int = 0

    def majority_output(self) -> Optional[Any]:
        """Return the most common output, or ``None`` for an empty histogram."""
        if not self.output_histogram:
            return None
        return self.output_histogram.most_common(1)[0][0]

    def agreement_fraction(self) -> float:
        """Fraction of agents currently reporting the most common output."""
        total = sum(self.output_histogram.values())
        if total == 0:
            return 0.0
        return self.output_histogram.most_common(1)[0][1] / total

"""Optional NumPy acceleration layer for the batch backend's hot loop.

The batch backend is sampler-bound: every event costs one Python-level
geometric-skip draw, one pair-type draw, and — in the pruning regime — an
``O(changed * K)`` :meth:`~repro.engine.backends.BatchBackend._update_pair_weights`
pass over the pair table.  This module removes those Python-level costs when
NumPy is importable, while leaving the pure-Python path byte-for-byte
untouched (the core library stays dependency-free; NumPy is an *extra*):

* :func:`resolve_accel` maps the ``accel="auto"|"numpy"|"python"`` knob to
  the active path.  ``"auto"`` picks NumPy exactly when it is importable
  (the ``REPRO_NO_NUMPY`` environment variable vetoes it — the hook the CI
  matrix uses to prove the fallback is really exercised) *and* the sampler
  knob was left on ``"auto"`` — a forced ``scan``/``alias``/``fenwick``/
  ``"vector"`` sampler is an explicit request for a specific per-draw
  structure in the Python hot loop and always wins.

* :class:`VectorSampler` implements the :class:`~repro.engine.samplers.
  WeightedSampler` interface via a cumulative-sum array + ``searchsorted``.
  Single draws follow the canonical one-uniform inverse-CDF contract of
  :mod:`repro.engine.samplers` (bit-identical to every other strategy on a
  static table); :meth:`VectorSampler.sample_block` amortises RNG and
  sampler overhead across hundreds of draws per Python-level call.

* :class:`DenseBlockKernel` drives the dense regime: ordered participant
  pairs are drawn in configurable blocks (two ``searchsorted`` batches plus
  a vectorised same-key rejection that realises exactly the uniform
  ordered-pair law).  Any histogram change invalidates the unconsumed
  remainder of the block — the pre-drawn pairs follow the stale law.

* :class:`FactorisedPairKernel` drives the pruning regime without ever
  materialising the pair-weight table.  Pair weights factorise as
  ``w(a, b) = c_a * c_b`` (``c_a * (c_a - 1)`` on the diagonal) and the
  activity predicate ``can_interaction_change`` depends on *keys only*, so
  the kernel keeps the count vector ``c``, the boolean activity matrix
  ``A``, and the row sums ``s = A @ c``.  A count change updates one entry
  of ``c`` and one vectorised column update of ``s`` — O(changed)
  Python-level operations per event instead of the O(changed * K) per-pair
  dict walk.  The active weight is ``W = c . s - sum(c[diag])`` exactly (all
  integer arithmetic), geometric skips are drawn in blocks from
  ``Geometric(W / T)``, and the active pair is sampled by the two-stage
  row/partner scheme with a diagonal rejection — the same law as the
  Python path's conditional draw over the materialised table.

Kernel randomness comes from a dedicated ``numpy.random.Generator`` seeded
from the run seed, so accelerated runs are reproducible; they are
*statistically* equivalent to the pure-Python path (same chain law, KS- and
chi-square-tested), not stream-identical.
"""

from __future__ import annotations

import math
import os
import random
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from .errors import ConfigurationError
from .samplers import WeightedSampler, _clean_weights, _validate_weight

__all__ = [
    "ACCEL_NAMES",
    "NO_NUMPY_ENV",
    "AccelCapacityError",
    "numpy_available",
    "require_numpy",
    "resolve_accel",
    "VectorSampler",
    "DenseBlockKernel",
    "FactorisedPairKernel",
]

#: Valid values for the ``accel=`` knob of the simulator and the batch
#: backend.  ``"auto"`` selects NumPy when available, falling back to the
#: pure-Python path automatically.
ACCEL_NAMES = ("auto", "numpy", "python")

#: Environment variable vetoing NumPy detection (any value other than ""
#: or "0").  The CI matrix's pure-python leg sets it so the fallback path is
#: provably exercised even on machines where NumPy is installed.
NO_NUMPY_ENV = "REPRO_NO_NUMPY"

#: Sampler knob values compatible with the NumPy kernels (the kernels
#: replace the per-event sampler machinery, so a forced Python strategy
#: cannot be honoured alongside them).
_ACCEL_SAMPLERS = ("auto", "vector")


def _load_numpy():
    """Import NumPy unless vetoed by :data:`NO_NUMPY_ENV`."""
    if os.environ.get(NO_NUMPY_ENV, "").strip() not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


_np = _load_numpy()


class AccelCapacityError(Exception):
    """A NumPy kernel outgrew its structures; the caller must fall back.

    Raised (not :class:`ConfigurationError`) so the batch backend can catch
    it mid-run, rebuild the pure-Python structures, and continue — a run
    must never die because a protocol turned out wider than expected.
    """


def numpy_available() -> bool:
    """Whether the acceleration layer can run (NumPy importable, not vetoed)."""
    return _np is not None


def require_numpy(context: str):
    """Return the numpy module or raise a :class:`ConfigurationError`."""
    if _np is None:
        if os.environ.get(NO_NUMPY_ENV, "").strip() not in ("", "0"):
            detail = f"NumPy is blocked by {NO_NUMPY_ENV}={os.environ[NO_NUMPY_ENV]!r}"
        else:
            detail = "NumPy is not installed (pip install 'repro-berenbrink-kr19[accel]')"
        raise ConfigurationError(f"{context} requires NumPy, but {detail}")
    return _np


def resolve_accel(accel: str, sampler: str = "auto") -> str:
    """Resolve the ``accel`` knob to the active path (``"numpy"``/``"python"``).

    ``"numpy"`` is a hard requirement (raises when NumPy is unavailable or a
    specific per-draw sampler strategy was forced alongside it); ``"auto"``
    prefers NumPy but silently falls back when it is absent *or* when the
    sampler knob pins any specific strategy — including ``"vector"``, which
    is a per-draw strategy choice for the Python hot loop, not a request
    for the block kernels.
    """
    if accel not in ACCEL_NAMES:
        raise ConfigurationError(
            f"unknown accel {accel!r}; expected one of {ACCEL_NAMES}"
        )
    if accel == "python":
        return "python"
    if accel == "numpy":
        require_numpy("accel='numpy'")
        if sampler not in _ACCEL_SAMPLERS:
            raise ConfigurationError(
                f"accel='numpy' replaces the weighted-sampler hot loop and "
                f"cannot honour sampler={sampler!r}; use sampler='auto' or "
                f"accel='python'"
            )
        return "numpy"
    if numpy_available() and sampler == "auto":
        return "numpy"
    return "python"


class VectorSampler(WeightedSampler):
    """Cumulative-sum + ``searchsorted`` strategy with block draws.

    Weights live in a slot-ordered list mirrored into an ``int64`` NumPy
    array whose cumulative sum is rebuilt lazily on the first draw after a
    change (O(K), in C).  Single draws consume exactly one uniform and
    evaluate the canonical inverse CDF of :mod:`repro.engine.samplers`:
    ``searchsorted(cum, u * total, side="right")`` returns the first slot
    whose cumulative weight exceeds the target — the same map as the linear
    scan, so static-weight draw sequences are bit-identical across
    strategies.  :meth:`sample_block` draws many inverse-CDF positions in
    one vectorised call from a ``numpy.random.Generator`` — the amortisation
    the dense block kernel is built on.

    Keys keep their slot for life (zero-width intervals are invisible to
    ``searchsorted`` except through the float end-corner, which is clamped
    back to a live slot exactly like the Fenwick descent); the structure
    compacts itself when more than half the slots are dead.
    """

    strategy = "vector"

    #: Compact (rebuild dropping dead slots) when over half the slots are
    #: dead and the table is at least this large.
    COMPACT_MIN_SIZE = 64

    def __init__(self, weights: Optional[Dict[Hashable, int]] = None) -> None:
        require_numpy("the 'vector' sampler strategy")
        super().__init__()
        self._keys: List[Hashable] = []
        self._slots: Dict[Hashable, int] = {}
        self._leaf: List[int] = []
        self._cum = None  # lazily built int64 cumulative-sum array
        self._total = 0
        self._dead = 0
        self.builds = 0  # lazy cumulative-array constructions
        self.block_draws = 0  # draws served through sample_block
        if weights:
            self.rebuild(weights)
            self.rebuilds = 0  # construction is not churn

    @property
    def total(self) -> int:
        return self._total

    def weights(self) -> Dict[Hashable, int]:
        return {
            key: self._leaf[slot]
            for key, slot in self._slots.items()
            if self._leaf[slot]
        }

    def stats(self) -> Dict[str, Any]:
        record = super().stats()
        record.update(
            slots=len(self._keys),
            dead_slots=self._dead,
            builds=self.builds,
            block_draws=self.block_draws,
        )
        return record

    def rebuild(self, weights: Dict[Hashable, int]) -> None:
        self.rebuilds += 1
        cleaned = _clean_weights(weights)
        self._keys = list(cleaned.keys())
        self._slots = {key: slot for slot, key in enumerate(self._keys)}
        self._leaf = [cleaned[key] for key in self._keys]
        self._total = sum(self._leaf)
        self._cum = None
        self._dead = 0

    def update(self, key: Hashable, weight: int) -> None:
        _validate_weight(weight)
        self.updates += 1
        slot = self._slots.get(key)
        if slot is None:
            if weight:
                self._slots[key] = len(self._keys)
                self._keys.append(key)
                self._leaf.append(weight)
                self._total += weight
                self._cum = None
            return
        old = self._leaf[slot]
        if weight == old:
            return
        self._leaf[slot] = weight
        self._total += weight - old
        self._cum = None
        if old and not weight:
            self._dead += 1
        elif weight and not old:
            self._dead -= 1
        size = len(self._keys)
        if size >= self.COMPACT_MIN_SIZE and self._dead * 2 > size:
            live = self.weights()
            self.rebuild(live)
            self.rebuilds -= 1  # compaction is maintenance, not API churn

    # ------------------------------------------------------------- internals
    def _ensure_cum(self):
        if self._cum is None:
            self._cum = _np.cumsum(_np.asarray(self._leaf, dtype=_np.int64))
            self.builds += 1
        return self._cum

    def _live_slot(self, slot: int) -> int:
        """Clamp a slot landed on by a float corner back to a live slot."""
        last = len(self._leaf) - 1
        if slot > last:
            slot = last
        while slot > 0 and not self._leaf[slot]:
            slot -= 1
        return slot

    def key_at(self, slot: int) -> Hashable:
        """Key stored at ``slot`` (kernel-facing; slots are stable)."""
        return self._keys[slot]

    def weight_at(self, slot: int) -> int:
        """Current weight stored at ``slot`` (kernel-facing)."""
        return self._leaf[slot]

    def weight_of(self, key: Hashable) -> int:
        """Current weight of ``key`` (0 when absent) without a dict copy."""
        slot = self._slots.get(key)
        return self._leaf[slot] if slot is not None else 0

    # ------------------------------------------------------------------ draws
    def sample(self, rng: random.Random) -> Hashable:
        self._require_positive_total()
        self.draws += 1
        cum = self._ensure_cum()
        target = rng.random() * self._total
        slot = int(_np.searchsorted(cum, target, side="right"))
        return self._keys[self._live_slot(slot)]

    def sample_block(self, generator, count: int):
        """Draw ``count`` slots in one vectorised call; returns an int array.

        Uses ``generator`` (a ``numpy.random.Generator``) rather than the
        canonical single-uniform contract — block draws are the statistical
        fast path, not the bit-identical one.
        """
        self._require_positive_total()
        self.draws += count
        self.block_draws += count
        cum = self._ensure_cum()
        targets = generator.random(count) * self._total
        slots = _np.searchsorted(cum, targets, side="right")
        last = len(self._leaf) - 1
        _np.clip(slots, 0, last, out=slots)
        # Float end-corner / dead-slot landings are rare; fix them pointwise.
        leaf = _np.asarray(self._leaf, dtype=_np.int64)
        for index in _np.nonzero(leaf[slots] == 0)[0]:
            slots[index] = self._live_slot(int(slots[index]))
        return slots


class DenseBlockKernel:
    """Blocked ordered-pair draws over the key histogram (dense regime).

    Draws configurable blocks of (initiator, responder) key pairs realising
    exactly the uniform ordered-pair law at key level: the initiator's key
    ``a`` with probability ``c_a / n`` and the responder's with
    ``(c_b - [a = b]) / (n - 1)``, the same-key case resolved by the
    vectorised rejection ``accept (a, a) with probability (c_a - 1) / c_a,
    else redraw the responder`` — the batch analogue of
    ``BatchBackend._sample_dense_pair``.

    Any count change invalidates the unconsumed remainder of the current
    block (the pre-drawn pairs follow the stale histogram law); the block
    size adapts — doubling after full consumption, halving after early
    invalidation — so churning configurations stop over-drawing.

    Block draws only amortise when the histogram holds still between
    events.  A protocol whose configuration changes on (nearly) every
    interaction — the composed counting stack's phase clocks tick every
    time — invalidates every block after a single event, at which point
    the vectorised draws cost more than the Python sampler they replace;
    :attr:`thrashing` reports that signature (same shape as the alias
    strategy's churn heuristic) so the batch backend can fall back.
    """

    MIN_BLOCK = 16
    MAX_BLOCK = 4096
    #: Blocks drawn before the thrash heuristic may engage.
    CHURN_BLOCKS = 8
    #: A block must serve at least this many events on average to amortise.
    CHURN_EVENT_FACTOR = 2

    def __init__(
        self,
        counts: Dict[Hashable, int],
        seed: int,
        block: int = 256,
    ) -> None:
        require_numpy("the dense block kernel")
        if block < 1:
            raise ConfigurationError("block size must be positive")
        self.sampler = VectorSampler(dict(counts))
        self._generator = _np.random.default_rng(seed)
        self._block = max(self.MIN_BLOCK, min(int(block), self.MAX_BLOCK))
        self._pairs_a = None
        self._pairs_b = None
        self._cursor = 0
        self.blocks = 0
        self.events = 0
        self.invalidations = 0
        self.rejections = 0

    # --------------------------------------------------------------- updates
    def set_count(self, key: Hashable, count: int) -> None:
        """Set one key's multiplicity, invalidating the pending block."""
        if self.sampler.weight_of(key) == count:
            return
        self.sampler.update(key, count)
        self.invalidate()

    def rebuild(self, counts: Dict[Hashable, int]) -> None:
        """Replace the whole histogram (restarts, wholesale corruption)."""
        self.sampler.rebuild(dict(counts))
        self.invalidate()

    def invalidate(self) -> None:
        """Discard the unconsumed remainder of the current block."""
        if self._pairs_a is not None:
            drawn = len(self._pairs_a)
            if self._cursor < drawn:
                self.invalidations += 1
                # Early invalidation: the next block should be smaller.
                if self._cursor * 4 < drawn:
                    self._block = max(self.MIN_BLOCK, self._block // 2)
        self._pairs_a = None
        self._pairs_b = None
        self._cursor = 0

    @property
    def thrashing(self) -> bool:
        """Whether the histogram churns too fast for blocks to amortise."""
        return (
            self.blocks >= self.CHURN_BLOCKS
            and self.events < self.CHURN_EVENT_FACTOR * self.blocks
        )

    # ----------------------------------------------------------------- draws
    def _draw_block(self) -> None:
        sampler = self.sampler
        generator = self._generator
        size = self._block
        a = sampler.sample_block(generator, size)
        b = sampler.sample_block(generator, size)
        # Same-key rejection, vectorised: accept (a, a) with probability
        # (c_a - 1) / c_a, else redraw the responder (only the responder —
        # the initiator's law is unconditional).
        leaf = _np.asarray(sampler._leaf, dtype=_np.int64)
        same = a == b
        while True:
            candidates = _np.nonzero(same)[0]
            if not len(candidates):
                break
            counts_a = leaf[a[candidates]]
            accept = generator.random(len(candidates)) * counts_a < counts_a - 1
            rejected = candidates[~accept]
            self.rejections += len(rejected)
            if not len(rejected):
                break
            b[rejected] = sampler.sample_block(generator, len(rejected))
            same = _np.zeros_like(same)
            same[rejected] = a[rejected] == b[rejected]
        self._pairs_a = a
        self._pairs_b = b
        self._cursor = 0
        self.blocks += 1

    def next_pair(self) -> Tuple[Hashable, Hashable]:
        """Return the next (initiator key, responder key) ordered pair."""
        if self._pairs_a is None or self._cursor >= len(self._pairs_a):
            if self._pairs_a is not None:
                # Fully consumed: the histogram held still, draw bigger.
                self._block = min(self.MAX_BLOCK, self._block * 2)
            self._draw_block()
        cursor = self._cursor
        self._cursor = cursor + 1
        self.events += 1
        sampler = self.sampler
        return (
            sampler.key_at(int(self._pairs_a[cursor])),
            sampler.key_at(int(self._pairs_b[cursor])),
        )

    def stats(self) -> Dict[str, Any]:
        record = {
            "kernel": "dense-block",
            "block_size": self._block,
            "blocks": self.blocks,
            "events": self.events,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
        }
        record.update(
            {f"sampler_{key}": value for key, value in self.sampler.stats().items()}
        )
        return record


class FactorisedPairKernel:
    """Pruning-regime event sampling from factorised pair weights.

    Maintains, over the slot-indexed live key set:

    * ``c`` — the count vector (``int64``);
    * ``A`` — the boolean activity matrix, ``A[a, b] =
      can_interaction_change(key_a, key_b)``.  Activity depends on keys
      only, so ``A`` entries are computed once when a key first appears and
      never touched by count changes;
    * ``s = A @ c`` — the row sums, maintained incrementally: a count
      change ``c_d += delta`` is one column update ``s += delta * A[:, d]``;
    * ``D = sum(c[a] for a with A[a, a])`` — the diagonal correction.

    The exact active weight is then ``W = c . s - D`` (every term integer:
    ``sum_{a != b, active} c_a c_b + sum_{diag active} c_a (c_a - 1)``),
    which drives the ``Geometric(W / T)`` skip draws — blocked, with the
    whole block (skips *and* row choices) invalidated whenever a count
    changes, since both follow the stale weights.

    An event's pair is drawn by the two-stage factorised scheme: row ``a``
    with probability ``c_a s_a / (c . s)``, partner ``b`` with probability
    ``c_b A[a, b] / s_a``, accepting same-key proposals with probability
    ``(c_a - 1) / c_a`` and redrawing the whole pair otherwise — the
    accepted law is exactly ``w(a, b) / W`` over active ordered pairs.
    """

    #: Hard bound on the key-set width (live + dead slots after
    #: compaction): the K x K activity matrix at this size costs ~16 MB;
    #: wider protocols fall back to the Python path.
    MATRIX_LIMIT = 4096

    #: Compact (rebuild dropping dead slots) when over half the slots are
    #: dead and the table is at least this large — long churny runs mint
    #: transient keys, and without compaction every key *ever seen* would
    #: count against :attr:`MATRIX_LIMIT`.
    COMPACT_MIN_SIZE = 64

    MIN_BLOCK = 16
    MAX_BLOCK = 1024

    def __init__(
        self,
        counts: Dict[Hashable, int],
        can_change: Callable[[Hashable, Hashable], bool],
        seed: int,
        block: int = 128,
    ) -> None:
        require_numpy("the factorised pair kernel")
        if block < 1:
            raise ConfigurationError("block size must be positive")
        self._can_change = can_change
        self._generator = _np.random.default_rng(seed)
        self._block = max(self.MIN_BLOCK, min(int(block), self.MAX_BLOCK))
        self._keys: List[Hashable] = []
        self._slots: Dict[Hashable, int] = {}
        capacity = 64
        self._c = _np.zeros(capacity, dtype=_np.int64)
        self._A = _np.zeros((capacity, capacity), dtype=bool)
        self._s = _np.zeros(capacity, dtype=_np.int64)
        self._diag_mass = 0
        self._dead = 0  # slots whose count is 0 (keys no longer live)
        self._active_weight: Optional[int] = None
        # Pending block state: skips, row choices, and the cached row cumsum.
        self._skips = None
        self._skip_cursor = 0
        self._rows = None
        self._row_cursor = 0
        self._row_cum = None
        self._partner_cum: Dict[int, Any] = {}
        self.draws = 0
        self.updates = 0
        self.update_columns = 0  # count-change column updates (O(changed) proof)
        self.blocks = 0
        self.invalidations = 0
        self.rejections = 0
        for key, count in counts.items():
            self.set_count(key, count)

    @property
    def size(self) -> int:
        """Number of slots in use (live and dead keys)."""
        return len(self._keys)

    # --------------------------------------------------------------- updates
    def _grow(self, needed: int) -> None:
        capacity = len(self._c)
        while capacity < needed:
            capacity *= 2
        if capacity == len(self._c):
            return
        c = _np.zeros(capacity, dtype=_np.int64)
        c[: len(self._c)] = self._c
        s = _np.zeros(capacity, dtype=_np.int64)
        s[: len(self._s)] = self._s
        matrix = _np.zeros((capacity, capacity), dtype=bool)
        size = self.size
        matrix[:size, :size] = self._A[:size, :size]
        self._c, self._s, self._A = c, s, matrix

    def ensure_key(self, key: Hashable) -> int:
        """Slot of ``key``, assigning one (and its activity row) when new."""
        slot = self._slots.get(key)
        if slot is not None:
            return slot
        size = self.size
        if size >= self.MATRIX_LIMIT:
            raise AccelCapacityError(
                f"key-set width exceeded the factorised kernel's "
                f"{self.MATRIX_LIMIT}-key activity matrix"
            )
        self._grow(size + 1)
        slot = size
        self._keys.append(key)
        self._slots[key] = slot
        # The slot is born with count 0; set_count revives it immediately
        # in the common case, and compaction reclaims it otherwise.
        self._dead += 1
        can_change = self._can_change
        matrix = self._A
        row_sum = 0
        c = self._c
        for other_slot, other_key in enumerate(self._keys):
            forward = bool(can_change(key, other_key))
            matrix[slot, other_slot] = forward
            if other_slot != slot:
                matrix[other_slot, slot] = bool(can_change(other_key, key))
            if forward:
                row_sum += int(c[other_slot])
        self._s[slot] = row_sum
        # The new key enters with count 0, so no other row sum changes and
        # the diagonal mass is unaffected until set_count raises its count.
        return slot

    def set_count(self, key: Hashable, count: int) -> None:
        """Set one key's multiplicity — O(changed) Python-level work.

        One entry of ``c``, one vectorised column update of ``s``, one
        diagonal-mass adjustment; no per-pair bookkeeping.  Invalidates the
        pending skip/row block (its distribution followed the old weights).
        """
        if count < 0:
            raise ConfigurationError("key counts must be non-negative")
        slot = self.ensure_key(key)
        old = int(self._c[slot])
        delta = count - old
        if delta == 0:
            return
        self.updates += 1
        self.update_columns += 1
        size = self.size
        self._c[slot] = count
        self._s[:size] += delta * self._A[:size, slot]
        if self._A[slot, slot]:
            self._diag_mass += delta
        self._active_weight = None
        self._drop_block()
        if old and not count:
            self._dead += 1
        elif count and not old:
            self._dead -= 1
        if size >= self.COMPACT_MIN_SIZE and self._dead * 2 > size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild over live keys only, reclaiming dead slots.

        Keys whose count returned to 0 keep consuming matrix width until
        compaction; without it a long churny run minting transient keys
        would walk into :attr:`MATRIX_LIMIT` (and a spurious Python
        fallback) with only a handful of *live* keys.  Activity lookups
        are served from the caller's ``can_interaction_change`` cache, so
        the O(live^2) matrix rebuild is dict reads, not protocol calls.
        """
        live = [
            (key, int(self._c[slot]))
            for key, slot in self._slots.items()
            if self._c[slot]
        ]
        capacity = 64
        while capacity < max(len(live), 1):
            capacity *= 2
        self._keys = []
        self._slots = {}
        self._c = _np.zeros(capacity, dtype=_np.int64)
        self._A = _np.zeros((capacity, capacity), dtype=bool)
        self._s = _np.zeros(capacity, dtype=_np.int64)
        self._diag_mass = 0
        self._dead = 0
        self._active_weight = None
        self._drop_block()
        can_change = self._can_change
        for slot, (key, _count) in enumerate(live):
            self._keys.append(key)
            self._slots[key] = slot
            for other_slot in range(slot + 1):
                other_key = self._keys[other_slot]
                self._A[slot, other_slot] = bool(can_change(key, other_key))
                if other_slot != slot:
                    self._A[other_slot, slot] = bool(can_change(other_key, key))
        for key, count in live:
            slot = self._slots[key]
            self._c[slot] = count
            if self._A[slot, slot]:
                self._diag_mass += count
        size = len(live)
        if size:
            self._s[:size] = self._A[:size, :size] @ self._c[:size]

    def resync(self, counts: Dict[Hashable, int]) -> None:
        """Reconcile the kernel with ``counts`` after a wholesale edit."""
        for key in list(self._slots):
            if key not in counts:
                self.set_count(key, 0)
        for key, count in counts.items():
            self.set_count(key, count)

    # ------------------------------------------------------------- weights
    def active_weight(self) -> int:
        """Exact total weight of active ordered pairs (``W = c . s - D``)."""
        if self._active_weight is None:
            size = self.size
            self._active_weight = int(
                _np.dot(self._c[:size], self._s[:size])
            ) - self._diag_mass
        return self._active_weight

    def pair_weight(self, key_a: Hashable, key_b: Hashable) -> int:
        """Implied weight of one ordered pair (differential-test hook)."""
        slot_a = self._slots.get(key_a)
        slot_b = self._slots.get(key_b)
        if slot_a is None or slot_b is None or not self._A[slot_a, slot_b]:
            return 0
        count_a = int(self._c[slot_a])
        if slot_a == slot_b:
            return count_a * (count_a - 1)
        return count_a * int(self._c[slot_b])

    def pair_weights(self) -> Dict[Tuple[Hashable, Hashable], int]:
        """The implied active-pair weight table (positive entries only)."""
        table: Dict[Tuple[Hashable, Hashable], int] = {}
        for key_a, slot_a in self._slots.items():
            if not self._c[slot_a]:
                continue
            for key_b, slot_b in self._slots.items():
                if not self._c[slot_b]:
                    continue
                weight = self.pair_weight(key_a, key_b)
                if weight > 0:
                    table[(key_a, key_b)] = weight
        return table

    # ----------------------------------------------------------------- draws
    def _drop_block(self) -> None:
        if self._skips is not None and self._skip_cursor < len(self._skips):
            self.invalidations += 1
            if self._skip_cursor * 4 < len(self._skips):
                self._block = max(self.MIN_BLOCK, self._block // 2)
        self._skips = None
        self._skip_cursor = 0
        self._rows = None
        self._row_cursor = 0
        self._row_cum = None
        self._partner_cum.clear()

    def _draw_block(self, ordered_pairs: int) -> None:
        weight = self.active_weight()
        generator = self._generator
        size = self._block
        if weight >= ordered_pairs:
            skips = _np.zeros(size, dtype=_np.int64)
        else:
            # Geometric(p) skips, p = W / T, via the inverse CDF on
            # uniform = 1 - u in (0, 1] — the Python path's formula,
            # vectorised.
            uniforms = 1.0 - generator.random(size)
            log_q = math.log1p(-weight / ordered_pairs)
            skips = (_np.log(uniforms) / log_q).astype(_np.int64)
        self._skips = skips
        self._skip_cursor = 0
        self._rows = None
        self._row_cursor = 0
        self.blocks += 1

    def _ensure_rows(self) -> None:
        if self._rows is not None and self._row_cursor < len(self._rows):
            return
        size = self.size
        if self._row_cum is None:
            proposal = self._c[:size] * self._s[:size]
            self._row_cum = _np.cumsum(proposal)
        cum = self._row_cum
        total = int(cum[-1])
        count = max(len(self._skips) if self._skips is not None else 0, self.MIN_BLOCK)
        targets = self._generator.random(count) * total
        rows = _np.searchsorted(cum, targets, side="right")
        _np.clip(rows, 0, size - 1, out=rows)
        self._rows = rows
        self._row_cursor = 0

    def _next_row(self) -> int:
        self._ensure_rows()
        cursor = self._row_cursor
        self._row_cursor = cursor + 1
        row = int(self._rows[cursor])
        # Float end-corner: walk back over zero-width row intervals.
        cum = self._row_cum
        while row > 0 and cum[row] == cum[row - 1]:
            row -= 1
        return row

    def _draw_partner(self, row: int) -> int:
        cum = self._partner_cum.get(row)
        if cum is None:
            size = self.size
            cum = _np.cumsum(self._c[:size] * self._A[row, :size])
            self._partner_cum[row] = cum
        total = int(cum[-1])
        target = self._generator.random() * total
        partner = int(_np.searchsorted(cum, target, side="right"))
        if partner >= len(cum):
            partner = len(cum) - 1
        while partner > 0 and cum[partner] == cum[partner - 1]:
            partner -= 1
        return partner

    def next_skip(self, ordered_pairs: int) -> int:
        """Number of configuration-preserving interactions before the event."""
        if self._skips is None or self._skip_cursor >= len(self._skips):
            if self._skips is not None:
                self._block = min(self.MAX_BLOCK, self._block * 2)
            self._draw_block(ordered_pairs)
        skip = int(self._skips[self._skip_cursor])
        self._skip_cursor += 1
        return skip

    def next_pair(self) -> Tuple[Hashable, Hashable]:
        """Sample one active ordered pair type from the factorised weights."""
        self.draws += 1
        c = self._c
        generator = self._generator
        while True:
            row = self._next_row()
            partner = self._draw_partner(row)
            if partner != row:
                break
            count = int(c[row])
            if count > 1 and generator.random() * count < count - 1:
                break
            # Rejected diagonal proposal: redraw the whole pair.
            self.rejections += 1
        return self._keys[row], self._keys[partner]

    def stats(self) -> Dict[str, Any]:
        return {
            "kernel": "factorised-pair",
            "block_size": self._block,
            "slots": self.size,
            "dead_slots": self._dead,
            "draws": self.draws,
            "updates": self.updates,
            "update_columns": self.update_columns,
            "blocks": self.blocks,
            "invalidations": self.invalidations,
            "rejections": self.rejections,
        }

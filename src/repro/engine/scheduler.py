"""Interaction schedulers.

The probabilistic population model draws, at every discrete time step, an
ordered pair of distinct agents uniformly at random: the *initiator* and the
*responder*.  :class:`UniformRandomScheduler` implements exactly that model
and is used by every experiment.  Deterministic schedulers are provided for
tests (replaying adversarial interaction sequences, stressing stability
proofs which quantify over *all* schedules).
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from .errors import ConfigurationError, SimulationError

__all__ = [
    "Scheduler",
    "UniformRandomScheduler",
    "SequenceScheduler",
    "RoundRobinScheduler",
]

Pair = Tuple[int, int]


class Scheduler(abc.ABC):
    """Chooses the ordered (initiator, responder) pair for each interaction."""

    @abc.abstractmethod
    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        """Return the ordered agent pair for interaction number ``interaction``.

        Args:
            n: Population size.
            rng: The simulation's scheduler random stream.
            interaction: Zero-based index of the interaction being scheduled.
        """

    def reset(self) -> None:
        """Reset any internal iteration state (no-op for stateless schedulers)."""


class UniformRandomScheduler(Scheduler):
    """The standard probabilistic scheduler of the population model.

    Each interaction selects an ordered pair of two *distinct* agents
    independently and uniformly at random among the ``n * (n - 1)`` ordered
    pairs.
    """

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        initiator = rng.randrange(n)
        responder = rng.randrange(n - 1)
        if responder >= initiator:
            responder += 1
        return initiator, responder


class SequenceScheduler(Scheduler):
    """Replay a fixed sequence of ordered pairs.

    Useful for unit tests and for exercising worst-case schedules in the
    stability arguments (the paper's stable protocols must be correct under
    *every* fair schedule, not just the random one).

    Args:
        pairs: The ordered pairs to replay.
        cycle: When ``True`` the sequence repeats forever; when ``False`` the
            scheduler raises :class:`SimulationError` once exhausted.
    """

    def __init__(self, pairs: Iterable[Pair], cycle: bool = False) -> None:
        self._pairs: List[Pair] = [(int(a), int(b)) for a, b in pairs]
        if not self._pairs:
            raise ConfigurationError("SequenceScheduler requires at least one pair")
        for a, b in self._pairs:
            if a == b:
                raise ConfigurationError("scheduler pairs must consist of distinct agents")
        self._cycle = cycle
        self._index = 0

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if self._index >= len(self._pairs):
            if not self._cycle:
                raise SimulationError("SequenceScheduler exhausted its pair list")
            self._index = 0
        pair = self._pairs[self._index]
        self._index += 1
        if pair[0] >= n or pair[1] >= n:
            raise ConfigurationError(
                f"scheduled pair {pair} out of range for population size {n}"
            )
        return pair

    def reset(self) -> None:
        self._index = 0


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through all ordered pairs of distinct agents.

    This scheduler is *fair* (every pair occurs infinitely often), which makes
    it a convenient deterministic stand-in for probability-1 stabilisation
    tests of the always-correct backup protocols.
    """

    def __init__(self, shuffle_each_round: bool = False) -> None:
        self._shuffle = shuffle_each_round
        self._order: List[Pair] = []
        self._index = 0
        self._n = -1

    def _rebuild(self, n: int, rng: random.Random) -> None:
        self._order = [(a, b) for a in range(n) for b in range(n) if a != b]
        if self._shuffle:
            rng.shuffle(self._order)
        self._index = 0
        self._n = n

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        if n != self._n or self._index >= len(self._order):
            self._rebuild(n, rng)
        pair = self._order[self._index]
        self._index += 1
        return pair

    def reset(self) -> None:
        self._index = 0
        self._n = -1

"""Interaction schedulers.

The probabilistic population model draws, at every discrete time step, an
ordered pair of distinct agents uniformly at random: the *initiator* and the
*responder*.  :class:`UniformRandomScheduler` implements exactly that model
and is used by every experiment.  Deterministic schedulers are provided for
tests (replaying adversarial interaction sequences, stressing stability
proofs which quantify over *all* schedules).
"""

from __future__ import annotations

import abc
import itertools
import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from .errors import ConfigurationError, SimulationError

__all__ = [
    "Scheduler",
    "UniformRandomScheduler",
    "SequenceScheduler",
    "RoundRobinScheduler",
    "PartitionedScheduler",
    "BiasedScheduler",
]

Pair = Tuple[int, int]


class Scheduler(abc.ABC):
    """Chooses the ordered (initiator, responder) pair for each interaction."""

    @abc.abstractmethod
    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        """Return the ordered agent pair for interaction number ``interaction``.

        Args:
            n: Population size.
            rng: The simulation's scheduler random stream.
            interaction: Zero-based index of the interaction being scheduled.
        """

    def reset(self) -> None:
        """Reset any internal iteration state (no-op for stateless schedulers)."""


class UniformRandomScheduler(Scheduler):
    """The standard probabilistic scheduler of the population model.

    Each interaction selects an ordered pair of two *distinct* agents
    independently and uniformly at random among the ``n * (n - 1)`` ordered
    pairs.
    """

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        initiator = rng.randrange(n)
        responder = rng.randrange(n - 1)
        if responder >= initiator:
            responder += 1
        return initiator, responder


class SequenceScheduler(Scheduler):
    """Replay a fixed sequence of ordered pairs.

    Useful for unit tests and for exercising worst-case schedules in the
    stability arguments (the paper's stable protocols must be correct under
    *every* fair schedule, not just the random one).

    Args:
        pairs: The ordered pairs to replay.
        cycle: When ``True`` the sequence repeats forever; when ``False`` the
            scheduler raises :class:`SimulationError` once exhausted.
    """

    def __init__(self, pairs: Iterable[Pair], cycle: bool = False) -> None:
        self._pairs: List[Pair] = [(int(a), int(b)) for a, b in pairs]
        if not self._pairs:
            raise ConfigurationError("SequenceScheduler requires at least one pair")
        for a, b in self._pairs:
            if a == b:
                raise ConfigurationError("scheduler pairs must consist of distinct agents")
        self._cycle = cycle
        self._index = 0

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if self._index >= len(self._pairs):
            if not self._cycle:
                raise SimulationError("SequenceScheduler exhausted its pair list")
            self._index = 0
        pair = self._pairs[self._index]
        self._index += 1
        if pair[0] >= n or pair[1] >= n:
            raise ConfigurationError(
                f"scheduled pair {pair} out of range for population size {n}"
            )
        return pair

    def reset(self) -> None:
        self._index = 0


class PartitionedScheduler(Scheduler):
    """Partition the population into residue-class blocks that only interact
    internally.

    Agent ``i`` belongs to block ``i mod blocks``; each interaction draws the
    initiator uniformly over the whole population (so a block is selected
    with probability proportional to its size) and the responder uniformly
    over the other members of the initiator's block.  With ``blocks=1`` this
    is exactly the uniform scheduler.

    The residue-class assignment is what makes the scheduler robust to
    *churn*: blocks always cover ``range(n)`` however ``n`` changes, so
    scenario timelines can partition, churn, and later merge freely.
    :meth:`set_blocks` flips the partition at runtime — the scenario
    subsystem's ``partition`` and ``merge`` events call it mid-run.

    This scheduler models an adversarial communication topology, not the
    uniform population model; it requires the per-agent backend.
    """

    def __init__(self, blocks: int = 1) -> None:
        self.set_blocks(blocks)

    def set_blocks(self, blocks: int) -> None:
        """Re-partition into ``blocks`` residue classes (1 = merged)."""
        if blocks < 1:
            raise ConfigurationError("blocks must be at least 1")
        self.blocks = blocks

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        blocks = self.blocks
        if n <= blocks:
            raise SimulationError(
                f"partition into {blocks} blocks leaves no block with two of "
                f"the {n} agents"
            )
        while True:
            initiator = rng.randrange(n)
            residue = initiator % blocks
            size = (n - residue + blocks - 1) // blocks
            if size >= 2:
                break
        position = (initiator - residue) // blocks
        other = rng.randrange(size - 1)
        if other >= position:
            other += 1
        return initiator, residue + other * blocks


class BiasedScheduler(Scheduler):
    """Non-uniform pair selection: the first ``hubs`` agents are over-sampled.

    Both the initiator and the responder are drawn independently (until
    distinct) from the weighted distribution in which agents with index below
    ``hubs`` carry weight ``weight`` and everyone else weight 1 — a crude hub
    topology stressing protocols whose analyses assume exchangeable uniform
    scheduling.  ``weight=1`` degenerates to the uniform scheduler (up to the
    rejection step).  Requires the per-agent backend.
    """

    def __init__(self, hubs: int, weight: float) -> None:
        if hubs < 0:
            raise ConfigurationError("hubs must be non-negative")
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        self.hubs = hubs
        self.weight = float(weight)

    def _draw(self, n: int, rng: random.Random, exclude: int = -1) -> int:
        hubs = min(self.hubs, n)
        hub_mass = hubs * self.weight
        total = hub_mass + (n - hubs)
        while True:
            x = rng.random() * total
            if x < hub_mass:
                agent = int(x / self.weight)
            else:
                agent = hubs + int(x - hub_mass)
            if agent >= n:  # floating-point edge
                agent = n - 1
            if agent != exclude:
                return agent

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        initiator = self._draw(n, rng)
        return initiator, self._draw(n, rng, exclude=initiator)


class RoundRobinScheduler(Scheduler):
    """Cycle deterministically through all ordered pairs of distinct agents.

    This scheduler is *fair* (every pair occurs infinitely often), which makes
    it a convenient deterministic stand-in for probability-1 stabilisation
    tests of the always-correct backup protocols.
    """

    def __init__(self, shuffle_each_round: bool = False) -> None:
        self._shuffle = shuffle_each_round
        self._order: List[Pair] = []
        self._index = 0
        self._n = -1

    def _rebuild(self, n: int, rng: random.Random) -> None:
        self._order = [(a, b) for a in range(n) for b in range(n) if a != b]
        if self._shuffle:
            rng.shuffle(self._order)
        self._index = 0
        self._n = n

    def next_pair(self, n: int, rng: random.Random, interaction: int) -> Pair:
        if n < 2:
            raise ConfigurationError("the population model requires at least two agents")
        if n != self._n or self._index >= len(self._order):
            self._rebuild(n, rng)
        pair = self._order[self._index]
        self._index += 1
        return pair

    def reset(self) -> None:
        self._index = 0
        self._n = -1

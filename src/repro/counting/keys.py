"""Key <-> state codecs for the composed counting protocols.

The batch backend (:mod:`repro.engine.backends`) manipulates configurations
as histograms of *state keys* and needs key-level transitions.  Until PR 2
the counting stack relied on the generic
:class:`~repro.engine.backends.LiftedKeyTransitions` adapter, which keeps one
representative state object per observed key — an unbounded registry that is
neither picklable (the multiprocessing sweep driver spawns fresh workers) nor
cheap (two deep copies per event).  The composed protocols' keys are in fact
*self-describing*: every component key is the ordered tuple of the component
dataclass's fields, so a state with the observed behaviour can be rebuilt
from the key alone.  This module hosts the decoders.

Exactness
---------
The composed protocols reduce the phase-clock counter in their ``state_key``
to ``phase % PHASE_RESIDUE_MODULUS`` (the raw counter is unbounded
bookkeeping).  Decoding therefore yields a state whose ``clock.phase`` is the
residue, not the original counter — which is *behaviourally identical*,
because every consumer of the phase divides ``PHASE_RESIDUE_MODULUS = 40``:

* the Search Protocol round structure uses ``phase % 5``;
* the slow leader election's signal tag uses ``phase % 4``
  (:class:`~repro.primitives.params.LeaderElectionParameters.signal_tag_modulus`);
* `FastLeaderElection`'s broadcast tag uses ``phase % 8``
  (:class:`~repro.primitives.params.FastLeaderElectionParameters.tag_modulus`);

and the only mutation of the counter is ``phase += 1`` on a clock tick, which
commutes with taking residues.  Stage-internal phase counters (approximation
``i``, refinement/error-detection ``phase'``) are bounded and stored in full.

Protocols whose parameters use non-default tag moduli that do not divide 40
fall outside this argument; :func:`residue_compatible` checks the condition
so such protocols can refuse native key transitions instead of silently
diverging.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from ..primitives.fast_leader_election import FastLeaderElectionState
from ..primitives.junta import JuntaState
from ..primitives.leader_election import LeaderElectionState
from ..primitives.phase_clock import PhaseClockState
from .approximation_stage import ApproximationStageState
from .backup import ApproximateBackupState, ExactBackupState
from .error_detection import ErrorDetectionState
from .refinement_stage import RefinementStageState
from .search import SearchState

__all__ = [
    "PHASE_RESIDUE_MODULUS",
    "residue_compatible",
    "clock_key",
    "phase_distance",
    "junta_from_key",
    "clock_from_key",
    "election_from_key",
    "fast_election_from_key",
    "search_from_key",
    "approximation_from_key",
    "refinement_from_key",
    "detection_from_key",
    "approximate_backup_from_key",
    "exact_backup_from_key",
]

#: The residue modulus applied to the phase-clock counter in the composed
#: protocols' ``state_key``; the lcm of every per-phase consumer (5, 4, 8).
PHASE_RESIDUE_MODULUS = 40


def residue_compatible(*tag_moduli: int) -> bool:
    """Whether all given tag moduli divide :data:`PHASE_RESIDUE_MODULUS`.

    The key-level transitions are exact iff every consumer of the phase
    counter reads it modulo a divisor of the residue modulus (see module
    docstring); protocols check this once at construction.
    """
    return all(
        modulus > 0 and PHASE_RESIDUE_MODULUS % modulus == 0 for modulus in tag_moduli
    )


def clock_key(clock: PhaseClockState) -> Tuple[int, int, bool]:
    """The reduced phase-clock key used by every composed protocol."""
    return (clock.clock, clock.phase % PHASE_RESIDUE_MODULUS, clock.first_tick)


def phase_distance(phase_u: int, phase_v: int) -> int:
    """Circular distance between two phase counters modulo the residue.

    Healthy phase clocks keep interacting agents within one phase of each
    other (Lemma 5), so drift checks that compare phase counters must read
    them through this circular metric to stay exact under the mod-40 keys:
    a plain ``abs()`` of residues would see a healthy 39/40 pair as 39 apart.
    Genuine drift is flagged as soon as it reaches 2, far below the wrap.
    """
    diff = (phase_u - phase_v) % PHASE_RESIDUE_MODULUS
    return min(diff, PHASE_RESIDUE_MODULUS - diff)


# Every component ``key()`` is the ordered tuple of the dataclass's fields,
# so decoding is positional construction.  Each decoder returns a *fresh*
# mutable state safe to hand to ``transition()``.

def junta_from_key(key: Hashable) -> JuntaState:
    return JuntaState(*key)  # type: ignore[misc]


def clock_from_key(key: Hashable) -> PhaseClockState:
    return PhaseClockState(*key)  # type: ignore[misc]


def election_from_key(key: Hashable) -> LeaderElectionState:
    return LeaderElectionState(*key)  # type: ignore[misc]


def fast_election_from_key(key: Hashable) -> FastLeaderElectionState:
    return FastLeaderElectionState(*key)  # type: ignore[misc]


def search_from_key(key: Hashable) -> SearchState:
    return SearchState(*key)  # type: ignore[misc]


def approximation_from_key(key: Hashable) -> ApproximationStageState:
    return ApproximationStageState(*key)  # type: ignore[misc]


def refinement_from_key(key: Hashable) -> RefinementStageState:
    return RefinementStageState(*key)  # type: ignore[misc]


def detection_from_key(key: Hashable) -> ErrorDetectionState:
    return ErrorDetectionState(*key)  # type: ignore[misc]


def approximate_backup_from_key(key: Hashable, relaxed: bool = False) -> ApproximateBackupState:
    """Decode the approximate-backup component.

    In the relaxed-output mode of Theorem 1(3) the ``k_max`` broadcast is
    dropped from the key (the paper drops the variable altogether); decoding
    restores it as ``max(k, 0)``, matching a fresh incarnation in which the
    agent has only ever seen its own pile.
    """
    if relaxed:
        k, instance = key  # type: ignore[misc]
        return ApproximateBackupState(k=k, k_max=max(k, 0), instance=instance)
    return ApproximateBackupState(*key)  # type: ignore[misc]


def exact_backup_from_key(key: Hashable) -> ExactBackupState:
    return ExactBackupState(*key)  # type: ignore[misc]

"""`CountExact` Refinement Stage — Algorithm 5, Section 4.2 (Lemma 11).

Given the leader's estimate ``k = log2 n +- 3`` from the approximation stage,
the refinement stage computes the *exact* population size.  It runs in three
phases counted from the moment an agent enters the stage:

====== ===================================================================
Phase  Action
====== ===================================================================
0      broadcast ``k`` (maximum) and reset all loads to zero
1      the leader injects ``C * 2^k`` tokens (``C = 2^8``); classical balancing
2      every agent multiplies its load by ``2^k``; classical balancing
====== ===================================================================

After phase 2 the total load is ``M = C * 2^{2k} >= 4 n^2`` and every agent's
load is ``M / n ± 1.5`` w.h.p., so the output function
``omega(v) = round(C * 2^{2 k_v} / l_v)`` equals ``n`` exactly (Lemma 11).

Implementation notes (documented deviations, DESIGN.md §2):

* The once-per-phase actions (the leader's injection, the ``2^k``
  multiplication) are performed when the agent's phase counter *advances*
  rather than at its first initiated interaction of the phase.  The two are
  equivalent ("exactly once per phase"), but performing them at the phase
  boundary lets the balancing rule be gated on "both agents are in the same
  phase", which is what keeps the total load exactly ``C * 2^{2k}``: without
  the gate, tokens exchanged across the phase-1/phase-2 boundary would be
  multiplied zero or two times, perturbing the total and breaking exactness.
* Classical balancing therefore only runs between two agents whose stage
  phase counters agree (and lie in {1, 2}).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

from ..primitives.load_balancing import split_evenly
from .params import CountExactParameters

__all__ = [
    "RefinementStageState",
    "refinement_stage_update",
    "advance_refinement_phase",
    "refinement_output",
    "WAITING_PHASE",
]

#: Sentinel phase value meaning "entered the stage, waiting for the first tick".
WAITING_PHASE = -1


@dataclass(slots=True)
class RefinementStageState:
    """Per-agent state of the refinement stage.

    Attributes:
        entered: Whether the agent has entered the refinement stage.
        phase: Stage phase counter (``WAITING_PHASE`` until the first tick
            inside the stage, then 0, 1, 2; frozen at 3 when complete).
        k: The agent's copy of the leader's estimate of ``log2 n``.
        load: Current load used by the classical balancing.
        error: Set by the stable variant's in-stage checks (Appendix F).
    """

    entered: bool = False
    phase: int = WAITING_PHASE
    k: int = 0
    load: int = 0
    error: bool = False

    def key(self) -> Hashable:
        return (self.entered, self.phase, self.k, self.load, self.error)

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.entered = False
        self.phase = WAITING_PHASE
        self.k = 0
        self.load = 0
        self.error = False

    def enter(self, k: int) -> None:
        """Enter the refinement stage carrying the estimate ``k``."""
        self.entered = True
        self.phase = WAITING_PHASE
        self.k = k
        self.load = 0
        self.error = False

    @property
    def finished(self) -> bool:
        """Whether the agent has completed all three phases."""
        return self.phase >= 3


def advance_refinement_phase(
    state: RefinementStageState,
    is_leader: bool,
    check_min_load: bool = False,
    params: CountExactParameters = CountExactParameters(),
) -> None:
    """Advance the stage phase counter by one tick and run phase-entry actions.

    Called by the composed protocol for every clock tick of an entered agent.
    Entering phase 1 triggers the leader's injection of ``C * 2^k`` tokens;
    entering phase 2 triggers the ``2^k`` multiplication (with the stable
    variant's minimum-load check when ``check_min_load`` is set).  The counter
    freezes at 3.
    """
    if not state.entered or state.phase >= 3:
        return
    state.phase += 1
    if state.phase == 1:
        if is_leader:
            state.load = params.refinement_constant << state.k
    elif state.phase == 2:
        if check_min_load and state.load < params.refinement_min_load - 2:
            state.error = True
        state.load = state.load << state.k


def refinement_stage_update(
    u: RefinementStageState,
    v: RefinementStageState,
    check_consistency: bool = False,
) -> None:
    """Apply one interaction of the refinement stage (Algorithm 5).

    The initiator must already be in the stage; the responder is pulled in on
    first contact, inheriting the initiator's ``k`` (phase 0 is the broadcast
    phase, so this matches the ``max`` rule of line 2).

    Args:
        u: Initiator's stage state (mutated).
        v: Responder's stage state (mutated).
        check_consistency: Enable the stable variant's check that interacting
            agents agree on ``k`` (Appendix F).
    """
    if not v.entered:
        v.enter(k=u.k)

    if u.phase <= 0:
        # Phase 0: initialise agents and broadcast k (lines 1-2).  Loads are
        # only cleared for agents that have not progressed past phase 0, so a
        # straggler cannot wipe out the leader's phase-1 injection.
        top = max(u.k, v.k)
        u.k = top
        if v.phase <= 0:
            v.k = top
            v.load = 0
        u.load = 0
        return

    if check_consistency and v.phase > 0 and u.k != v.k:
        u.error = True
        v.error = True

    # Line 8: classical load balancing.  Gated so that tokens never cross the
    # phase-1/phase-2 boundary (which would skip or double the 2^k
    # multiplication): pre-multiplication agents (phase 1) balance among
    # themselves, post-multiplication agents (phase 2 and beyond) among
    # themselves.  Keeping the post-multiplication pool open beyond phase 2
    # lets late stragglers finish smoothing their loads.
    if u.phase == 1 and v.phase == 1:
        u.load, v.load = split_evenly(u.load, v.load)
    elif u.phase >= 2 and v.phase >= 2:
        u.load, v.load = split_evenly(u.load, v.load)


def refinement_output(state: RefinementStageState, params: CountExactParameters) -> Optional[int]:
    """The output function ``omega(v) = round(C * 2^{2k} / l)`` of Lemma 11.

    Returns ``None`` while the agent has no load (e.g. before the stage).
    """
    if not state.entered or state.load <= 0:
        return None
    numerator = params.refinement_constant << (2 * state.k)
    # Nearest-integer rounding with pure integer arithmetic.
    return (2 * numerator + state.load) // (2 * state.load)

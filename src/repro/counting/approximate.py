"""Protocol `Approximate` — Algorithm 2, Section 3 (Theorem 1, statement 1).

`Approximate` is the paper's uniform protocol for computing ``floor(log2 n)``
or ``ceil(log2 n)`` w.h.p. in ``O(n log^2 n)`` interactions with
``O(log n * log log n)`` states.  Every agent runs, in parallel:

* the **junta process** and the junta-driven **phase clock** (Section 2);
* **Stage 1 — leader election** ([18]) until ``leaderDone`` is set;
* **Stage 2 — the Search Protocol** (Algorithm 1) orchestrated by the leader;
* **Stage 3 — broadcasting**: the leader's result ``k_u`` is pushed to every
  agent together with the ``searchDone`` flag.

Whenever an agent meets a partner on a strictly higher junta level it
re-initialises its phase clock, leader election, and search state
(Algorithm 2, lines 1–2), so the computation that ultimately counts is the
one running on the maximal junta level.

The output of an agent is its ``k`` value once ``searchDone`` is set
(``None`` before), so Theorem 1's acceptance predicate is "every output lies
in ``{floor(log2 n), ceil(log2 n)}``".
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.convergence import OutputPredicate, outputs_in
from ..engine.protocol import Protocol
from ..primitives.junta import JuntaState, junta_update_pair
from ..primitives.leader_election import LeaderElectionState, leader_election_update
from ..primitives.phase_clock import PhaseClockState, phase_clock_update
from .keys import (
    clock_from_key,
    clock_key,
    election_from_key,
    junta_from_key,
    residue_compatible,
    search_from_key,
)
from .params import ApproximateParameters
from .search import SearchState, search_update

__all__ = ["ApproximateAgent", "ApproximateProtocol", "log_estimate_targets"]


def log_estimate_targets(n: int) -> set:
    """Return the set of outputs Theorem 1 accepts: ``{floor(log2 n), ceil(log2 n)}``."""
    return {int(math.floor(math.log2(n))), int(math.ceil(math.log2(n)))}


@dataclass(slots=True)
class ApproximateAgent:
    """Full per-agent state of protocol `Approximate` (Figure 2)."""

    junta: JuntaState
    clock: PhaseClockState
    election: LeaderElectionState
    search: SearchState

    def key(self) -> Hashable:
        return (self.junta.key(), self.clock.key(), self.election.key(), self.search.key())

    def reinitialise(self) -> None:
        """Reset clock, leader election, and search (Algorithm 2, line 2)."""
        self.clock.reset()
        self.election.reset()
        self.search.reset()


class ApproximateProtocol(Protocol[ApproximateAgent]):
    """The uniform protocol `Approximate` of Theorem 1 (Algorithm 2).

    Args:
        params: Tunable constants (clock modulus, leader-election horizon, …).
    """

    name = "approximate"

    def __init__(self, params: ApproximateParameters = ApproximateParameters()) -> None:
        self.params = params

    # ----------------------------------------------------------------- API
    def initial_state(self, agent_id: int) -> ApproximateAgent:
        return ApproximateAgent(
            junta=JuntaState(),
            clock=PhaseClockState(),
            election=LeaderElectionState(),
            search=SearchState(),
        )

    def transition(
        self, initiator: ApproximateAgent, responder: ApproximateAgent, rng: random.Random
    ) -> None:
        u, v = initiator, responder
        # Line 1-2: re-initialise on meeting a strictly higher junta level.
        u_saw_higher, v_saw_higher = junta_update_pair(u.junta, v.junta)
        if u_saw_higher:
            u.reinitialise()
        if v_saw_higher:
            v.reinitialise()

        # Line 4: phase clocks (both agents are updated, as in the pseudo-code).
        u_clock_before = u.clock.clock
        v_clock_before = v.clock.clock
        phase_clock_update(
            u.clock, v_clock_before, is_junta=u.junta.junta, modulus=self.params.clock_modulus
        )
        phase_clock_update(
            v.clock, u_clock_before, is_junta=v.junta.junta, modulus=self.params.clock_modulus
        )

        # Lines 5-10: stage dispatch driven by the initiator's flags.
        if not u.election.leader_done:
            # Stage 1: leader election.
            leader_election_update(
                u.election,
                v.election,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
                u_level=u.junta.level,
                rng=rng,
                params=self.params.leader_election,
            )
        elif not u.search.search_done:
            # Stage 2: the Search Protocol.
            search_update(
                u.search,
                v.search,
                u_leader=u.election.leader,
                v_leader=v.election.leader,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
            )
            # leaderDone keeps spreading so stragglers enter Stage 2 as well.
            if u.election.leader_done:
                v.election.leader_done = True
        else:
            # Stage 3: broadcasting — push the result to the responder.
            v.election.leader_done = True
            v.search.search_done = True
            v.search.k = u.search.k

        u.clock.first_tick = False

    def output(self, state: ApproximateAgent) -> Optional[int]:
        """The agent's estimate of ``log2 n`` once the search has concluded."""
        return state.search.k if state.search.search_done else None

    def state_key(self, state: ApproximateAgent) -> Hashable:
        # The phase counter is unbounded bookkeeping, but the protocol only
        # ever consumes it modulo 5 (Search Protocol rounds) and modulo the
        # leader-election signal tag; state-space accounting therefore uses
        # the semantically meaningful residue (mod 40 covers both) so that
        # the measured state count matches the paper's O(log n * log log n)
        # accounting rather than the length of the run.
        return (
            state.junta.key(),
            clock_key(state.clock),
            state.election.key(),
            state.search.key(),
        )

    # --------------------------------------------------- key-level transitions
    def _agent_from_key(self, key: Hashable) -> ApproximateAgent:
        junta, clock, election, search = key  # type: ignore[misc]
        return ApproximateAgent(
            junta=junta_from_key(junta),
            clock=clock_from_key(clock),
            election=election_from_key(election),
            search=search_from_key(search),
        )

    def supports_key_transitions(self) -> bool:
        # The decoded phase is a mod-40 residue (see repro.counting.keys);
        # exactness requires every tag modulus to divide it.
        return residue_compatible(5, self.params.leader_election.signal_tag_modulus)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        u = self._agent_from_key(key_a)
        v = self._agent_from_key(key_b)
        self.transition(u, v, rng)
        return self.state_key(u), self.state_key(v)

    def output_key(self, key: Hashable) -> Optional[int]:
        k, search_done = key[3]  # type: ignore[index]
        return k if search_done else None

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({self.state_key(self.initial_state(0)): n})

    # ----------------------------------------------------------- conveniences
    def convergence_predicate(self, n: int) -> OutputPredicate:
        """Theorem 1 acceptance predicate for a population of size ``n``."""
        return outputs_in(log_estimate_targets(n))

    @staticmethod
    def leader_count(states) -> int:
        """Number of agents currently holding the leader flag (diagnostics)."""
        return sum(1 for state in states if state.election.leader)

"""The Search Protocol — Algorithm 1, Section 3.1 (the core of `Approximate`).

A unique leader orchestrates a doubling search for ``log2 n``: in round ``r``
it injects ``2^r`` tokens into the population, the non-leader agents spread
them with the *powers-of-two* load-balancing process (every agent's load is a
power of two, stored as its logarithm ``k``), the maximum logarithmic load is
broadcast, and the leader looks at it: if no agent ended up with more than
one token the injected load was at most ``n`` (in fact at most ``3n/4``
w.h.p., Lemma 8) and the leader doubles the injection; otherwise the load
exceeded the population and the leader stops, reporting ``k_u`` with
``3n/4 < 2^{k_u} <= 2^{ceil(log2 n)}`` (Lemma 9) — i.e. ``floor(log2 n)`` or
``ceil(log2 n)``.

Each round occupies five phases of the junta-driven phase clock
(``phase mod 5``):

====== =====================================================================
Phase  Action
====== =====================================================================
0      followers reset their load to "empty" (``k = -1``)
1      the leader hands ``2^{k_u}`` tokens to its first partner (first tick)
2      followers run powers-of-two load balancing
3      followers spread the maximum ``k`` by one-way epidemics
4      the leader decides: double the injection or finish (first tick)
====== =====================================================================

This module defines the per-agent component state and the in-place update
used by protocol `Approximate` (Algorithm 2) and its stable variant.  A
standalone protocol with an externally designated leader — matching the
assumption of Section 3.1 ("a unique leader is given") — is provided for
experiment E9.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.protocol import Protocol
from ..primitives.junta import JuntaState, junta_update_pair
from ..primitives.load_balancing import EMPTY, balance_powers_of_two
from ..primitives.phase_clock import PhaseClockState, phase_clock_update
from .params import ApproximateParameters

__all__ = ["SearchState", "search_update", "SearchWithGivenLeader", "SearchAgent"]


@dataclass(slots=True)
class SearchState:
    """Per-agent state of the Search Protocol.

    Attributes:
        k: Logarithmic load.  For the leader this is the logarithm of the
            load injected in the current round (the search variable); for
            followers it is the logarithm of the tokens they currently hold,
            with ``-1`` encoding "empty".
        search_done: Whether the leader has concluded the search (spread to
            all agents in the broadcasting / error-detection stage).
    """

    k: int = EMPTY
    search_done: bool = False

    def key(self) -> Hashable:
        return (self.k, self.search_done)

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.k = EMPTY
        self.search_done = False


def search_update(
    u: SearchState,
    v: SearchState,
    u_leader: bool,
    v_leader: bool,
    u_phase: int,
    u_first_tick: bool,
) -> None:
    """Apply one Search Protocol interaction (Algorithm 1).

    Args:
        u: Initiator's search state (mutated).
        v: Responder's search state (mutated: receives the leader's injection
            in phase 1 and takes part in balancing/epidemics).
        u_leader: Whether the initiator is the unique leader.
        v_leader: Whether the responder is the unique leader.
        u_phase: The initiator's phase-clock phase counter (interpreted
            modulo 5).
        u_first_tick: Whether this is the initiator's first initiated
            interaction of its current phase.
    """
    phase = u_phase % 5

    if u_leader and not u.search_done:
        if phase == 1 and u_first_tick:
            # Phase 1: load infusion — the leader hands 2^{k_u} tokens over.
            v.k = u.k
        elif phase == 4 and u_first_tick:
            # Phase 4: decision — double the injection or conclude the search.
            if v.k <= 0:
                u.k += 1
            else:
                u.search_done = True
        return

    if not u_leader and not v_leader:
        if phase == 0:
            # Phase 0: initialisation — followers drop their tokens.
            u.k = EMPTY
        elif phase == 2:
            # Phase 2: powers-of-two load balancing.
            u.k, v.k = balance_powers_of_two(u.k, v.k)
        elif phase == 3:
            # Phase 3: one-way epidemics on the maximum logarithmic load.
            top = max(u.k, v.k)
            u.k = top
            v.k = top


@dataclass(slots=True)
class SearchAgent:
    """Full agent state of the standalone Search Protocol."""

    junta: JuntaState
    clock: PhaseClockState
    search: SearchState
    is_leader: bool = False

    def key(self) -> Hashable:
        return (self.junta.key(), self.clock.key(), self.search.key(), self.is_leader)


class SearchWithGivenLeader(Protocol[SearchAgent]):
    """The Search Protocol under the assumptions of Section 3.1.

    Agent 0 is designated as the unique leader as part of the input
    configuration; synchronisation is provided by the junta-driven phase
    clock run by all agents in parallel.  The output of an agent is its
    current ``k`` when the search has concluded (``None`` before that), so
    the convergence predicate for experiment E9 is "every output lies in
    ``{floor(log2 n), ceil(log2 n)}``".

    Args:
        params: Protocol constants (clock modulus etc.).
        start_phase: Number of warm-up phases before the search begins.  In
            protocol `Approximate` the search is preceded by leader election,
            which gives the junta process and the phase clock ample time to
            stabilise; the standalone variant reproduces that warm-up by
            simply idling for ``start_phase`` phases.
    """

    name = "search-protocol"
    # The search, clock, and junta updates never consume randomness.
    deterministic_transitions = True

    def __init__(
        self,
        params: ApproximateParameters = ApproximateParameters(),
        start_phase: int = 8,
    ) -> None:
        self.params = params
        self.start_phase = start_phase

    def initial_state(self, agent_id: int) -> SearchAgent:
        return SearchAgent(
            junta=JuntaState(),
            clock=PhaseClockState(),
            search=SearchState(),
            is_leader=agent_id == 0,
        )

    def transition(
        self, initiator: SearchAgent, responder: SearchAgent, rng: random.Random
    ) -> None:
        u_saw_higher, v_saw_higher = junta_update_pair(initiator.junta, responder.junta)
        if u_saw_higher:
            initiator.clock.reset()
            initiator.search.reset()
        if v_saw_higher:
            responder.clock.reset()
            responder.search.reset()
        u_clock_before = initiator.clock.clock
        v_clock_before = responder.clock.clock
        phase_clock_update(
            initiator.clock,
            v_clock_before,
            is_junta=initiator.junta.junta,
            modulus=self.params.clock_modulus,
        )
        phase_clock_update(
            responder.clock,
            u_clock_before,
            is_junta=responder.junta.junta,
            modulus=self.params.clock_modulus,
        )
        if initiator.search.search_done:
            # Broadcasting stage: push the result to the responder.
            responder.search.search_done = True
            responder.search.k = initiator.search.k
        elif initiator.clock.phase >= self.start_phase:
            search_update(
                initiator.search,
                responder.search,
                u_leader=initiator.is_leader,
                v_leader=responder.is_leader,
                u_phase=initiator.clock.phase - self.start_phase,
                u_first_tick=initiator.clock.first_tick,
            )
        initiator.clock.first_tick = False

    def output(self, state: SearchAgent) -> Optional[int]:
        return state.search.k if state.search.search_done else None

    def state_key(self, state: SearchAgent) -> Hashable:
        return state.key()

    # --------------------------------------------------- key-level transitions
    # Unlike the composed protocols, the standalone search keys the *raw*
    # phase counter (the warm-up comparison ``phase >= start_phase`` is not a
    # residue), so decoding is fully lossless.
    @staticmethod
    def _agent_from_key(key: Hashable) -> SearchAgent:
        junta, clock, search, is_leader = key  # type: ignore[misc]
        return SearchAgent(
            junta=JuntaState(*junta),
            clock=PhaseClockState(*clock),
            search=SearchState(*search),
            is_leader=is_leader,
        )

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        u = self._agent_from_key(key_a)
        v = self._agent_from_key(key_b)
        self.transition(u, v, rng)
        return self.state_key(u), self.state_key(v)

    def output_key(self, key: Hashable) -> Optional[int]:
        k, search_done = key[2]  # type: ignore[index]
        return k if search_done else None

    def initial_key_counts(self, n: int) -> Counter:
        leader_key = self.state_key(self.initial_state(0))
        follower_key = self.state_key(self.initial_state(1))
        counts = Counter({leader_key: 1})
        counts[follower_key] += n - 1
        return counts

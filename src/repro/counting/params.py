"""Tunable constants of the counting protocols (Sections 3 and 4).

Every constant the paper fixes asymptotically (clock modulus, the
``2^(level - 8)`` exponents, the refinement constant ``C = 2^8``, error
thresholds, …) is collected here so that experiments can sweep them and so
that the calibration used at simulation scales is explicit and documented in
one place (see DESIGN.md §2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..engine.errors import ConfigurationError
from ..primitives.params import (
    FastLeaderElectionParameters,
    LeaderElectionParameters,
    level_scaled,
)
from ..primitives.phase_clock import DEFAULT_CLOCK_MODULUS

__all__ = [
    "ApproximateParameters",
    "CountExactParameters",
    "recommended_clock_modulus",
]


def recommended_clock_modulus(n: int, target_factor: float = 6.0) -> int:
    """Suggest a phase-clock modulus for a given population size.

    Lemma 5 states that for any constant ``c`` there is a constant modulus
    ``m(c)`` making every phase at least ``c n log n`` interactions long.
    Empirically (experiment E6) one clock hour costs roughly a constant
    number of parallel time units, so the modulus needed for a *fixed*
    multiple of ``n log n`` grows slowly with ``n``.  Experiment harnesses
    use this helper to pick ``m`` so that a phase comfortably covers one
    broadcast plus one load-balancing window (``target_factor * n * log2 n``
    interactions).  The protocols themselves never call this function — it is
    calibration, not part of any transition function.
    """
    if n < 2:
        raise ConfigurationError("population size must be at least 2")
    # Empirical calibration (see EXPERIMENTS.md, E6): one clock hour costs
    # roughly 2.5-5 parallel time units (2.5n-5n interactions), so a phase of
    # ``target_factor * n * log2 n`` interactions needs about
    # ``target_factor * log2(n) / 2.5`` hours.
    return max(DEFAULT_CLOCK_MODULUS, math.ceil(target_factor * math.log2(n) / 2.5))


@dataclass(frozen=True)
class ApproximateParameters:
    """Constants of protocol `Approximate` (Algorithm 2) and its stable variant.

    Attributes:
        clock_modulus: Phase-clock modulus ``m`` (Lemma 5's ``m(c)``).
        leader_election: Constants of the slow leader-election stage.
        search_phases: Number of phases in one round of the Search Protocol
            (the paper uses 5: reset, infusion, balancing, epidemics, decision).
        error_detection_load: Tokens assigned per unit token in phase 2 of the
            error-detection protocol (the paper's factor 32).
        error_min_load: Minimum per-agent load accepted in error detection
            (the paper's threshold 3).
        error_max_discrepancy: Maximum accepted load discrepancy between two
            interacting agents in error detection (the paper's threshold 2).
        infusion_offset: Exponent subtracted from the leader's ``k`` when
            injecting tokens in error detection (the paper's ``k - 2``).
    """

    clock_modulus: int = DEFAULT_CLOCK_MODULUS
    leader_election: LeaderElectionParameters = field(default_factory=LeaderElectionParameters)
    search_phases: int = 5
    error_detection_load: int = 32
    error_min_load: int = 3
    error_max_discrepancy: int = 2
    infusion_offset: int = 2

    def __post_init__(self) -> None:
        if self.clock_modulus < 4:
            raise ConfigurationError("clock_modulus must be at least 4")
        if self.search_phases != 5:
            raise ConfigurationError("the Search Protocol is defined over exactly 5 phases")
        if self.error_detection_load < 4:
            raise ConfigurationError("error_detection_load must be at least 4")


@dataclass(frozen=True)
class CountExactParameters:
    """Constants of protocol `CountExact` (Algorithm 3) and its stable variant.

    Attributes:
        clock_modulus: Phase-clock modulus ``m``.
        leader_election: Constants of the `FastLeaderElection` stage.
        eta_level_offset: Offset in the per-phase injection exponent.  The
            paper multiplies loads by ``n^eta = 2^(2^(level - 8))`` each phase
            of the approximation stage; at simulation scales the offset 8 is
            replaced by this parameter (default 1), preserving the structure
            ``eta_bits = 2^(level - offset)``.
        eta_min_bits: Lower bound on the per-phase injection exponent.
        apx_done_load: Leader load at which the approximation stage concludes
            (the paper's threshold 4, i.e. total load at least ``2n`` w.h.p.).
        refinement_constant_bits: ``log2`` of the refinement constant ``C``
            (the paper uses ``C = 2^8``).
        refinement_min_load_bits: ``log2`` of the minimum per-agent load
            required before the phase-2 multiplication in the stable variant
            (the paper uses ``2^5``).
    """

    clock_modulus: int = DEFAULT_CLOCK_MODULUS
    leader_election: FastLeaderElectionParameters = field(
        default_factory=FastLeaderElectionParameters
    )
    eta_level_offset: int = 1
    eta_min_bits: int = 1
    apx_done_load: int = 4
    refinement_constant_bits: int = 8
    refinement_min_load_bits: int = 5

    def __post_init__(self) -> None:
        if self.clock_modulus < 4:
            raise ConfigurationError("clock_modulus must be at least 4")
        if self.apx_done_load < 2:
            raise ConfigurationError("apx_done_load must be at least 2")
        if self.refinement_constant_bits < 2:
            raise ConfigurationError("refinement_constant_bits must be at least 2")

    def eta_bits(self, level: int) -> int:
        """Per-phase injection exponent: loads are multiplied by ``2^eta_bits``.

        The paper's ``n^eta`` with ``eta = 2^(level - 8) / log n``; derived
        uniformly from the junta level.
        """
        return level_scaled(
            level, factor=1.0, offset=self.eta_level_offset, minimum=self.eta_min_bits
        )

    @property
    def refinement_constant(self) -> int:
        """The refinement constant ``C`` (the paper's ``2^8``)."""
        return 1 << self.refinement_constant_bits

    @property
    def refinement_min_load(self) -> int:
        """Minimum load accepted before the phase-2 multiplication (``2^5``)."""
        return 1 << self.refinement_min_load_bits

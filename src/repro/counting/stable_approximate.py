"""Stable `Approximate` — Section 3.4 and Appendix B (Theorem 1, statements 2–3).

The stable protocol is a *hybrid*: it runs protocol `Approximate` and, in
parallel, the always-correct backup protocol of Appendix C.1.  The fast path
is validated by the error-detection stage (Algorithm 7); every detected
inconsistency — more than one leader finishing the election, a
phase-clock desynchronisation, or an implausible load after the validation
balancing — raises an ``error`` flag that spreads by one-way epidemics and
makes every agent restart a fresh instance of the backup protocol and output
its result instead.  Because the backup protocol is correct with probability
1, so is the hybrid; because errors only occur with probability
``n^-Omega(1)``, the hybrid still stabilises in ``O(n log^2 n)`` interactions
w.h.p.

Output semantics: an agent outputs the validated estimate from the
error-detection stage once it has completed it (and no error is known),
otherwise it outputs the backup protocol's current estimate
(``floor(log2 n)`` once the backup has stabilised).

Theorem 1(3): when ``relaxed_output=True`` the backup protocol does not
broadcast its maximum (dropping the ``k_max`` variable and with it the extra
``O(log n)`` state factor); in that mode up to ``log n`` agents — the ones
still holding backup token piles after an error — may output an incorrect
value, exactly as the paper allows.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.convergence import OutputPredicate, fraction_outputs_satisfy, outputs_in
from ..engine.protocol import Protocol
from ..primitives.junta import JuntaState, junta_update_pair
from ..primitives.leader_election import LeaderElectionState, leader_election_update
from ..primitives.phase_clock import PhaseClockState, phase_clock_update
from .approximate import log_estimate_targets
from .backup import ApproximateBackupState, approximate_backup_update
from .error_detection import (
    ErrorDetectionState,
    advance_detection_phase,
    error_detection_update,
)
from .keys import (
    approximate_backup_from_key,
    clock_from_key,
    clock_key,
    detection_from_key,
    election_from_key,
    junta_from_key,
    residue_compatible,
    search_from_key,
)
from .params import ApproximateParameters
from .search import SearchState, search_update

__all__ = ["StableApproximateAgent", "StableApproximateProtocol"]


@dataclass(slots=True)
class StableApproximateAgent:
    """Full per-agent state of the stable `Approximate` hybrid protocol."""

    junta: JuntaState
    clock: PhaseClockState
    election: LeaderElectionState
    search: SearchState
    detection: ErrorDetectionState
    backup: ApproximateBackupState
    error: bool = False

    def key(self) -> Hashable:
        return (
            self.junta.key(),
            self.clock.key(),
            self.election.key(),
            self.search.key(),
            self.detection.key(),
            self.backup.key(),
            self.error,
        )

    def reinitialise(self) -> None:
        """Reset the fast path (clock, election, search, detection).

        The backup protocol deliberately survives re-initialisations: it is
        the independent slow path and must keep its tokens.
        """
        self.clock.reset()
        self.election.reset()
        self.search.reset()
        self.detection.reset()

    def raise_error(self) -> None:
        """Record an error and restart a fresh backup incarnation (Appendix B)."""
        if not self.error:
            self.error = True
            self.backup.restart()


class StableApproximateProtocol(Protocol[StableApproximateAgent]):
    """The stable variant of protocol `Approximate` (Theorem 1, statements 2–3).

    Args:
        params: Tunable constants shared with :class:`ApproximateProtocol`.
        relaxed_output: When ``True`` the backup's maximum broadcast is
            disabled (Theorem 1(3): only ``n - log n`` agents need the
            correct output, saving an ``O(log n)`` state factor).
    """

    name = "approximate-stable"

    def __init__(
        self,
        params: ApproximateParameters = ApproximateParameters(),
        relaxed_output: bool = False,
    ) -> None:
        self.params = params
        self.relaxed_output = relaxed_output

    # ----------------------------------------------------------------- API
    def initial_state(self, agent_id: int) -> StableApproximateAgent:
        return StableApproximateAgent(
            junta=JuntaState(),
            clock=PhaseClockState(),
            election=LeaderElectionState(),
            search=SearchState(),
            detection=ErrorDetectionState(),
            backup=ApproximateBackupState(),
        )

    def transition(
        self,
        initiator: StableApproximateAgent,
        responder: StableApproximateAgent,
        rng: random.Random,
    ) -> None:
        u, v = initiator, responder

        # Junta process + re-initialisation of the fast path on higher levels.
        u_saw_higher, v_saw_higher = junta_update_pair(u.junta, v.junta)
        if u_saw_higher:
            u.reinitialise()
        if v_saw_higher:
            v.reinitialise()

        # Phase clocks.  Agents freeze their clock once they reach the final
        # error-detection phase (Algorithm 7, line 23) or switch to the backup.
        u_clock_before = u.clock.clock
        v_clock_before = v.clock.clock
        u_ticked = False
        v_ticked = False
        if not u.detection.finished and not u.error:
            u_ticked = phase_clock_update(
                u.clock, v_clock_before, is_junta=u.junta.junta, modulus=self.params.clock_modulus
            )
        if not v.detection.finished and not v.error:
            v_ticked = phase_clock_update(
                v.clock, u_clock_before, is_junta=v.junta.junta, modulus=self.params.clock_modulus
            )

        # Error-detection phase counters advance on every clock tick of an
        # entered agent, independently of which stage the initiator is in.
        if u_ticked:
            advance_detection_phase(u.detection)
        if v_ticked:
            advance_detection_phase(v.detection)

        # Error source 1: two agents both finished leader election as leaders.
        if (
            u.election.leader_done
            and v.election.leader_done
            and u.election.leader
            and v.election.leader
        ):
            u.raise_error()
            v.raise_error()

        # Error epidemic.
        if v.error and not u.error:
            u.raise_error()
        elif u.error and not v.error:
            v.raise_error()

        if u.error:
            # Both agents are in (or have just joined) the backup incarnation.
            approximate_backup_update(u.backup, v.backup)
            u.clock.first_tick = False
            return

        # Stage dispatch on the initiator's flags (Algorithm 2 / Appendix B).
        if not u.election.leader_done:
            # Stage 1: leader election, with the backup running in parallel.
            leader_election_update(
                u.election,
                v.election,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
                u_level=u.junta.level,
                rng=rng,
                params=self.params.leader_election,
            )
            if not u.election.leader_done and not v.election.leader_done:
                approximate_backup_update(u.backup, v.backup)
        elif not u.search.search_done:
            # Stage 2: the Search Protocol.
            search_update(
                u.search,
                v.search,
                u_leader=u.election.leader,
                v_leader=v.election.leader,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
            )
            if u.election.leader_done:
                v.election.leader_done = True
        else:
            # Stage 3: error detection instead of plain broadcasting.
            corrected = error_detection_update(
                u.detection,
                v.detection,
                u_leader=u.election.leader,
                v_leader=v.election.leader,
                u_search_k=u.search.k,
                u_first_tick=u.clock.first_tick,
                params=self.params,
            )
            if corrected is not None:
                u.search.k = corrected
            # Entering error detection doubles as the stage flag of the paper
            # (Algorithm 7, line 2 sets ApxDone_v), so the responder now
            # dispatches to the error-detection stage itself.
            v.election.leader_done = True
            v.search.search_done = True
            if u.detection.error:
                u.raise_error()
            if v.detection.error:
                v.raise_error()

        u.clock.first_tick = False

    def output(self, state: StableApproximateAgent) -> Optional[int]:
        """Validated fast-path estimate, falling back to the backup protocol."""
        if not state.error and state.detection.finished:
            return state.detection.k
        if self.relaxed_output:
            return state.backup.k if state.backup.k >= 0 else state.backup.k_max
        return state.backup.k_max

    def state_key(self, state: StableApproximateAgent) -> Hashable:
        backup_key = (
            (state.backup.k, state.backup.instance)
            if self.relaxed_output
            else state.backup.key()
        )
        return (
            state.junta.key(),
            clock_key(state.clock),
            state.election.key(),
            state.search.key(),
            state.detection.key(),
            backup_key,
            state.error,
        )

    # --------------------------------------------------- key-level transitions
    def _agent_from_key(self, key: Hashable) -> StableApproximateAgent:
        junta, clock, election, search, detection, backup, error = key  # type: ignore[misc]
        return StableApproximateAgent(
            junta=junta_from_key(junta),
            clock=clock_from_key(clock),
            election=election_from_key(election),
            search=search_from_key(search),
            detection=detection_from_key(detection),
            backup=approximate_backup_from_key(backup, relaxed=self.relaxed_output),
            error=error,
        )

    def supports_key_transitions(self) -> bool:
        # The mod-40 phase residue must be exact (repro.counting.keys).  The
        # relaxed-output key additionally drops the backup's k_max while the
        # output function still reads it for every token-less agent, so the
        # key is lossy with respect to the *output* — native key transitions
        # would make nearly the whole population output the reconstructed
        # k_max = 0 after an error, far beyond the up-to-log(n) wrong agents
        # Theorem 1(3) allows.  Relaxed mode therefore declines the native
        # path (the batch backend falls back to the lifted adapter).
        if self.relaxed_output:
            return False
        return residue_compatible(5, self.params.leader_election.signal_tag_modulus)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        u = self._agent_from_key(key_a)
        v = self._agent_from_key(key_b)
        self.transition(u, v, rng)
        return self.state_key(u), self.state_key(v)

    def output_key(self, key: Hashable) -> Optional[int]:
        detection_key, backup_key, error = key[4], key[5], key[6]  # type: ignore[index]
        detection = detection_from_key(detection_key)
        if not error and detection.finished:
            return detection.k
        backup = approximate_backup_from_key(backup_key, relaxed=self.relaxed_output)
        if self.relaxed_output:
            return backup.k if backup.k >= 0 else backup.k_max
        return backup.k_max

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({self.state_key(self.initial_state(0)): n})

    # ----------------------------------------------------------- conveniences
    def convergence_predicate(self, n: int) -> OutputPredicate:
        """Acceptance predicate for Theorem 1's stable statements."""
        targets = log_estimate_targets(n)
        if self.relaxed_output:
            import math

            fraction = 1.0 - math.log2(n) / n if n > 4 else 0.5
            return fraction_outputs_satisfy(lambda value: value in targets, fraction)
        return outputs_in(targets)

    @staticmethod
    def error_count(states) -> int:
        """Number of agents currently flagging an error (diagnostics)."""
        return sum(1 for state in states if state.error)

"""Stable `CountExact` — Appendix F (Theorem 2).

The stable variant of `CountExact` is a hybrid, exactly like the stable
variant of `Approximate`: the fast protocol runs alongside the always-correct
exact backup protocol of Appendix C.2, and every detected inconsistency makes
the population fall back to the backup.  The error sources checked here
(Appendix F):

* two agents that both concluded `FastLeaderElection` as leaders interact;
* two agents whose phase-clock counters have drifted apart interact
  (checked once both have ``leaderDone``; a drift of two or more phases is
  flagged — a transient difference of one occurs at every healthy phase
  boundary, see :mod:`repro.counting.error_detection`);
* an agent reaches the refinement multiplication with fewer than ``2^5``
  tokens, or two interacting agents disagree on the estimate ``k``.

On an error every agent restarts a fresh incarnation of the exact backup
protocol and outputs its value; otherwise the output is the refinement
stage's exact count.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.convergence import OutputPredicate, all_outputs_equal
from ..engine.protocol import Protocol
from ..primitives.fast_leader_election import (
    FastLeaderElectionState,
    fast_leader_election_update,
)
from ..primitives.junta import JuntaState, junta_update_pair
from ..primitives.phase_clock import PhaseClockState, phase_clock_update
from .approximation_stage import (
    ApproximationStageState,
    advance_approximation_phase,
    approximation_stage_update,
)
from .backup import ExactBackupState, exact_backup_update
from .keys import (
    approximation_from_key,
    clock_from_key,
    clock_key,
    exact_backup_from_key,
    fast_election_from_key,
    junta_from_key,
    phase_distance,
    refinement_from_key,
    residue_compatible,
)
from .params import CountExactParameters
from .refinement_stage import (
    RefinementStageState,
    advance_refinement_phase,
    refinement_output,
    refinement_stage_update,
)

__all__ = ["StableCountExactAgent", "StableCountExactProtocol"]


@dataclass(slots=True)
class StableCountExactAgent:
    """Full per-agent state of the stable `CountExact` hybrid protocol."""

    junta: JuntaState
    clock: PhaseClockState
    election: FastLeaderElectionState
    approximation: ApproximationStageState
    refinement: RefinementStageState
    backup: ExactBackupState
    error: bool = False

    def key(self) -> Hashable:
        return (
            self.junta.key(),
            self.clock.key(),
            self.election.key(),
            self.approximation.key(),
            self.refinement.key(),
            self.backup.key(),
            self.error,
        )

    def reinitialise(self) -> None:
        """Reset the fast path; the backup protocol survives (Appendix F)."""
        self.clock.reset()
        self.election.reset()
        self.approximation.reset()
        self.refinement.reset()

    def raise_error(self) -> None:
        """Record an error and restart a fresh backup incarnation."""
        if not self.error:
            self.error = True
            self.backup.restart()


class StableCountExactProtocol(Protocol[StableCountExactAgent]):
    """The stable variant of protocol `CountExact` (Theorem 2 / Appendix F).

    Args:
        params: Tunable constants shared with :class:`CountExactProtocol`.
    """

    name = "count-exact-stable"

    def __init__(self, params: CountExactParameters = CountExactParameters()) -> None:
        self.params = params

    # ----------------------------------------------------------------- API
    def initial_state(self, agent_id: int) -> StableCountExactAgent:
        return StableCountExactAgent(
            junta=JuntaState(),
            clock=PhaseClockState(),
            election=FastLeaderElectionState(),
            approximation=ApproximationStageState(),
            refinement=RefinementStageState(),
            backup=ExactBackupState(),
        )

    def transition(
        self,
        initiator: StableCountExactAgent,
        responder: StableCountExactAgent,
        rng: random.Random,
    ) -> None:
        u, v = initiator, responder
        params = self.params

        u_saw_higher, v_saw_higher = junta_update_pair(u.junta, v.junta)
        if u_saw_higher:
            u.reinitialise()
        if v_saw_higher:
            v.reinitialise()

        u_clock_before = u.clock.clock
        v_clock_before = v.clock.clock
        u_ticked = False
        v_ticked = False
        if not u.error:
            u_ticked = phase_clock_update(
                u.clock, v_clock_before, is_junta=u.junta.junta, modulus=params.clock_modulus
            )
        if not v.error:
            v_ticked = phase_clock_update(
                v.clock, u_clock_before, is_junta=v.junta.junta, modulus=params.clock_modulus
            )

        if u_ticked:
            if u.election.leader_done and not u.approximation.apx_done:
                advance_approximation_phase(
                    u.approximation, is_leader=u.election.leader, level=u.junta.level, params=params
                )
            advance_refinement_phase(
                u.refinement,
                is_leader=u.election.leader,
                check_min_load=True,
                params=params,
            )
        if v_ticked:
            if v.election.leader_done and not v.approximation.apx_done:
                advance_approximation_phase(
                    v.approximation, is_leader=v.election.leader, level=v.junta.level, params=params
                )
            advance_refinement_phase(
                v.refinement,
                is_leader=v.election.leader,
                check_min_load=True,
                params=params,
            )

        # Error source 1: two finished leaders meet.
        if (
            u.election.leader_done
            and v.election.leader_done
            and u.election.leader
            and v.election.leader
        ):
            u.raise_error()
            v.raise_error()

        # Error source 2: phase-clock drift after the election has concluded.
        # Read through the circular mod-40 metric so that the check agrees
        # with the reduced state keys (see repro.counting.keys.phase_distance).
        if (
            not u_saw_higher
            and not v_saw_higher
            and u.election.leader_done
            and v.election.leader_done
            and phase_distance(u.clock.phase, v.clock.phase) >= 2
        ):
            u.raise_error()
            v.raise_error()

        # Error source 3: in-stage refinement checks (set by the stage itself).
        if u.refinement.error:
            u.raise_error()
        if v.refinement.error:
            v.raise_error()

        # Error epidemic.
        if v.error and not u.error:
            u.raise_error()
        elif u.error and not v.error:
            v.raise_error()

        if u.error:
            exact_backup_update(u.backup, v.backup)
            u.clock.first_tick = False
            return

        # Stage dispatch (Algorithm 3).
        if not u.election.leader_done:
            fast_leader_election_update(
                u.election,
                v.election,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
                u_level=u.junta.level,
                rng=rng,
                params=params.leader_election,
            )
            if not u.election.leader_done and not v.election.leader_done:
                exact_backup_update(u.backup, v.backup)
        elif not u.approximation.apx_done:
            approximation_stage_update(u.approximation, v.approximation)
            v.election.leader_done = True
        else:
            if not u.refinement.entered:
                u.refinement.enter(k=u.approximation.k)
            refinement_stage_update(u.refinement, v.refinement, check_consistency=True)
            v.election.leader_done = True
            if not v.approximation.apx_done:
                v.approximation.apx_done = True
                v.approximation.k = u.approximation.k
            if u.refinement.error:
                u.raise_error()
            if v.refinement.error:
                v.raise_error()

        u.clock.first_tick = False

    def output(self, state: StableCountExactAgent) -> Optional[int]:
        """Exact population size from the fast path, or the backup's count."""
        if not state.error:
            estimate = refinement_output(state.refinement, self.params)
            if estimate is not None:
                return estimate
        return state.backup.count

    def state_key(self, state: StableCountExactAgent) -> Hashable:
        return (
            state.junta.key(),
            clock_key(state.clock),
            state.election.key(),
            state.approximation.key(),
            state.refinement.key(),
            state.backup.key(),
            state.error,
        )

    # --------------------------------------------------- key-level transitions
    def _agent_from_key(self, key: Hashable) -> StableCountExactAgent:
        junta, clock, election, approximation, refinement, backup, error = key  # type: ignore[misc]
        return StableCountExactAgent(
            junta=junta_from_key(junta),
            clock=clock_from_key(clock),
            election=fast_election_from_key(election),
            approximation=approximation_from_key(approximation),
            refinement=refinement_from_key(refinement),
            backup=exact_backup_from_key(backup),
            error=error,
        )

    def supports_key_transitions(self) -> bool:
        # Exactness of the mod-40 phase residue (see repro.counting.keys).
        return residue_compatible(self.params.leader_election.tag_modulus)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        u = self._agent_from_key(key_a)
        v = self._agent_from_key(key_b)
        self.transition(u, v, rng)
        return self.state_key(u), self.state_key(v)

    def output_key(self, key: Hashable) -> Optional[int]:
        refinement_key, backup_key, error = key[4], key[5], key[6]  # type: ignore[index]
        if not error:
            estimate = refinement_output(refinement_from_key(refinement_key), self.params)
            if estimate is not None:
                return estimate
        return exact_backup_from_key(backup_key).count

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({self.state_key(self.initial_state(0)): n})

    # ----------------------------------------------------------- conveniences
    def convergence_predicate(self, n: int) -> OutputPredicate:
        """Theorem 2 acceptance predicate: every agent outputs exactly ``n``."""
        return all_outputs_equal(n)

    @staticmethod
    def error_count(states) -> int:
        """Number of agents currently flagging an error (diagnostics)."""
        return sum(1 for state in states if state.error)

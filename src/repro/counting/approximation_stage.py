"""`CountExact` Approximation Stage — Algorithm 4, Section 4.1 (Lemma 10).

The approximation stage computes ``log2 n`` up to a small additive error in
``O(n log n)`` interactions.  The leader starts with one token; at the start
of every phase *every* agent multiplies its load by
``n^eta = 2^(2^(level - 8))`` (derived uniformly from the junta level), and
during the rest of the phase all agents run the classical load-balancing
process of [10].  Before multiplying, the leader checks whether its own load
has reached 4 — in which case the total load is at least ``2n`` w.h.p. and it
computes ``k = i * eta_bits - floor(log2 l)``, which Lemma 10 shows equals
``log2 n`` up to a small additive error.  The ``ApxDone`` flag then spreads
by one-way epidemics.

Implementation notes (documented deviations, DESIGN.md §2):

* The once-per-phase actions (the load multiplication, the leader's
  initialisation and decision) run when the agent's phase counter advances
  (:func:`advance_approximation_phase`) rather than at its first initiated
  interaction of the phase; the two are equivalent ("exactly once per
  phase").
* Classical balancing is gated on both agents having performed the same
  number of multiplications (equal ``i``).  Without the gate, tokens crossing
  a phase boundary between an already-multiplied and a not-yet-multiplied
  agent are multiplied zero or two times; at simulation scales the boundary
  window is a sizeable fraction of a phase, and the compounding error drives
  the measured total far away from the ``M = 2^{i * eta}`` invariant the
  leader's formula relies on (we observed three-orders-of-magnitude
  inflation at ``n = 100``).  The gate restores the invariant exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

from ..primitives.load_balancing import split_evenly
from .params import CountExactParameters

__all__ = [
    "ApproximationStageState",
    "advance_approximation_phase",
    "approximation_stage_update",
]


@dataclass(slots=True)
class ApproximationStageState:
    """Per-agent state of the approximation stage.

    Attributes:
        i: Phase counter within the stage (number of multiplications done).
        load: Current load ``l_v`` used by the classical balancing.
        k: The leader's estimate of ``log2 n`` (set when the stage concludes).
        apx_done: Whether the stage has concluded (spread by epidemics).
    """

    i: int = 0
    load: int = 0
    k: int = 0
    apx_done: bool = False

    def key(self) -> Hashable:
        return (self.i, self.load, self.k, self.apx_done)

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.i = 0
        self.load = 0
        self.k = 0
        self.apx_done = False


def advance_approximation_phase(
    state: ApproximationStageState,
    is_leader: bool,
    level: int,
    params: CountExactParameters = CountExactParameters(),
) -> None:
    """Run the once-per-phase actions of Algorithm 4 (lines 1-7) for one agent.

    Called by the composed protocol whenever the clock of an agent that is in
    the approximation stage ticks.  Performs, in order: the leader's
    first-phase initialisation, the leader's termination check and estimate
    computation, and the per-phase load explosion.
    """
    if state.apx_done:
        return
    eta_bits = params.eta_bits(level)
    if is_leader and state.i == 0:
        # Lines 2-3: initialise the first phase with a single token.
        state.load = 1
    if is_leader and state.load >= params.apx_done_load:
        # Lines 4-6: the total load is at least 2n w.h.p. — conclude.
        state.apx_done = True
        state.k = max(1, state.i * eta_bits - int(math.floor(math.log2(state.load))))
        return
    # Line 7: start a new phase — load explosion.
    state.i += 1
    state.load = state.load << eta_bits


def approximation_stage_update(
    u: ApproximationStageState,
    v: ApproximationStageState,
) -> None:
    """Apply the every-interaction part of Algorithm 4 (lines 8-9).

    Classical balancing between agents with the same multiplication count,
    and the ``ApxDone`` / ``k`` epidemic.

    Args:
        u: Initiator's stage state (mutated).
        v: Responder's stage state (mutated).
    """
    # Line 8: classical load balancing (same-``i`` agents only; see module docs).
    if u.i == v.i and not u.apx_done and not v.apx_done:
        u.load, v.load = split_evenly(u.load, v.load)
    # Line 9: broadcast ApxDone (with the estimate) by one-way epidemics.
    if v.apx_done and not u.apx_done:
        u.apx_done = True
        u.k = v.k
    elif u.apx_done and not v.apx_done:
        v.apx_done = True
        v.k = u.k

"""Always-correct backup protocols — Appendix C.

The stable variants of `Approximate` and `CountExact` are hybrid protocols:
they run the fast (w.h.p.-correct) protocol and fall back to a slow protocol
that is correct with probability 1 whenever an error is detected.  Appendix C
defines the two backup protocols:

* **Approximate backup (C.1, Lemma 12)** — every agent starts with one token;
  two agents holding the *same* number of tokens merge them (one hands
  everything over), so piles always hold a power of two.  Eventually the pile
  sizes encode the binary representation of ``n``: level ``i`` holds exactly
  one pile iff bit ``i`` of ``n`` is set, the largest pile holds
  ``2^floor(log2 n)`` tokens, and a maximum broadcast spreads
  ``floor(log2 n)`` to everyone.  Stabilises in ``O(n^2 log^2 n)``
  interactions w.h.p. and uses ``O(log^2 n)`` states.
* **Exact backup (C.2, Lemma 13)** — every agent starts with one *counted*
  token; two agents that are both still "uncounted" merge their counts (one
  of them becomes counted), so eventually a single uncounted agent holds the
  exact total ``n``, which a maximum broadcast spreads.  Stabilises in
  ``O(n^2 log n)`` interactions w.h.p.

Both are exposed as component updates (with an *instance tag* so the hybrid
protocols can restart a fresh copy after an error without mixing tokens from
the aborted run) and as standalone protocols for experiment E11.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.protocol import Protocol

__all__ = [
    "ApproximateBackupState",
    "approximate_backup_update",
    "ApproximateBackupProtocol",
    "ExactBackupState",
    "exact_backup_update",
    "ExactBackupProtocol",
]


# --------------------------------------------------------------------------
# Appendix C.1 — backup for approximate counting
# --------------------------------------------------------------------------


@dataclass(slots=True)
class ApproximateBackupState:
    """Per-agent state of the approximate-counting backup protocol.

    Attributes:
        k: ``log2`` of the number of tokens held (``-1`` = no tokens).
        k_max: Largest pile logarithm observed anywhere (maximum broadcast);
            the output of the protocol.
        instance: Incarnation tag.  The hybrid protocols restart the backup
            after an error; merges only happen between agents running the
            same incarnation so tokens from an aborted run are never mixed
            into the fresh one.
    """

    k: int = 0
    k_max: int = 0
    instance: int = 0

    def key(self) -> Hashable:
        return (self.k, self.k_max, self.instance)

    def restart(self) -> None:
        """Start a fresh incarnation with a single token (used after errors)."""
        self.k = 0
        self.k_max = 0
        self.instance += 1


def approximate_backup_update(u: ApproximateBackupState, v: ApproximateBackupState) -> None:
    """Apply one interaction of the approximate backup protocol (Equation (3)).

    If both agents hold the same (positive) number of tokens the initiator
    takes all of them; in every case both agents adopt the maximum pile
    logarithm seen so far.  Agents from different incarnations only exchange
    the broadcast value of the *newer* incarnation.
    """
    if u.instance != v.instance:
        # Different incarnations never merge; the newer incarnation's broadcast
        # value wins so late-restarting agents catch up once they restart.
        return
    if u.k == v.k and u.k >= 0:
        u.k += 1
        v.k = -1
    new_max = max(u.k_max, v.k_max, u.k, v.k)
    u.k_max = new_max
    v.k_max = new_max


class ApproximateBackupProtocol(Protocol[ApproximateBackupState]):
    """Standalone approximate backup protocol (Appendix C.1, Lemma 12).

    The output of an agent is ``k_max``, which stabilises to
    ``floor(log2 n)``.  The final configuration also encodes the binary
    representation of ``n`` in the multiset of ``k`` values, which the test
    suite checks explicitly.
    """

    name = "backup-approximate"
    deterministic_transitions = True

    def initial_state(self, agent_id: int) -> ApproximateBackupState:
        return ApproximateBackupState()

    def transition(
        self,
        initiator: ApproximateBackupState,
        responder: ApproximateBackupState,
        rng: random.Random,
    ) -> None:
        approximate_backup_update(initiator, responder)

    def output(self, state: ApproximateBackupState) -> int:
        return state.k_max

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        k_a, kmax_a, inst_a = key_a  # type: ignore[misc]
        k_b, kmax_b, inst_b = key_b  # type: ignore[misc]
        if inst_a != inst_b:
            return False
        if k_a == k_b and k_a >= 0:
            return True
        return max(kmax_a, kmax_b, k_a, k_b) != kmax_a or max(kmax_a, kmax_b, k_a, k_b) != kmax_b

    # ------------------------------------------------- key-level transitions
    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        # Pure-key transcription of :func:`approximate_backup_update`.
        k_a, kmax_a, inst_a = key_a  # type: ignore[misc]
        k_b, kmax_b, inst_b = key_b  # type: ignore[misc]
        if inst_a != inst_b:
            return key_a, key_b
        if k_a == k_b and k_a >= 0:
            k_a += 1
            k_b = -1
        new_max = max(kmax_a, kmax_b, k_a, k_b)
        return (k_a, new_max, inst_a), (k_b, new_max, inst_b)

    def output_key(self, key: Hashable) -> int:
        _k, k_max, _instance = key  # type: ignore[misc]
        return k_max

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({(0, 0, 0): n})


# --------------------------------------------------------------------------
# Appendix C.2 — backup for exact counting
# --------------------------------------------------------------------------


@dataclass(slots=True)
class ExactBackupState:
    """Per-agent state of the exact-counting backup protocol.

    Attributes:
        counted: Whether this agent's token has been absorbed by another agent.
        count: The largest partial count known to this agent; the output.
        instance: Incarnation tag (see :class:`ApproximateBackupState`).
    """

    counted: bool = False
    count: int = 1
    instance: int = 0

    def key(self) -> Hashable:
        return (self.counted, self.count, self.instance)

    def restart(self) -> None:
        """Start a fresh incarnation with a single uncounted token."""
        self.counted = False
        self.count = 1
        self.instance += 1


def exact_backup_update(u: ExactBackupState, v: ExactBackupState) -> None:
    """Apply one interaction of the exact backup protocol (Equation (4)).

    Two uncounted agents merge their counts (the responder becomes counted);
    otherwise every *counted* participant adopts the maximum count seen.
    An uncounted agent's count is its actual token pile — the quantity whose
    sum over uncounted agents is invariantly ``n`` — so only counted agents
    (whose count is pure broadcast state) may adopt larger observed values.
    Merge totals never exceed ``n``, so the unique surviving uncounted agent
    holds the true maximum and the broadcast stabilises to exactly ``n``.
    """
    if u.instance != v.instance:
        return
    if not u.counted and not v.counted:
        total = u.count + v.count
        u.count = total
        v.count = total
        v.counted = True
    else:
        best = max(u.count, v.count)
        if u.counted:
            u.count = best
        if v.counted:
            v.count = best


class ExactBackupProtocol(Protocol[ExactBackupState]):
    """Standalone exact backup protocol (Appendix C.2, Lemma 13).

    The output of an agent is its ``count``, which stabilises to the exact
    population size ``n`` after ``O(n^2 log n)`` interactions w.h.p.
    """

    name = "backup-exact"
    deterministic_transitions = True

    def initial_state(self, agent_id: int) -> ExactBackupState:
        return ExactBackupState()

    def transition(
        self,
        initiator: ExactBackupState,
        responder: ExactBackupState,
        rng: random.Random,
    ) -> None:
        exact_backup_update(initiator, responder)

    def output(self, state: ExactBackupState) -> int:
        return state.count

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        counted_a, count_a, inst_a = key_a  # type: ignore[misc]
        counted_b, count_b, inst_b = key_b  # type: ignore[misc]
        if inst_a != inst_b:
            return False
        if not counted_a and not counted_b:
            return True
        # Only counted agents adopt the broadcast maximum.
        return (counted_a and count_b > count_a) or (counted_b and count_a > count_b)

    # ------------------------------------------------- key-level transitions
    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        # Pure-key transcription of :func:`exact_backup_update`.
        counted_a, count_a, inst_a = key_a  # type: ignore[misc]
        counted_b, count_b, inst_b = key_b  # type: ignore[misc]
        if inst_a != inst_b:
            return key_a, key_b
        if not counted_a and not counted_b:
            total = count_a + count_b
            return (False, total, inst_a), (True, total, inst_b)
        best = max(count_a, count_b)
        return (
            (counted_a, best if counted_a else count_a, inst_a),
            (counted_b, best if counted_b else count_b, inst_b),
        )

    def output_key(self, key: Hashable) -> int:
        _counted, count, _instance = key  # type: ignore[misc]
        return count

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({(False, 1, 0): n})

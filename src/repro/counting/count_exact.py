"""Protocol `CountExact` — Algorithm 3, Section 4 (Theorem 2).

`CountExact` is the paper's uniform protocol for computing the *exact*
population size ``n`` in asymptotically optimal ``O(n log n)`` interactions
using ``Õ(n)`` states.  Every agent runs, in parallel:

* the **junta process** and the junta-driven **phase clock** (Section 2);
* **Stage 1 — `FastLeaderElection`** ([8], Appendix D) until ``leaderDone``;
* **Stage 2 — the Approximation Stage** (Algorithm 4): repeated load
  explosion + classical balancing until the leader knows ``log2 n ± 3``;
* **Stage 3 — the Refinement Stage** (Algorithm 5): ``C * 2^{2k} >= 4 n^2``
  tokens are balanced so that every agent can output
  ``round(C * 2^{2k} / l) = n`` exactly.

As in `Approximate`, an agent meeting a partner on a strictly higher junta
level re-initialises everything except the junta variables, so the
computation that counts is the one on the maximal junta level.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..engine.convergence import OutputPredicate, all_outputs_equal
from ..engine.protocol import Protocol
from ..primitives.fast_leader_election import (
    FastLeaderElectionState,
    fast_leader_election_update,
)
from ..primitives.junta import JuntaState, junta_update_pair
from ..primitives.phase_clock import PhaseClockState, phase_clock_update
from .approximation_stage import (
    ApproximationStageState,
    advance_approximation_phase,
    approximation_stage_update,
)
from .keys import (
    approximation_from_key,
    clock_from_key,
    clock_key,
    fast_election_from_key,
    junta_from_key,
    refinement_from_key,
    residue_compatible,
)
from .params import CountExactParameters
from .refinement_stage import (
    RefinementStageState,
    advance_refinement_phase,
    refinement_output,
    refinement_stage_update,
)

__all__ = ["CountExactAgent", "CountExactProtocol"]


@dataclass(slots=True)
class CountExactAgent:
    """Full per-agent state of protocol `CountExact` (Figure 3)."""

    junta: JuntaState
    clock: PhaseClockState
    election: FastLeaderElectionState
    approximation: ApproximationStageState
    refinement: RefinementStageState

    def key(self) -> Hashable:
        return (
            self.junta.key(),
            self.clock.key(),
            self.election.key(),
            self.approximation.key(),
            self.refinement.key(),
        )

    def reinitialise(self) -> None:
        """Reset the downstream state (Algorithm 3, line 2)."""
        self.clock.reset()
        self.election.reset()
        self.approximation.reset()
        self.refinement.reset()


class CountExactProtocol(Protocol[CountExactAgent]):
    """The uniform protocol `CountExact` of Theorem 2 (Algorithm 3).

    Args:
        params: Tunable constants (clock modulus, injection exponents, ``C``).
    """

    name = "count-exact"

    def __init__(self, params: CountExactParameters = CountExactParameters()) -> None:
        self.params = params

    # ----------------------------------------------------------------- API
    def initial_state(self, agent_id: int) -> CountExactAgent:
        return CountExactAgent(
            junta=JuntaState(),
            clock=PhaseClockState(),
            election=FastLeaderElectionState(),
            approximation=ApproximationStageState(),
            refinement=RefinementStageState(),
        )

    def transition(
        self, initiator: CountExactAgent, responder: CountExactAgent, rng: random.Random
    ) -> None:
        u, v = initiator, responder
        params = self.params

        # Line 1-3: junta process and re-initialisation on higher levels.
        u_saw_higher, v_saw_higher = junta_update_pair(u.junta, v.junta)
        if u_saw_higher:
            u.reinitialise()
        if v_saw_higher:
            v.reinitialise()

        # Line 4: phase clocks for both participants.
        u_clock_before = u.clock.clock
        v_clock_before = v.clock.clock
        u_ticked = phase_clock_update(
            u.clock, v_clock_before, is_junta=u.junta.junta, modulus=params.clock_modulus
        )
        v_ticked = phase_clock_update(
            v.clock, u_clock_before, is_junta=v.junta.junta, modulus=params.clock_modulus
        )
        # Stage phase counters advance on every clock tick of a participating
        # agent, independent of which stage the initiator is dispatching to.
        if u_ticked:
            if u.election.leader_done and not u.approximation.apx_done:
                advance_approximation_phase(
                    u.approximation, is_leader=u.election.leader, level=u.junta.level, params=params
                )
            advance_refinement_phase(u.refinement, is_leader=u.election.leader, params=params)
        if v_ticked:
            if v.election.leader_done and not v.approximation.apx_done:
                advance_approximation_phase(
                    v.approximation, is_leader=v.election.leader, level=v.junta.level, params=params
                )
            advance_refinement_phase(v.refinement, is_leader=v.election.leader, params=params)

        # Lines 5-10: stage dispatch on the initiator's flags.
        if not u.election.leader_done:
            # Stage 1: fast leader election.
            fast_leader_election_update(
                u.election,
                v.election,
                u_phase=u.clock.phase,
                u_first_tick=u.clock.first_tick,
                u_level=u.junta.level,
                rng=rng,
                params=params.leader_election,
            )
        elif not u.approximation.apx_done:
            # Stage 2: approximation stage.
            approximation_stage_update(u.approximation, v.approximation)
            v.election.leader_done = True
        else:
            # Stage 3: refinement stage.
            if not u.refinement.entered:
                u.refinement.enter(k=u.approximation.k)
            refinement_stage_update(u.refinement, v.refinement)
            v.election.leader_done = True
            if not v.approximation.apx_done:
                v.approximation.apx_done = True
                v.approximation.k = u.approximation.k

        u.clock.first_tick = False

    def output(self, state: CountExactAgent) -> Optional[int]:
        """The agent's estimate of the exact population size ``n``."""
        return refinement_output(state.refinement, self.params)

    def state_key(self, state: CountExactAgent) -> Hashable:
        # As in `Approximate`, the raw phase counter is bookkeeping; the
        # protocol consumes it only through tick events and small residues.
        return (
            state.junta.key(),
            clock_key(state.clock),
            state.election.key(),
            state.approximation.key(),
            state.refinement.key(),
        )

    # --------------------------------------------------- key-level transitions
    def _agent_from_key(self, key: Hashable) -> CountExactAgent:
        junta, clock, election, approximation, refinement = key  # type: ignore[misc]
        return CountExactAgent(
            junta=junta_from_key(junta),
            clock=clock_from_key(clock),
            election=fast_election_from_key(election),
            approximation=approximation_from_key(approximation),
            refinement=refinement_from_key(refinement),
        )

    def supports_key_transitions(self) -> bool:
        # Exactness of the mod-40 phase residue (see repro.counting.keys).
        return residue_compatible(self.params.leader_election.tag_modulus)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        u = self._agent_from_key(key_a)
        v = self._agent_from_key(key_b)
        self.transition(u, v, rng)
        return self.state_key(u), self.state_key(v)

    def output_key(self, key: Hashable) -> Optional[int]:
        return refinement_output(refinement_from_key(key[4]), self.params)  # type: ignore[index]

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({self.state_key(self.initial_state(0)): n})

    # ----------------------------------------------------------- conveniences
    def convergence_predicate(self, n: int) -> OutputPredicate:
        """Theorem 2 acceptance predicate: every agent outputs exactly ``n``."""
        return all_outputs_equal(n)

    @staticmethod
    def leader_count(states) -> int:
        """Number of agents currently holding the leader flag (diagnostics)."""
        return sum(1 for state in states if state.election.leader)

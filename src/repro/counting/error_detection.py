"""Error detection for the stable `Approximate` protocol — Algorithm 7, Appendix B.

The stable variant of `Approximate` replaces the broadcasting stage with an
error-detection stage that *validates* the leader's search result before the
population commits to it.  The idea: the leader injects ``2^(k_u - 2)``
tokens, the population balances them (first the powers-of-two process on the
``k`` values, then the classical process on small per-agent counters scaled
by 32), and every agent checks that its final load is plausible
(``>= 3`` and within discrepancy 2 of its partners).  If ``k_u`` were too
small the total load would be insufficient and the checks fail; any failing
agent raises an ``error`` flag which spreads by one-way epidemics and makes
the whole population fall back to the always-correct backup protocol.

The stage runs in five phases counted by each agent from the moment it
enters the stage (``phase'``); entry happens mid-phase, so the first clock
tick after entering *starts* phase' 0 and subsequent ticks advance the
counter, freezing at 4:

====== ===============================================================
Phase  Action
====== ===============================================================
0      the leader hands ``2^(k_u - 2)`` tokens to its first partner
1      powers-of-two load balancing on the ``k`` values (non-leaders)
2      initialise the counter ``l`` (0 / 32 / error) from the ``k`` value
3      classical load balancing on the ``l`` values
4      the leader recomputes ``k``; everyone checks loads, adopts the
       leader's ``k`` by maximum broadcast, and freezes its phase clock
====== ===============================================================

Deviation from the pseudo-code (documented in DESIGN.md §2): the
phase-synchronisation check raises the error flag when two agents' ``phase'``
counters differ by **two or more**.  A difference of exactly one occurs
legitimately for a single interaction at every phase boundary (the agent that
drives the clock tick is momentarily one phase ahead of a partner that has
not wrapped yet), so the literal "any difference" rule would fire on every
healthy execution at simulation scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional

from ..primitives.load_balancing import EMPTY, balance_powers_of_two, split_evenly
from .params import ApproximateParameters

__all__ = [
    "ErrorDetectionState",
    "error_detection_update",
    "advance_detection_phase",
    "WAITING_PHASE",
]

#: Sentinel phase value meaning "entered the stage, waiting for the first tick".
WAITING_PHASE = -1


@dataclass(slots=True)
class ErrorDetectionState:
    """Per-agent state of the error-detection stage.

    Attributes:
        entered: Whether the agent has entered the error-detection stage.
        phase: The agent's stage phase counter ``phase'`` (``WAITING_PHASE``
            until its first clock tick inside the stage, then 0–4, frozen at 4).
        k: Logarithmic load used by the powers-of-two balancing (phases 0–1)
            and, from phase 4 on, the broadcast estimate of ``log2 n``.
        load: Small token counter used by the classical balancing (phases 2–4).
        error: Whether this agent detected an inconsistency.
    """

    entered: bool = False
    phase: int = WAITING_PHASE
    k: int = EMPTY
    load: int = 0
    error: bool = False

    def key(self) -> Hashable:
        return (self.entered, self.phase, self.k, self.load, self.error)

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.entered = False
        self.phase = WAITING_PHASE
        self.k = EMPTY
        self.load = 0
        self.error = False

    def enter(self, leader_k: Optional[int] = None) -> None:
        """Enter the error-detection stage with a clean slate (line 2)."""
        self.entered = True
        self.phase = WAITING_PHASE
        self.k = EMPTY if leader_k is None else leader_k
        self.load = 0
        self.error = False

    @property
    def finished(self) -> bool:
        """Whether the agent has reached the final (frozen) phase."""
        return self.phase >= 4


def advance_detection_phase(state: ErrorDetectionState) -> None:
    """Advance the stage phase counter by one tick, freezing at phase 4.

    The composed protocols call this for *every* clock tick of an entered
    agent (whether it is currently the initiator or the responder, and
    regardless of which stage the interaction's initiator is in); counting
    only the ticks seen from inside the stage would make agents drift apart.
    """
    if state.entered and state.phase < 4:
        state.phase += 1


def error_detection_update(
    u: ErrorDetectionState,
    v: ErrorDetectionState,
    u_leader: bool,
    v_leader: bool,
    u_search_k: int,
    u_first_tick: bool,
    params: ApproximateParameters = ApproximateParameters(),
) -> Optional[int]:
    """Apply one error-detection interaction (Algorithm 7).

    The initiator ``u`` must already be in the stage; the responder is pulled
    in on first contact (lines 1–2).  Phase counters are advanced separately
    by the caller via :func:`advance_detection_phase` on every clock tick.

    Args:
        u: Initiator's error-detection state (mutated).
        v: Responder's error-detection state (mutated).
        u_leader: Whether the initiator is the leader.
        v_leader: Whether the responder is the leader.
        u_search_k: The initiator's search result ``k_u`` (used by the leader
            for the phase-0 injection and the phase-4 recomputation).
        u_first_tick: Whether this is the initiator's first initiated
            interaction of its current clock phase.
        params: Protocol constants (thresholds, the factor 32, …).

    Returns:
        The leader's corrected estimate of ``log2 n`` when the initiator is
        the leader and just recomputed it (first tick of phase 4); ``None``
        otherwise.
    """
    corrected: Optional[int] = None

    # Lines 1-2: agents enter error detection on first contact with the stage.
    if not v.entered:
        v.enter()
    if not u.entered:
        u.enter(leader_k=u_search_k if u_leader else None)

    # Synchronisation check (Appendix B): a drift of two or more phases means
    # the phase clock failed for one of the participants.
    if u.phase >= 0 and v.phase >= 0 and abs(u.phase - v.phase) >= 2:
        u.error = True
        v.error = True

    phase = u.phase
    if phase == 0:
        if u_leader and u_first_tick:
            # Load infusion: 2^(k_u - infusion_offset) tokens, stored in powers of two.
            v.k = u_search_k - params.infusion_offset
    elif phase == 1:
        if not u_leader and not v_leader:
            u.k, v.k = balance_powers_of_two(u.k, v.k)
    elif phase == 2:
        if u_first_tick:
            if u.k == EMPTY or u_leader:
                u.load = 0
            elif u.k == 0:
                u.load = params.error_detection_load
            else:
                # Powers-of-two balancing left more than one token here: the
                # injected load exceeded the population, so k_u overshot.
                u.error = True
                u.load = 0
    elif phase == 3:
        u.load, v.load = split_evenly(u.load, v.load)
    elif phase >= 4:
        if u_leader and u_first_tick:
            # Line 19: recompute the approximation of log2 n from the load.
            if u.load > 0:
                corrected = int(round(u_search_k + 3 - math.log2(u.load)))
                u.k = corrected
            else:
                u.error = True
        if u.load < params.error_min_load or abs(u.load - v.load) > params.error_max_discrepancy:
            # Lines 20-21: balancing error detected.
            u.error = True
        # Line 22: broadcast the result from the leader.
        top = max(u.k, v.k)
        u.k = top
        v.k = top

    # The error flag spreads by one-way epidemics in every phase.
    if v.error:
        u.error = True
    elif u.error:
        v.error = True
    return corrected

"""``repro-bench`` console entry point.

Runs one of three benchmark grids and writes a JSON report *exactly at*
``--output`` (parent directories are created; nothing is implicitly dropped
into the CWD, so CI matrix legs writing to per-leg paths cannot clobber
each other):

* the default grid compares the per-agent and batched backends and writes
  ``BENCH_batch_backend.json``;
* ``--samplers`` compares the batch backend's Python sampling strategies
  (scan/alias/fenwick/vector/auto) and writes ``BENCH_samplers.json``;
* ``--accel`` compares ``accel="python"`` against the NumPy-vectorised
  kernels and writes ``BENCH_vectorized.json`` (requires NumPy).

With ``--check-budget`` (default grid only) the smoke wall times are
compared against the generous per-workload budgets committed in
:data:`repro.bench.runner.SMOKE_BUDGETS_S`; the table is printed either way
and the run fails on gross (> 5x budget) regressions — the CI perf canary.

Usage::

    repro-bench                 # full grid, n up to 10**6 on the batch backend
    repro-bench --smoke         # < 30 s grid for CI pushes
    repro-bench --smoke --check-budget
    repro-bench --samplers      # scan vs alias vs Fenwick strategy grid
    repro-bench --accel         # pure-Python vs NumPy-vectorised kernels
    repro-bench --output reports/bench.json --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..engine.errors import ReproError
from ..obs.profile import render_profile
from .runner import (
    BUDGET_FAIL_FACTOR,
    check_smoke_budgets,
    run_benchmark,
    write_report,
)
from .samplers import run_sampler_benchmark
from .vectorized import run_vectorized_benchmark

__all__ = ["main"]

DEFAULT_OUTPUT = "BENCH_batch_backend.json"
SAMPLERS_OUTPUT = "BENCH_samplers.json"
VECTORIZED_OUTPUT = "BENCH_vectorized.json"


def _print_budget_table(rows) -> None:
    print("perf canary (fail above {:g}x budget):".format(BUDGET_FAIL_FACTOR))
    for row in rows:
        protocol, backend, n = row["workload"]
        wall = f"{row['wall_time_s']:7.3f}s" if row["wall_time_s"] is not None else "   (not run)"
        budget = f"{row['budget_s']:.1f}s" if row["budget_s"] is not None else "(none)"
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "  -  "
        verdict = "ok" if row["ok"] else ("STALE BUDGET" if row.get("stale") else "REGRESSION")
        print(
            f"  {protocol:32s} {backend:6s} n={n:<7d} "
            f"wall={wall} budget={budget:>7s} {ratio:>7s} {verdict}"
        )


def _report_headline_and_exit(report, output: str, elapsed: float, headline_line) -> int:
    """Shared epilogue: headline status, wrote-line, exit 1 below target."""
    headline = report["headline"]
    if headline is not None:
        status = "OK" if report["headline_met"] else "BELOW TARGET"
        print(f"{headline_line(headline, report)} [{status}]")
    print(f"wrote {output} ({len(report['entries'])} entries, {elapsed:.1f}s)")
    if report["headline_met"] is False:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the simulation backends, samplers, and accel paths.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the quick (< 30 s) grid used on CI pushes",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--samplers",
        action="store_true",
        help=(
            "benchmark the batch backend's sampling strategies (scan/alias/"
            f"fenwick/vector/auto) instead of the backends; writes {SAMPLERS_OUTPUT}"
        ),
    )
    mode.add_argument(
        "--accel",
        action="store_true",
        help=(
            "benchmark the pure-Python hot loop against the NumPy-vectorised "
            f"kernels (requires NumPy); writes {VECTORIZED_OUTPUT}"
        ),
    )
    parser.add_argument(
        "--check-budget",
        action="store_true",
        help=(
            "compare smoke wall times against the committed per-workload "
            "budgets and fail on gross regressions (default grid only)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "path of the JSON report (default: "
            f"{DEFAULT_OUTPUT}, {SAMPLERS_OUTPUT} with --samplers, or "
            f"{VECTORIZED_OUTPUT} with --accel); parent directories are created"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-phase time breakdown aggregated from the runs' "
            "telemetry (default grid only; embedded in the report as 'profile')"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress output"
    )
    args = parser.parse_args(argv)
    if args.check_budget and (args.samplers or args.accel or not args.smoke):
        # Budgets are committed for the smoke grid only: on any other grid
        # the canary would match nothing and pass vacuously.
        parser.error("--check-budget applies to the default --smoke grid only")

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()
    if args.samplers:
        output = args.output or SAMPLERS_OUTPUT
        report = run_sampler_benchmark(
            smoke=args.smoke, base_seed=args.seed, progress=progress
        )
    elif args.accel:
        output = args.output or VECTORIZED_OUTPUT
        try:
            report = run_vectorized_benchmark(
                smoke=args.smoke, base_seed=args.seed, progress=progress
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        output = args.output or DEFAULT_OUTPUT
        report = run_benchmark(smoke=args.smoke, base_seed=args.seed, progress=progress)
    elapsed = time.perf_counter() - started
    write_report(report, output)

    if args.profile:
        profile = report.get("profile")
        if profile:
            print(render_profile(profile, title="bench"))
        else:
            print("(no run telemetry in this grid; --profile applies to the default grid)")

    if args.samplers:
        headline = report["headline"]
        churn = headline["churn"]
        if churn is not None:
            print(
                f"headline: {churn['case']} n={churn['n']} fenwick "
                f"{churn['fenwick_speedup_vs_scan']}x vs scan, "
                f"{churn['fenwick_speedup_vs_alias']}x vs alias"
            )
        if report["headline_met"] is not None:
            status = "OK" if report["headline_met"] else "BELOW TARGET"
            print(f"acceptance criteria: {report['headline']['criteria']} [{status}]")
        print(f"wrote {output} ({len(report['entries'])} entries, {elapsed:.1f}s)")
        if report["headline_met"] is False:
            return 1
        return 0

    if args.accel:
        return _report_headline_and_exit(
            report,
            output,
            elapsed,
            lambda headline, rep: (
                f"headline: {headline['case']} n={headline['n']} numpy speedup "
                f"{headline['speedup']}x (target {rep['target_speedup']}x)"
            ),
        )

    # Default grid: the smoke variant has no headline-size case, so the
    # headline check only bites on the full grid; the budget canary (smoke
    # only) stacks its own failure on top.
    status = _report_headline_and_exit(
        report,
        output,
        elapsed,
        lambda headline, rep: (
            f"headline: {headline['protocol']} n={headline['n']} "
            f"transition-call reduction {headline['transition_call_reduction']}x "
            f"(target {rep['target_reduction']}x)"
        ),
    )
    if args.check_budget:
        rows, budgets_ok = check_smoke_budgets(report)
        _print_budget_table(rows)
        if not budgets_ok:
            print("perf canary FAILED: gross wall-time regression", file=sys.stderr)
            return 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""``repro-bench`` console entry point.

Runs the backend benchmark grid and writes ``BENCH_batch_backend.json``
(at the current working directory by default — run it from the repo root so
the perf trajectory is tracked across PRs).  With ``--samplers`` it runs the
sampler-strategy grid instead and writes ``BENCH_samplers.json``.

Usage::

    repro-bench                 # full grid, n up to 10**6 on the batch backend
    repro-bench --smoke         # < 30 s grid for CI pushes
    repro-bench --samplers      # scan vs alias vs Fenwick strategy grid
    repro-bench --smoke --samplers
    repro-bench --output out.json --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .runner import run_benchmark, write_report
from .samplers import run_sampler_benchmark

__all__ = ["main"]

DEFAULT_OUTPUT = "BENCH_batch_backend.json"
SAMPLERS_OUTPUT = "BENCH_samplers.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the per-agent vs batched simulation backends.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the quick (< 30 s) grid used on CI pushes",
    )
    parser.add_argument(
        "--samplers",
        action="store_true",
        help=(
            "benchmark the batch backend's sampling strategies (scan/alias/"
            f"fenwick/auto) instead of the backends; writes {SAMPLERS_OUTPUT}"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "path of the JSON report "
            f"(default: {DEFAULT_OUTPUT}, or {SAMPLERS_OUTPUT} with --samplers)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress output"
    )
    args = parser.parse_args(argv)

    progress = None if args.quiet else lambda line: print(line, flush=True)
    started = time.perf_counter()
    if args.samplers:
        output = args.output or SAMPLERS_OUTPUT
        report = run_sampler_benchmark(
            smoke=args.smoke, base_seed=args.seed, progress=progress
        )
    else:
        output = args.output or DEFAULT_OUTPUT
        report = run_benchmark(smoke=args.smoke, base_seed=args.seed, progress=progress)
    elapsed = time.perf_counter() - started
    write_report(report, output)

    if args.samplers:
        headline = report["headline"]
        churn = headline["churn"]
        if churn is not None:
            print(
                f"headline: {churn['case']} n={churn['n']} fenwick "
                f"{churn['fenwick_speedup_vs_scan']}x vs scan, "
                f"{churn['fenwick_speedup_vs_alias']}x vs alias"
            )
        if report["headline_met"] is not None:
            status = "OK" if report["headline_met"] else "BELOW TARGET"
            print(f"acceptance criteria: {report['headline']['criteria']} [{status}]")
        print(f"wrote {output} ({len(report['entries'])} entries, {elapsed:.1f}s)")
        if report["headline_met"] is False:
            return 1
        return 0

    headline = report["headline"]
    if headline is not None:
        status = "OK" if report["headline_met"] else "BELOW TARGET"
        print(
            f"headline: {headline['protocol']} n={headline['n']} "
            f"transition-call reduction {headline['transition_call_reduction']}x "
            f"(target {report['target_reduction']}x) [{status}]"
        )
    print(f"wrote {output} ({len(report['entries'])} entries, {elapsed:.1f}s)")
    # The smoke grid has no headline-size case; only fail when the full grid
    # measured the headline and missed the target.
    if headline is not None and not report["headline_met"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Benchmark runner: time both backends across protocols and sizes.

A *case* is a (protocol factory, convergence predicate, backend, n) tuple;
running one produces a :class:`BenchEntry` with wall time, interactions, and
the number of Python-level transition calls the backend actually executed —
the quantity the batch backend is designed to collapse.  Entries for the
same (protocol, n) under both backends are paired into *comparisons* whose
``transition_call_reduction`` is the headline metric.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..engine.convergence import OutputPredicate, all_outputs_equal, outputs_in
from ..engine.protocol import Protocol
from ..engine.simulator import simulate
from ..obs.profile import aggregate_telemetry
from ..primitives.epidemic import OneWayEpidemic
from ..primitives.junta import JuntaProtocol
from ..primitives.load_balancing import EMPTY, PowersOfTwoLoadBalancing

__all__ = [
    "BenchCase",
    "BenchEntry",
    "default_cases",
    "smoke_cases",
    "run_benchmark",
    "check_smoke_budgets",
]

#: The acceptance target: batch must execute at least this many times fewer
#: Python-level transition calls than agent on the headline case.
TARGET_REDUCTION = 50.0
HEADLINE_PROTOCOL = "one-way-epidemic"
HEADLINE_N = 100_000

#: Generous per-workload wall-time budgets (seconds) for the smoke grid —
#: the CI perf canary.  Each budget is ~10-50x the current measured wall
#: time on a development machine, leaving ample headroom for slower CI
#: runners; the canary only fails a workload at *gross* regressions, i.e.
#: wall time above :data:`BUDGET_FAIL_FACTOR` times its budget.
SMOKE_BUDGETS_S: Dict[Tuple[str, str, int], float] = {
    ("one-way-epidemic", "agent", 256): 0.5,
    ("one-way-epidemic", "agent", 1_024): 1.0,
    ("one-way-epidemic", "batch", 256): 1.0,
    ("one-way-epidemic", "batch", 1_024): 1.5,
    ("one-way-epidemic", "batch", 8_192): 6.0,
    ("junta-process", "agent", 512): 0.5,
    ("junta-process", "batch", 512): 1.5,
    ("powers-of-two-load-balancing", "agent", 512): 0.5,
    ("powers-of-two-load-balancing", "batch", 512): 0.5,
}

#: A smoke workload fails the canary when its wall time exceeds this factor
#: times its committed budget.
BUDGET_FAIL_FACTOR = 5.0


@dataclass
class BenchCase:
    """One benchmark configuration.

    Attributes:
        protocol_name: Stable name used for pairing agent/batch entries.
        make_protocol: Factory building a fresh protocol for size ``n``.
        make_convergence: Factory building the convergence predicate (or
            ``None`` for budget-bound runs).
        backend: ``"agent"`` or ``"batch"``.
        n: Population size.
        max_interactions: Optional explicit interaction budget.
        repetitions: Number of seeded repetitions to average over.
    """

    protocol_name: str
    make_protocol: Callable[[int], Protocol]
    make_convergence: Optional[Callable[[int], OutputPredicate]]
    backend: str
    n: int
    max_interactions: Optional[int] = None
    repetitions: int = 1


@dataclass
class BenchEntry:
    """Result of one benchmark case (averaged over repetitions)."""

    protocol: str
    backend: str
    n: int
    repetitions: int
    interactions: float
    transition_calls: float
    wall_time_s: float
    interactions_per_second: float
    converged: bool
    stopped_reason: str


def _epidemic_case(backend: str, n: int, **kwargs: Any) -> BenchCase:
    return BenchCase(
        protocol_name="one-way-epidemic",
        make_protocol=lambda size: OneWayEpidemic(),
        make_convergence=lambda size: all_outputs_equal(1),
        backend=backend,
        n=n,
        **kwargs,
    )


def _junta_case(backend: str, n: int, **kwargs: Any) -> BenchCase:
    # Converged when every agent is inactive (output is (level, active, junta)).
    return BenchCase(
        protocol_name="junta-process",
        make_protocol=lambda size: JuntaProtocol(),
        make_convergence=lambda size: _all_inactive,
        backend=backend,
        n=n,
        **kwargs,
    )


def _all_inactive(outputs: Any) -> bool:
    from ..engine.convergence import output_items

    seen = False
    for value, _count in output_items(outputs):
        if value[1]:
            return False
        seen = True
    return seen


def _powers_of_two_case(backend: str, n: int, **kwargs: Any) -> BenchCase:
    def make_protocol(size: int) -> Protocol:
        kappa = max(0, (3 * size // 4).bit_length() - 1)
        return PowersOfTwoLoadBalancing(kappa=kappa)

    return BenchCase(
        protocol_name="powers-of-two-load-balancing",
        make_protocol=make_protocol,
        make_convergence=lambda size: outputs_in({EMPTY, 0}),
        backend=backend,
        n=n,
        **kwargs,
    )


def default_cases() -> List[BenchCase]:
    """The full benchmark grid (batch reaches ``n = 10**6`` on the epidemic)."""
    cases: List[BenchCase] = []
    for n in (1_000, 10_000, 100_000):
        cases.append(_epidemic_case("agent", n))
    for n in (1_000, 10_000, 100_000, 1_000_000):
        cases.append(_epidemic_case("batch", n))
    for n in (1_000, 10_000):
        cases.append(_junta_case("agent", n))
        cases.append(_junta_case("batch", n))
    for n in (1_000, 10_000):
        cases.append(_powers_of_two_case("agent", n))
    for n in (1_000, 10_000, 100_000):
        cases.append(_powers_of_two_case("batch", n))
    return cases


def smoke_cases() -> List[BenchCase]:
    """A quick grid (< 30 s) for CI pushes."""
    cases: List[BenchCase] = []
    for n in (256, 1_024):
        cases.append(_epidemic_case("agent", n))
    for n in (256, 1_024, 8_192):
        cases.append(_epidemic_case("batch", n))
    cases.append(_junta_case("agent", 512))
    cases.append(_junta_case("batch", 512))
    cases.append(_powers_of_two_case("agent", 512))
    cases.append(_powers_of_two_case("batch", 512))
    return cases


def run_case(
    case: BenchCase,
    base_seed: int = 0,
    telemetry_sink: Optional[List[Dict[str, Any]]] = None,
) -> BenchEntry:
    """Run one case and return its averaged entry.

    When ``telemetry_sink`` is given, every repetition's
    ``extra["telemetry"]`` dict is appended to it — the raw material the
    report's aggregated ``profile`` is folded from.
    """
    interactions = 0.0
    transition_calls = 0.0
    wall = 0.0
    converged = True
    stopped_reason = ""
    for repetition in range(case.repetitions):
        protocol = case.make_protocol(case.n)
        convergence = case.make_convergence(case.n) if case.make_convergence else None
        started = time.perf_counter()
        result = simulate(
            protocol,
            case.n,
            seed=base_seed + repetition,
            convergence=convergence,
            max_interactions=case.max_interactions,
            backend=case.backend,
        )
        wall += time.perf_counter() - started
        interactions += result.interactions
        transition_calls += result.extra["transition_calls"]
        if telemetry_sink is not None and isinstance(
            result.extra.get("telemetry"), dict
        ):
            telemetry_sink.append(result.extra["telemetry"])
        converged = converged and (result.converged or result.stopped_reason == "terminal")
        stopped_reason = result.stopped_reason
    repetitions = case.repetitions
    interactions /= repetitions
    transition_calls /= repetitions
    wall /= repetitions
    return BenchEntry(
        protocol=case.protocol_name,
        backend=case.backend,
        n=case.n,
        repetitions=repetitions,
        interactions=interactions,
        transition_calls=transition_calls,
        wall_time_s=round(wall, 4),
        interactions_per_second=round(interactions / wall, 1) if wall > 0 else 0.0,
        converged=converged,
        stopped_reason=stopped_reason,
    )


def _comparisons(entries: Iterable[BenchEntry]) -> List[Dict[str, Any]]:
    """Pair agent/batch entries of the same (protocol, n) into reductions."""
    by_key: Dict[tuple, Dict[str, BenchEntry]] = {}
    for entry in entries:
        by_key.setdefault((entry.protocol, entry.n), {})[entry.backend] = entry
    comparisons = []
    for (protocol, n), pair in sorted(by_key.items()):
        if "agent" not in pair or "batch" not in pair:
            continue
        agent, batch = pair["agent"], pair["batch"]
        reduction = (
            agent.transition_calls / batch.transition_calls
            if batch.transition_calls
            else float("inf")
        )
        speedup = agent.wall_time_s / batch.wall_time_s if batch.wall_time_s else float("inf")
        comparisons.append(
            {
                "protocol": protocol,
                "n": n,
                "agent_transition_calls": agent.transition_calls,
                "batch_transition_calls": batch.transition_calls,
                "transition_call_reduction": round(reduction, 1),
                "agent_wall_time_s": agent.wall_time_s,
                "batch_wall_time_s": batch.wall_time_s,
                "wall_time_speedup": round(speedup, 2),
            }
        )
    return comparisons


def run_benchmark(
    cases: Optional[List[BenchCase]] = None,
    base_seed: int = 0,
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the benchmark grid and return the JSON-ready report."""
    if cases is None:
        cases = smoke_cases() if smoke else default_cases()
    entries: List[BenchEntry] = []
    telemetry: List[Dict[str, Any]] = []
    for case in cases:
        if progress:
            progress(f"{case.protocol_name} backend={case.backend} n={case.n} ...")
        entry = run_case(case, base_seed=base_seed, telemetry_sink=telemetry)
        entries.append(entry)
        if progress:
            progress(
                f"  {entry.interactions:.0f} interactions, "
                f"{entry.transition_calls:.0f} transition calls, "
                f"{entry.wall_time_s:.3f}s"
            )
    comparisons = _comparisons(entries)
    headline = next(
        (
            comparison
            for comparison in comparisons
            if comparison["protocol"] == HEADLINE_PROTOCOL and comparison["n"] == HEADLINE_N
        ),
        None,
    )
    report: Dict[str, Any] = {
        "benchmark": "batch_backend",
        "smoke": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "target_reduction": TARGET_REDUCTION,
        "headline": headline,
        "headline_met": (
            bool(headline and headline["transition_call_reduction"] >= TARGET_REDUCTION)
            if headline is not None
            else None
        ),
        "entries": [asdict(entry) for entry in entries],
        "comparisons": comparisons,
        "profile": aggregate_telemetry(telemetry),
    }
    return report


def check_smoke_budgets(
    report: Dict[str, Any],
) -> Tuple[List[Dict[str, Any]], bool]:
    """Compare a smoke report's wall times against the committed budgets.

    Returns ``(rows, ok)``: one row per entry with its budget, the
    wall/budget ratio, and a verdict; ``ok`` is ``False`` when any workload
    exceeded :data:`BUDGET_FAIL_FACTOR` times its budget (a gross
    regression).  Workloads without a committed budget are reported but
    never fail — adding a smoke case must not silently break the canary.
    The inverse drift *does* fail: a committed budget matching no entry
    means the grid was renamed or resized under the canary, which would
    otherwise silently turn it into a no-op.
    """
    rows: List[Dict[str, Any]] = []
    ok = True
    seen = set()
    for entry in report.get("entries", []):
        key = (entry["protocol"], entry["backend"], entry["n"])
        seen.add(key)
        budget = SMOKE_BUDGETS_S.get(key)
        wall = entry["wall_time_s"]
        if budget is None:
            rows.append(
                {
                    "workload": key,
                    "wall_time_s": wall,
                    "budget_s": None,
                    "ratio": None,
                    "ok": True,
                }
            )
            continue
        ratio = wall / budget if budget > 0 else float("inf")
        passed = ratio <= BUDGET_FAIL_FACTOR
        ok = ok and passed
        rows.append(
            {
                "workload": key,
                "wall_time_s": wall,
                "budget_s": budget,
                "ratio": round(ratio, 2),
                "ok": passed,
            }
        )
    for key in sorted(set(SMOKE_BUDGETS_S) - seen, key=repr):
        ok = False
        rows.append(
            {
                "workload": key,
                "wall_time_s": None,
                "budget_s": SMOKE_BUDGETS_S[key],
                "ratio": None,
                "ok": False,
                "stale": True,
            }
        )
    return rows, ok


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as indented JSON, creating parent directories.

    Reports land exactly at ``path`` (never the CWD), so CI matrix legs can
    write to disjoint per-leg paths without clobbering each other.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

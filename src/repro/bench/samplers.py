"""Sampler-strategy benchmark: scan vs alias vs Fenwick on the batch backend.

Four workloads exercise the regimes the ``sampler=`` knob was built for:

* ``backup-exact`` at ``n in {10^3, 10^4}`` — the paper's wide-table Õ(n²)
  protocol.  Every applied event changes the key histogram, so the active
  pair-type table churns on nearly every draw: the alias table thrashes
  (O(P) rebuild per event) and the scan pays O(P) per draw, while the
  Fenwick tree pays O(log P) — the motivating case from the ROADMAP.
* ``backup-exact`` under *recount churn* — the PR 3 scenario shape
  (periodic 10% replace + detected-membership restart), which piles
  population-level table churn on top of the per-event churn.
* ``approximate`` (dense regime) — the composed counting stack samples the
  key histogram itself; many interactions are no-ops at key level, so the
  alias table amortises across draws.  Fenwick must stay within 10% here
  for ``auto``'s switch to be safe.
* ``static-table`` — a synthetic pruning protocol whose transitions swap
  the two keys, leaving the configuration (and therefore the weight table)
  untouched forever: the alias strategy's best case (build once, O(1) draws)
  and the workload that shows why ``auto`` *stays* on alias when nothing
  churns.

Each workload runs once per knob value (``scan``, ``alias``, ``fenwick``,
``auto``) with a shared interaction budget, so wall time is end-to-end and
apples-to-apples.  The headline checks the acceptance criteria: Fenwick
beats scan *and* alias on churning ``backup-exact`` at ``n = 10^4``, and the
``auto`` default stays within 10% of alias on static-weight workloads
(where it keeps the alias strategy).
"""

from __future__ import annotations

import json
import platform
import random
import time
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..counting.backup import ExactBackupProtocol
from ..engine.protocol import Protocol
from ..engine.samplers import SAMPLER_NAMES
from ..engine.simulator import simulate
from ..engine.vectorized import numpy_available
from ..experiments.registry import resolve_protocol
from ..experiments.spec import BudgetPolicy
from ..scenarios.events import expand_events
from ..scenarios.spec import EventSpec

__all__ = [
    "SamplerBenchCase",
    "SamplerBenchEntry",
    "StaticTableProtocol",
    "sampler_cases",
    "run_sampler_benchmark",
    "write_report",
]

#: Knob values every case runs under (the engine's registry, forced
#: strategies first so a strategy added there is benchmarked automatically;
#: the NumPy-backed "vector" strategy only when NumPy is importable).
SAMPLER_STRATEGIES = tuple(
    name
    for name in SAMPLER_NAMES
    if name != "auto" and (name != "vector" or numpy_available())
) + ("auto",)

#: Acceptance tolerances of the headline (see module docstring).
STATIC_TOLERANCE = 1.10
HEADLINE_CASE = "backup-exact-churn"
HEADLINE_N = 10_000


class StaticTableProtocol(Protocol):
    """Synthetic pruning-regime protocol with a permanently static table.

    ``keys`` state classes, every ordered pair declared active (a deliberate
    ``can_interaction_change`` overestimate) and every transition swapping
    the two keys — configuration-preserving, so the ``keys^2``-entry
    pair-weight table is built once and never changes.  Every interaction is
    one sampler draw and nothing else: the closest an end-to-end run gets to
    a draw-only microbenchmark, and the alias strategy's best case.
    """

    name = "static-table"
    deterministic_transitions = True

    def __init__(self, keys: int = 40) -> None:
        self.keys = keys

    def initial_state(self, agent_id: int) -> int:
        return agent_id % self.keys

    def transition(self, initiator: int, responder: int, rng: random.Random) -> None:
        raise NotImplementedError("static-table runs on the batch backend only")

    def output(self, state: int) -> int:
        return 0

    def state_key(self, state: int) -> Hashable:
        return state

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        return True

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return key_b, key_a

    def output_key(self, key: Hashable) -> int:
        return 0

    def initial_key_counts(self, n: int) -> Counter:
        counts: Counter = Counter()
        for agent_id in range(n):
            counts[agent_id % self.keys] += 1
        return counts


@dataclass
class SamplerBenchCase:
    """One sampler-benchmark workload (run once per strategy knob)."""

    case: str
    protocol_name: str
    make_protocol: Callable[[int], Protocol]
    regime: str
    n: int
    max_interactions: int
    events: Optional[List[EventSpec]] = None


@dataclass
class SamplerBenchEntry:
    """Result of one (case, strategy) run."""

    case: str
    protocol: str
    regime: str
    n: int
    sampler: str
    strategy: str
    switched: bool
    interactions: int
    draws: int
    transition_calls: int
    wall_time_s: float
    interactions_per_second: float
    stopped_reason: str
    sampler_stats: Dict[str, Any]


def _recount_events(period: int, first_at: int, repeat: int) -> List[EventSpec]:
    """Periodic 10% replace + restart (the recount-churn scenario shape)."""
    return [
        EventSpec(
            kind="replace",
            at_interactions=first_at,
            fraction=0.1,
            restart=True,
            repeat=repeat,
            every=BudgetPolicy(factor=float(period), n_exponent=0.0, log_exponent=0.0),
        )
    ]


def sampler_cases(smoke: bool = False) -> List[SamplerBenchCase]:
    """The benchmark grid (bounded < 30 s under ``smoke``)."""
    approximate = resolve_protocol("approximate")
    if smoke:
        return [
            SamplerBenchCase(
                "backup-exact-churn", "backup-exact",
                lambda n: ExactBackupProtocol(), "pruning",
                n=512, max_interactions=300_000,
            ),
            SamplerBenchCase(
                "backup-exact-recount", "backup-exact",
                lambda n: ExactBackupProtocol(), "pruning",
                n=256, max_interactions=200_000,
                events=_recount_events(period=60_000, first_at=50_000, repeat=2),
            ),
            SamplerBenchCase(
                "approximate-dense", "approximate",
                lambda n: approximate.build(n, {}), "dense",
                n=256, max_interactions=60_000,
            ),
            SamplerBenchCase(
                "static-table", "static-table",
                lambda n: StaticTableProtocol(keys=40), "pruning",
                n=512, max_interactions=20_000,
            ),
        ]
    return [
        SamplerBenchCase(
            "backup-exact-churn", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=1_000, max_interactions=1_500_000,
        ),
        SamplerBenchCase(
            "backup-exact-churn", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=10_000, max_interactions=30_000_000,
        ),
        SamplerBenchCase(
            "backup-exact-recount", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=1_000, max_interactions=4_000_000,
            events=_recount_events(period=1_000_000, first_at=500_000, repeat=3),
        ),
        SamplerBenchCase(
            "approximate-dense", "approximate",
            lambda n: approximate.build(n, {}), "dense",
            n=1_000, max_interactions=400_000,
        ),
        SamplerBenchCase(
            "static-table", "static-table",
            lambda n: StaticTableProtocol(keys=40), "pruning",
            n=2_000, max_interactions=150_000,
        ),
    ]


def run_entry(case: SamplerBenchCase, sampler: str, base_seed: int = 0) -> SamplerBenchEntry:
    """Run one (case, strategy) combination and time it end to end."""
    protocol = case.make_protocol(case.n)
    timeline = (
        expand_events(case.events, case.n, {}, base_seed) if case.events else ()
    )
    started = time.perf_counter()
    result = simulate(
        protocol,
        case.n,
        seed=base_seed,
        backend="batch",
        sampler=sampler,
        # This benchmark compares the *Python* sampler strategies against
        # each other; the NumPy layer has its own benchmark (--accel).
        accel="python",
        max_interactions=case.max_interactions,
        timeline=timeline,
    )
    wall = time.perf_counter() - started
    stats = result.extra.get("sampler", {})
    return SamplerBenchEntry(
        case=case.case,
        protocol=case.protocol_name,
        regime=case.regime,
        n=case.n,
        sampler=sampler,
        strategy=stats.get("strategy", sampler),
        switched=bool(stats.get("switched")),
        interactions=result.interactions,
        draws=int(stats.get("draws", 0)),
        transition_calls=int(result.extra.get("transition_calls", 0)),
        wall_time_s=round(wall, 4),
        interactions_per_second=round(result.interactions / wall, 1) if wall > 0 else 0.0,
        stopped_reason=result.stopped_reason,
        sampler_stats=stats,
    )


def _comparisons(entries: List[SamplerBenchEntry]) -> List[Dict[str, Any]]:
    by_case: Dict[tuple, Dict[str, SamplerBenchEntry]] = {}
    for entry in entries:
        by_case.setdefault((entry.case, entry.n), {})[entry.sampler] = entry
    comparisons = []
    for (case, n), strategies in sorted(by_case.items()):
        if not all(name in strategies for name in SAMPLER_STRATEGIES):
            continue
        walls = {name: strategies[name].wall_time_s for name in SAMPLER_STRATEGIES}
        fenwick = walls["fenwick"] or float("inf")
        alias = walls["alias"] or float("inf")
        comparisons.append(
            {
                "case": case,
                "n": n,
                "wall_time_s": walls,
                "fenwick_speedup_vs_scan": round(walls["scan"] / fenwick, 2),
                "fenwick_speedup_vs_alias": round(alias / fenwick, 2),
                "auto_vs_alias": round(walls["auto"] / alias, 2),
                "auto_strategy": strategies["auto"].strategy,
                "auto_switched": strategies["auto"].switched,
            }
        )
    return comparisons


def run_sampler_benchmark(
    cases: Optional[List[SamplerBenchCase]] = None,
    base_seed: int = 0,
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the sampler grid and return the ``BENCH_samplers.json`` report."""
    if cases is None:
        cases = sampler_cases(smoke=smoke)
    entries: List[SamplerBenchEntry] = []
    for case in cases:
        for sampler in SAMPLER_STRATEGIES:
            if progress:
                progress(f"{case.case} n={case.n} sampler={sampler} ...")
            entry = run_entry(case, sampler, base_seed=base_seed)
            entries.append(entry)
            if progress:
                progress(
                    f"  {entry.interactions} interactions, {entry.draws} draws, "
                    f"{entry.wall_time_s:.3f}s (strategy={entry.strategy})"
                )
    comparisons = _comparisons(entries)

    def find(case: str, pin_n: Optional[int] = None) -> Optional[Dict[str, Any]]:
        matching = [c for c in comparisons if c["case"] == case]
        pinned = [c for c in matching if c["n"] == pin_n]
        if pinned:
            return pinned[0]
        # Smoke and custom grids lack the pinned size; judge the largest.
        return max(matching, key=lambda c: c["n"]) if matching else None

    churn = find(HEADLINE_CASE, pin_n=HEADLINE_N)
    static = find("static-table")
    dense = find("approximate-dense")
    headline: Dict[str, Any] = {
        "churn": churn,
        "static": static,
        "dense": dense,
        "criteria": {
            "churn_fenwick_beats_scan": (
                churn["fenwick_speedup_vs_scan"] > 1.0 if churn else None
            ),
            "churn_fenwick_beats_alias": (
                churn["fenwick_speedup_vs_alias"] > 1.0 if churn else None
            ),
            "static_auto_within_tolerance": (
                static["auto_vs_alias"] <= STATIC_TOLERANCE if static else None
            ),
            "dense_fenwick_within_tolerance": (
                dense["fenwick_speedup_vs_alias"] >= 1.0 / STATIC_TOLERANCE
                if dense
                else None
            ),
        },
    }
    criteria = [value for value in headline["criteria"].values() if value is not None]
    return {
        "benchmark": "samplers",
        "smoke": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "static_tolerance": STATIC_TOLERANCE,
        "headline": headline,
        # The smoke grid has no headline-size case; only the full grid judges.
        "headline_met": bool(criteria) and all(criteria) if not smoke else None,
        "entries": [asdict(entry) for entry in entries],
        "comparisons": comparisons,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

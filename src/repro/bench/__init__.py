"""Backend benchmark harness (``repro-bench``).

Times the per-agent and batched simulation backends across protocols and
population sizes, checks the headline perf target (a >= 50x reduction in
Python-level transition calls on the epidemic protocol at ``n = 10**5``),
and writes ``BENCH_batch_backend.json`` so the perf trajectory is tracked
across PRs.

``repro-bench --samplers`` runs the sampler-strategy benchmark instead
(:mod:`repro.bench.samplers`): scan vs alias vs Fenwick vs auto on churning,
dynamic-population, dense, and static workloads, written to
``BENCH_samplers.json``.

``repro-bench --accel`` runs the acceleration benchmark
(:mod:`repro.bench.vectorized`): the pure-Python hot loop vs the
NumPy-vectorised kernels on the headline counting workloads, written to
``BENCH_vectorized.json``.
"""

from .runner import (
    BenchCase,
    BenchEntry,
    default_cases,
    run_benchmark,
    smoke_cases,
)
from .vectorized import (
    StaticDenseProtocol,
    run_vectorized_benchmark,
    vectorized_cases,
)
from .samplers import (
    SamplerBenchCase,
    SamplerBenchEntry,
    run_sampler_benchmark,
    sampler_cases,
)

__all__ = [
    "BenchCase",
    "BenchEntry",
    "default_cases",
    "run_benchmark",
    "smoke_cases",
    "SamplerBenchCase",
    "SamplerBenchEntry",
    "run_sampler_benchmark",
    "sampler_cases",
    "StaticDenseProtocol",
    "run_vectorized_benchmark",
    "vectorized_cases",
]

"""Backend benchmark harness (``repro-bench``).

Times the per-agent and batched simulation backends across protocols and
population sizes, checks the headline perf target (a >= 50x reduction in
Python-level transition calls on the epidemic protocol at ``n = 10**5``),
and writes ``BENCH_batch_backend.json`` so the perf trajectory is tracked
across PRs.
"""

from .runner import (
    BenchCase,
    BenchEntry,
    default_cases,
    run_benchmark,
    smoke_cases,
)

__all__ = [
    "BenchCase",
    "BenchEntry",
    "default_cases",
    "run_benchmark",
    "smoke_cases",
]

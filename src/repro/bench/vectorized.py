"""Acceleration-layer benchmark: ``accel="python"`` vs ``accel="numpy"``.

Each workload runs once per acceleration path with a *shared interaction
budget* (no convergence predicate), so wall time is end-to-end and
apples-to-apples — the two paths draw from the same chain law but different
random streams, and a convergence-bound run would measure the luck of the
stream, not the kernel.

The grid covers the regimes the NumPy layer was built for:

* ``backup-exact`` at ``n in {10^3, 10^4}`` — the paper's Appendix-C.2
  exact-counting protocol, the headline workload.  In the pruning regime
  every applied event changes ~4 key counts, and the Python path pays the
  O(changed * K) ``_update_pair_weights`` walk per event (~300 us at
  ``n = 10^4``); the factorised ``w(a, b) = c_a * c_b`` kernel replaces it
  with O(changed) vectorised column updates.  The acceptance criterion is
  an end-to-end speedup of at least :data:`TARGET_SPEEDUP` at
  ``n = 10^4``.
* ``backup-approximate`` at ``n = 10^4`` — the Appendix-C.1 counting
  workload behind the committed ``SWEEP_counting-curve.json``.
* ``approximate`` (dense regime) — the composed counting stack's phase
  clocks change the histogram on nearly every interaction, so the dense
  block kernel detects thrash and falls back to the Python sampler: the
  honest expectation here is parity (speedup ~ 1.0), recorded so a
  regression in the fallback heuristic is visible.
* ``static-dense`` — a synthetic dense-regime workload whose transitions
  swap the two keys (configuration-preserving forever): blocks are never
  invalidated and the benchmark shows the raw amortisation ceiling of the
  vectorised draws.
"""

from __future__ import annotations

import json
import platform
import random
import time
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..counting.backup import ApproximateBackupProtocol, ExactBackupProtocol
from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol
from ..engine.simulator import simulate
from ..engine.vectorized import numpy_available
from ..experiments.registry import resolve_protocol

__all__ = [
    "VectorBenchCase",
    "VectorBenchEntry",
    "StaticDenseProtocol",
    "vectorized_cases",
    "run_vectorized_benchmark",
    "write_report",
]

#: Acceleration paths every case runs under.
ACCEL_PATHS = ("python", "numpy")

#: Acceptance target: the NumPy path must be at least this many times
#: faster end-to-end on the headline counting workload.
TARGET_SPEEDUP = 3.0
HEADLINE_CASE = "backup-exact"
HEADLINE_MIN_N = 10_000


class StaticDenseProtocol(Protocol):
    """Synthetic dense-regime protocol whose histogram never changes.

    Keeps the conservative ``can_interaction_change`` (dense regime — the
    participants are drawn straight from the key histogram) while every
    transition swaps the two keys, which is configuration-preserving: the
    histogram, and therefore the block kernel's cumulative-sum array, is
    built once and never invalidated.  Every interaction is two draws and
    nothing else — the dense analogue of the sampler benchmark's
    ``static-table``, showing the amortisation ceiling of blocked draws.
    """

    name = "static-dense"
    deterministic_transitions = True

    def __init__(self, keys: int = 40) -> None:
        self.keys = keys

    def initial_state(self, agent_id: int) -> int:
        return agent_id % self.keys

    def transition(self, initiator: int, responder: int, rng: random.Random) -> None:
        raise NotImplementedError("static-dense runs on the batch backend only")

    def output(self, state: int) -> int:
        return 0

    def state_key(self, state: int) -> Hashable:
        return state

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return key_b, key_a

    def output_key(self, key: Hashable) -> int:
        return 0

    def initial_key_counts(self, n: int) -> Counter:
        counts: Counter = Counter()
        for agent_id in range(n):
            counts[agent_id % self.keys] += 1
        return counts


@dataclass
class VectorBenchCase:
    """One acceleration-benchmark workload (run once per accel path)."""

    case: str
    protocol_name: str
    make_protocol: Callable[[int], Protocol]
    regime: str
    n: int
    max_interactions: int


@dataclass
class VectorBenchEntry:
    """Result of one (case, accel path) run."""

    case: str
    protocol: str
    regime: str
    n: int
    accel: str
    active: str
    fallback_reason: Optional[str]
    interactions: int
    transition_calls: int
    wall_time_s: float
    interactions_per_second: float
    stopped_reason: str
    sampler_stats: Dict[str, Any]


def vectorized_cases(smoke: bool = False) -> List[VectorBenchCase]:
    """The benchmark grid (bounded < 30 s under ``smoke``)."""
    approximate = resolve_protocol("approximate")
    if smoke:
        return [
            VectorBenchCase(
                "backup-exact", "backup-exact",
                lambda n: ExactBackupProtocol(), "pruning",
                n=512, max_interactions=300_000,
            ),
            VectorBenchCase(
                "approximate-dense", "approximate",
                lambda n: approximate.build(n, {}), "dense",
                n=256, max_interactions=60_000,
            ),
            VectorBenchCase(
                "static-dense", "static-dense",
                lambda n: StaticDenseProtocol(keys=40), "dense",
                n=512, max_interactions=100_000,
            ),
        ]
    return [
        VectorBenchCase(
            "backup-exact", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=1_000, max_interactions=1_500_000,
        ),
        VectorBenchCase(
            "backup-exact", "backup-exact",
            lambda n: ExactBackupProtocol(), "pruning",
            n=10_000, max_interactions=30_000_000,
        ),
        VectorBenchCase(
            "backup-approximate", "backup-approximate",
            lambda n: ApproximateBackupProtocol(), "pruning",
            n=10_000, max_interactions=120_000_000,
        ),
        VectorBenchCase(
            "approximate-dense", "approximate",
            lambda n: approximate.build(n, {}), "dense",
            n=1_000, max_interactions=400_000,
        ),
        VectorBenchCase(
            "static-dense", "static-dense",
            lambda n: StaticDenseProtocol(keys=40), "dense",
            n=2_000, max_interactions=1_000_000,
        ),
    ]


def run_entry(case: VectorBenchCase, accel: str, base_seed: int = 0) -> VectorBenchEntry:
    """Run one (case, accel path) combination and time it end to end."""
    protocol = case.make_protocol(case.n)
    started = time.perf_counter()
    result = simulate(
        protocol,
        case.n,
        seed=base_seed,
        backend="batch",
        accel=accel,
        max_interactions=case.max_interactions,
    )
    wall = time.perf_counter() - started
    accel_record = result.extra.get("accel", {})
    return VectorBenchEntry(
        case=case.case,
        protocol=case.protocol_name,
        regime=case.regime,
        n=case.n,
        accel=accel,
        active=accel_record.get("active", accel),
        fallback_reason=accel_record.get("fallback_reason"),
        interactions=result.interactions,
        transition_calls=int(result.extra.get("transition_calls", 0)),
        wall_time_s=round(wall, 4),
        interactions_per_second=round(result.interactions / wall, 1) if wall > 0 else 0.0,
        stopped_reason=result.stopped_reason,
        sampler_stats=result.extra.get("sampler", {}),
    )


def _comparisons(entries: List[VectorBenchEntry]) -> List[Dict[str, Any]]:
    by_case: Dict[tuple, Dict[str, VectorBenchEntry]] = {}
    for entry in entries:
        by_case.setdefault((entry.case, entry.n), {})[entry.accel] = entry
    comparisons = []
    for (case, n), paths in sorted(by_case.items()):
        if not all(name in paths for name in ACCEL_PATHS):
            continue
        python_wall = paths["python"].wall_time_s
        numpy_wall = paths["numpy"].wall_time_s or float("inf")
        comparisons.append(
            {
                "case": case,
                "n": n,
                "regime": paths["python"].regime,
                "python_wall_time_s": python_wall,
                "numpy_wall_time_s": paths["numpy"].wall_time_s,
                "speedup": round(python_wall / numpy_wall, 2),
                "numpy_active": paths["numpy"].active,
                "numpy_fallback": paths["numpy"].fallback_reason,
            }
        )
    return comparisons


def run_vectorized_benchmark(
    cases: Optional[List[VectorBenchCase]] = None,
    base_seed: int = 0,
    smoke: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the accel grid and return the ``BENCH_vectorized.json`` report."""
    if not numpy_available():
        raise ConfigurationError(
            "the acceleration benchmark compares accel='python' against "
            "accel='numpy' and needs NumPy installed (and not vetoed by "
            "REPRO_NO_NUMPY); pip install 'repro-berenbrink-kr19[accel]'"
        )
    if cases is None:
        cases = vectorized_cases(smoke=smoke)
    entries: List[VectorBenchEntry] = []
    for case in cases:
        for accel in ACCEL_PATHS:
            if progress:
                progress(f"{case.case} n={case.n} accel={accel} ...")
            entry = run_entry(case, accel, base_seed=base_seed)
            entries.append(entry)
            if progress:
                progress(
                    f"  {entry.interactions} interactions, {entry.wall_time_s:.3f}s "
                    f"(active={entry.active})"
                )
    comparisons = _comparisons(entries)
    headline_candidates = [
        comparison
        for comparison in comparisons
        if comparison["case"] == HEADLINE_CASE and comparison["n"] >= HEADLINE_MIN_N
    ]
    headline = max(headline_candidates, key=lambda c: c["n"], default=None)
    import numpy as _numpy  # guarded by the availability check above

    return {
        "benchmark": "vectorized",
        "smoke": smoke,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": _numpy.__version__,
        "target_speedup": TARGET_SPEEDUP,
        "headline": headline,
        # The smoke grid has no headline-size case; only the full grid judges.
        "headline_met": (
            bool(headline and headline["speedup"] >= TARGET_SPEEDUP)
            if headline is not None
            else None
        ),
        "entries": [asdict(entry) for entry in entries],
        "comparisons": comparisons,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    """Write the report as indented JSON (delegates to the shared writer)."""
    from .runner import write_report as _write

    _write(report, path)

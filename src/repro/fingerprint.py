"""Code fingerprinting and canonical JSON for content-addressed results.

A simulation result is only reusable — by ``--resume`` or by the server's
:class:`~repro.server.cache.ResultCache` — when the code that produced it
still has the same semantics.  The :func:`code_fingerprint` combines the
package version with a hash over the package's Python source, so any source
change (a protocol tweak, a backend fix, a new sampler) invalidates cached
and resumable results instead of silently mixing outputs of two code
versions.

:func:`canonical_json` is the byte-stable serialisation both layers key on:
sorted keys, minimal separators, no trailing whitespace — the same dict
always maps to the same bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from typing import Any, Dict

__all__ = [
    "PACKAGE_VERSION",
    "canonical_json",
    "sha256_hex",
    "source_digest",
    "code_fingerprint",
    "spec_sha256",
]

#: Single source of truth for the package version (setup.py reads it here).
PACKAGE_VERSION = "0.10.0"


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to byte-stable canonical JSON.

    Keys are sorted and separators minimal, so structurally equal values
    always produce identical bytes — the property cache keys and artifact
    stamps rely on.  Non-JSON values raise ``TypeError`` (callers pass
    JSON-ready dicts such as ``spec.to_dict()`` or worker payloads).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def sha256_hex(text: str) -> str:
    """Hex SHA-256 of a text string (UTF-8)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def source_digest() -> str:
    """Hex SHA-256 over every ``*.py`` source file of the ``repro`` package.

    Files are hashed in sorted relative-path order together with their
    paths, so renames and content changes both change the digest.  The
    whole package is "spec-relevant": protocols, backends, samplers, the
    engine, and the experiment runners all shape what a cell produces.
    """
    package_root = os.path.dirname(os.path.abspath(__file__))
    digest = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = [name for name in dirnames if name != "__pycache__"]
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                sources.append((os.path.relpath(path, package_root), path))
    for relpath, path in sorted(sources):
        digest.update(relpath.encode("utf-8"))
        digest.update(b"\0")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\0")
    return digest.hexdigest()


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """The code-version stamp embedded in artifacts and cache keys.

    ``<version>+<12-hex source digest>`` — human-readable enough to eyeball
    in an artifact, precise enough that any source change invalidates it.
    """
    return f"{PACKAGE_VERSION}+{source_digest()[:12]}"


def spec_sha256(spec_dict: Dict[str, Any]) -> str:
    """Content address of a spec: SHA-256 of its canonical JSON."""
    return sha256_hex(canonical_json(spec_dict))

"""Auxiliary population protocols (Section 2 of the paper).

These are the building blocks the counting protocols are assembled from:
one-way epidemics (broadcast), the junta process, junta-driven phase clocks,
synthetic coins, slow and fast leader election, and the two load-balancing
processes.  Each module exposes both an in-place *component update* (used by
the composed protocols in :mod:`repro.counting`) and a standalone
:class:`~repro.engine.Protocol` so the primitive can be measured in isolation
(experiments E4–E8).
"""

from .epidemic import EpidemicState, MaximumBroadcast, OneWayEpidemic, epidemic_update
from .fast_leader_election import (
    FastLeaderElectionAgent,
    FastLeaderElectionProtocol,
    FastLeaderElectionState,
    fast_leader_election_update,
)
from .junta import (
    JuntaProtocol,
    JuntaState,
    junta_summary,
    junta_update,
    junta_update_pair,
)
from .leader_election import (
    LeaderElectionAgent,
    LeaderElectionProtocol,
    LeaderElectionState,
    leader_election_update,
)
from .load_balancing import (
    EMPTY,
    ClassicalLoadBalancing,
    ClassicalLoadState,
    PowersOfTwoLoadBalancing,
    PowersOfTwoState,
    balance_powers_of_two,
    discrepancy,
    load_from_log,
    split_evenly,
    total_load_from_logs,
)
from .params import (
    FastLeaderElectionParameters,
    LeaderElectionParameters,
    level_scaled,
)
from .phase_clock import (
    DEFAULT_CLOCK_MODULUS,
    JuntaPhaseClockProtocol,
    JuntaPhaseClockState,
    PhaseClockState,
    phase_clock_update,
)
from .synthetic_coin import ParityCoinProtocol, ParityCoinState, flip, flip_bits

__all__ = [
    "EpidemicState",
    "MaximumBroadcast",
    "OneWayEpidemic",
    "epidemic_update",
    "FastLeaderElectionAgent",
    "FastLeaderElectionProtocol",
    "FastLeaderElectionState",
    "fast_leader_election_update",
    "JuntaProtocol",
    "JuntaState",
    "junta_summary",
    "junta_update",
    "junta_update_pair",
    "LeaderElectionAgent",
    "LeaderElectionProtocol",
    "LeaderElectionState",
    "leader_election_update",
    "EMPTY",
    "ClassicalLoadBalancing",
    "ClassicalLoadState",
    "PowersOfTwoLoadBalancing",
    "PowersOfTwoState",
    "balance_powers_of_two",
    "discrepancy",
    "load_from_log",
    "split_evenly",
    "total_load_from_logs",
    "FastLeaderElectionParameters",
    "LeaderElectionParameters",
    "level_scaled",
    "DEFAULT_CLOCK_MODULUS",
    "JuntaPhaseClockProtocol",
    "JuntaPhaseClockState",
    "PhaseClockState",
    "phase_clock_update",
    "ParityCoinProtocol",
    "ParityCoinState",
    "flip",
    "flip_bits",
]

"""One-way epidemics (broadcast) and maximum broadcast — Section 2, Lemma 3.

The goal of a one-way epidemic is to spread a value to all members of the
population.  The transition is ``delta(u, v) = (max(u, v), v)``: only the
*initiator* updates, adopting the maximum of the two values.  Maximum
broadcast is the natural extension where every agent starts with its own
value and the population converges on the global maximum.

Lemma 3 (well known, e.g. Angluin et al. 2008): the number of interactions to
complete a (maximum) broadcast is ``O(n log n)`` w.h.p.  Experiment E4
measures this empirically.

This module provides both the in-place *component update* used inside the
composed counting protocols and standalone :class:`~repro.engine.Protocol`
implementations for isolated study.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol

__all__ = [
    "epidemic_update",
    "EpidemicState",
    "OneWayEpidemic",
    "MaximumBroadcast",
]


def epidemic_update(initiator_value: int, responder_value: int) -> int:
    """Return the initiator's new value under the one-way epidemic rule.

    Implements ``delta(u, v) = (max(u, v), v)``: the responder is untouched,
    the initiator adopts the maximum.
    """
    return initiator_value if initiator_value >= responder_value else responder_value


@dataclass(slots=True)
class EpidemicState:
    """State of an agent in a standalone (maximum-)broadcast protocol.

    Attributes:
        value: The agent's current value; the output of the protocol.
    """

    value: int = 0

    def key(self) -> Hashable:
        return self.value


class OneWayEpidemic(Protocol[EpidemicState]):
    """Standalone one-way epidemic: ``source_count`` agents start informed.

    Agents start with value ``0`` except the first ``source_count`` agents,
    which start with ``source_value``; the protocol converges when every
    agent holds ``source_value``.

    Args:
        source_count: Number of initially informed agents (``>= 1``).
        source_value: The value being spread (``> 0``).
    """

    name = "one-way-epidemic"
    deterministic_transitions = True

    def __init__(self, source_count: int = 1, source_value: int = 1) -> None:
        if source_count < 1:
            raise ConfigurationError("source_count must be at least 1")
        if source_value <= 0:
            raise ConfigurationError("source_value must be positive (0 means 'uninformed')")
        self.source_count = source_count
        self.source_value = source_value

    def initial_state(self, agent_id: int) -> EpidemicState:
        value = self.source_value if agent_id < self.source_count else 0
        return EpidemicState(value=value)

    def transition(
        self, initiator: EpidemicState, responder: EpidemicState, rng: random.Random
    ) -> None:
        initiator.value = epidemic_update(initiator.value, responder.value)

    def output(self, state: EpidemicState) -> int:
        return state.value

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        # The initiator changes iff the responder holds a strictly larger value.
        return bool(key_b > key_a)  # type: ignore[operator]

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return epidemic_update(key_a, key_b), key_b  # type: ignore[arg-type]

    def output_key(self, key: Hashable) -> int:
        return key  # type: ignore[return-value]

    def initial_key_counts(self, n: int) -> Counter:
        sources = min(self.source_count, n)
        counts = Counter({self.source_value: sources})
        if n > sources:
            counts[0] = n - sources
        return counts


class MaximumBroadcast(Protocol[EpidemicState]):
    """Standalone maximum broadcast: each agent starts with its own value.

    The input configuration is given explicitly as a list of initial values
    (one per agent); the protocol converges when every agent outputs the
    global maximum.  The transition function itself is identical to
    :class:`OneWayEpidemic` and does not depend on ``n`` — supplying the
    initial values is part of the *input configuration*, not the protocol,
    so the protocol remains uniform.

    Args:
        initial_values: Per-agent starting values.  Agents beyond the length
            of the list start at ``0``.
    """

    name = "maximum-broadcast"
    deterministic_transitions = True

    def __init__(self, initial_values: Sequence[int]) -> None:
        if not initial_values:
            raise ConfigurationError("initial_values must not be empty")
        self.initial_values: List[int] = list(initial_values)

    def initial_state(self, agent_id: int) -> EpidemicState:
        if agent_id < len(self.initial_values):
            return EpidemicState(value=self.initial_values[agent_id])
        return EpidemicState(value=0)

    def transition(
        self, initiator: EpidemicState, responder: EpidemicState, rng: random.Random
    ) -> None:
        initiator.value = epidemic_update(initiator.value, responder.value)

    def output(self, state: EpidemicState) -> int:
        return state.value

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        return bool(key_b > key_a)  # type: ignore[operator]

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return epidemic_update(key_a, key_b), key_b  # type: ignore[arg-type]

    def output_key(self, key: Hashable) -> int:
        return key  # type: ignore[return-value]

    def initial_key_counts(self, n: int) -> Counter:
        counts = Counter(self.initial_values[:n])
        if n > len(self.initial_values):
            counts[0] += n - len(self.initial_values)
        return counts

    @property
    def target(self) -> int:
        """The value every agent should eventually output (the global maximum)."""
        return max(self.initial_values)

"""Fast leader election — Lemma 7 and Appendix D (following [8]).

`FastLeaderElection` trades states for speed: contenders draw
``Theta(log n)`` random bits per round (the bit budget is derived uniformly
from the junta level, ``~ 2^level``), the drawn numbers are spread by maximum
broadcast in the following phase, and every contender that observes a larger
number withdraws.  With ``~log n + O(1)`` bits per round all contenders draw
distinct numbers w.h.p., so a constant number of rounds suffices to leave a
unique leader; the protocol then sets ``leaderDone``.  The state space is
dominated by the drawn numbers, i.e. ``Õ(n)`` states, and the running time is
``O(n log n)`` interactions — both as claimed by Lemma 7.

Key invariant (used by the stable variant of `CountExact`): there is always
at least one contender, because the contender holding the round's maximum
never withdraws.

This module provides the component update used inside protocol `CountExact`
(Algorithm 3, Stage 1) and a standalone protocol for experiment E7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from ..engine.protocol import Protocol
from .junta import JuntaState, junta_update_pair
from .params import FastLeaderElectionParameters
from .phase_clock import DEFAULT_CLOCK_MODULUS, PhaseClockState, phase_clock_update
from .synthetic_coin import flip

__all__ = [
    "FastLeaderElectionState",
    "fast_leader_election_update",
    "FastLeaderElectionProtocol",
    "FastLeaderElectionAgent",
]


@dataclass(slots=True)
class FastLeaderElectionState:
    """Per-agent state of `FastLeaderElection`.

    Attributes:
        leader: Whether the agent is still a leader contender.
        leader_done: Whether the election horizon has been reached.
        value: The number drawn bit-by-bit in the current round (contenders).
        bits_drawn: How many bits of ``value`` have been drawn so far.
        best_seen: Maximum round value observed (relayed by all agents).
        best_tag: Phase tag (mod ``tag_modulus``) of ``best_seen``.
        phases_completed: Number of phases of the election completed.
    """

    leader: bool = True
    leader_done: bool = False
    value: int = 0
    bits_drawn: int = 0
    best_seen: int = 0
    best_tag: int = 0
    phases_completed: int = 0

    def key(self) -> Hashable:
        return (
            self.leader,
            self.leader_done,
            self.value,
            self.bits_drawn,
            self.best_seen,
            self.best_tag,
            self.phases_completed,
        )

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.leader = True
        self.leader_done = False
        self.value = 0
        self.bits_drawn = 0
        self.best_seen = 0
        self.best_tag = 0
        self.phases_completed = 0


def fast_leader_election_update(
    u: FastLeaderElectionState,
    v: FastLeaderElectionState,
    u_phase: int,
    u_first_tick: bool,
    u_level: int,
    rng: random.Random,
    params: FastLeaderElectionParameters = FastLeaderElectionParameters(),
) -> None:
    """One-way `FastLeaderElection` update for initiator ``u`` against ``v``.

    Phases alternate between *draw* phases (even ``phases_completed``), in
    which contenders assemble a random number bit by bit, and *broadcast*
    phases (odd), in which the maximum drawn number is spread and smaller
    contenders withdraw.

    Args:
        u: Initiator's state (mutated in place).
        v: Responder's state (read only).
        u_phase: Initiator's phase-clock phase counter.
        u_first_tick: Whether this is the initiator's first initiated
            interaction of its current phase.
        u_level: Initiator's junta level (drives the per-round bit budget).
        rng: Synthetic-coin randomness.
        params: Tunable constants.
    """
    tag_mod = params.tag_modulus
    current_tag = u_phase % tag_mod

    if v.leader_done:
        u.leader_done = True

    if u_first_tick and not u.leader_done:
        u.phases_completed += 1
        if u.phases_completed >= params.total_phases:
            u.leader_done = True
        if u.leader and u.phases_completed % 2 == 1:
            # Entering a draw phase: start a fresh number.
            u.value = 0
            u.bits_drawn = 0
        if u.phases_completed % 2 == 0:
            # Entering a broadcast phase: seed the maximum broadcast.
            u.best_seen = u.value if u.leader else 0
            u.best_tag = current_tag

    if u.leader_done:
        return

    in_draw_phase = u.phases_completed % 2 == 1
    if in_draw_phase:
        if u.leader and u.bits_drawn < params.bits(u_level):
            u.value = (u.value << 1) | flip(rng)
            u.bits_drawn += 1
    else:
        # Broadcast phase: relay the maximum value carrying the current tag.
        if v.best_tag == current_tag and u.best_tag == current_tag and v.best_seen > u.best_seen:
            u.best_seen = v.best_seen
        if u.leader and u.best_tag == current_tag and u.best_seen > u.value:
            u.leader = False


@dataclass(slots=True)
class FastLeaderElectionAgent:
    """Full agent state of the standalone fast leader-election protocol."""

    junta: JuntaState
    clock: PhaseClockState
    election: FastLeaderElectionState

    def key(self) -> Hashable:
        return (self.junta.key(), self.clock.key(), self.election.key())


class FastLeaderElectionProtocol(Protocol[FastLeaderElectionAgent]):
    """Standalone `FastLeaderElection` (junta + phase clock + bit tournament).

    The output of an agent is ``True`` when it is still a leader contender.

    Args:
        params: Fast-leader-election constants.
        clock_modulus: Phase-clock modulus ``m``.
    """

    name = "fast-leader-election"

    def __init__(
        self,
        params: FastLeaderElectionParameters = FastLeaderElectionParameters(),
        clock_modulus: int = DEFAULT_CLOCK_MODULUS,
    ) -> None:
        self.params = params
        self.clock_modulus = clock_modulus

    def initial_state(self, agent_id: int) -> FastLeaderElectionAgent:
        return FastLeaderElectionAgent(
            junta=JuntaState(), clock=PhaseClockState(), election=FastLeaderElectionState()
        )

    def transition(
        self,
        initiator: FastLeaderElectionAgent,
        responder: FastLeaderElectionAgent,
        rng: random.Random,
    ) -> None:
        u_saw_higher, v_saw_higher = junta_update_pair(initiator.junta, responder.junta)
        if u_saw_higher:
            initiator.clock.reset()
            initiator.election.reset()
        if v_saw_higher:
            responder.clock.reset()
            responder.election.reset()
        phase_clock_update(
            initiator.clock,
            responder.clock.clock,
            is_junta=initiator.junta.junta,
            modulus=self.clock_modulus,
        )
        fast_leader_election_update(
            initiator.election,
            responder.election,
            u_phase=initiator.clock.phase,
            u_first_tick=initiator.clock.first_tick,
            u_level=initiator.junta.level,
            rng=rng,
            params=self.params,
        )
        initiator.clock.first_tick = False

    def output(self, state: FastLeaderElectionAgent) -> bool:
        return state.election.leader

    def state_key(self, state: FastLeaderElectionAgent) -> Hashable:
        return state.key()

    def copy_state(self, state: FastLeaderElectionAgent) -> FastLeaderElectionAgent:
        return FastLeaderElectionAgent(
            junta=JuntaState(
                level=state.junta.level,
                active=state.junta.active,
                junta=state.junta.junta,
                reached_level=state.junta.reached_level,
            ),
            clock=PhaseClockState(
                clock=state.clock.clock,
                phase=state.clock.phase,
                first_tick=state.clock.first_tick,
            ),
            election=FastLeaderElectionState(
                leader=state.election.leader,
                leader_done=state.election.leader_done,
                value=state.election.value,
                bits_drawn=state.election.bits_drawn,
                best_seen=state.election.best_seen,
                best_tag=state.election.best_tag,
                phases_completed=state.election.phases_completed,
            ),
        )

    @staticmethod
    def leader_count(outputs) -> int:
        """Number of agents currently claiming leadership."""
        return sum(1 for value in outputs if value)

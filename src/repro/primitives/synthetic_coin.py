"""Synthetic coins — Appendix D, following Alistarh et al. [1] and [11].

The population model has no intrinsic randomness available to agents beyond
the scheduler's choices.  The *synthetic coin* technique extracts fair(ish)
random bits from the schedule: every agent keeps a parity bit that it flips
on each of its interactions; the partner's parity bit is then (close to) a
uniform random bit, independent across interactions.

The composed protocols in this library draw their coin flips from the
simulator's seeded PRNG (``rng.getrandbits(1)``), which models exactly the
randomness the synthetic-coin construction provides without re-deriving the
analysis of [11].  This module implements the actual parity construction as
well so that its statistical behaviour can be validated (tests compare the
empirical bias of parity-derived bits against fair PRNG bits).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, List, Tuple

from ..engine.protocol import Protocol

__all__ = ["flip", "flip_bits", "ParityCoinState", "ParityCoinProtocol"]


def flip(rng: random.Random) -> int:
    """Return one fair random bit (the synthetic-coin abstraction)."""
    return rng.getrandbits(1)


def flip_bits(rng: random.Random, count: int) -> int:
    """Return a ``count``-bit uniformly random integer built from coin flips."""
    if count <= 0:
        return 0
    return rng.getrandbits(count)


@dataclass(slots=True)
class ParityCoinState:
    """State of an agent in the explicit parity-coin construction.

    Attributes:
        parity: The agent's own parity bit, flipped on every interaction.
        samples: Number of partner-parity observations made as an initiator.
        ones: Number of those observations that were 1.
    """

    parity: int = 0
    samples: int = 0
    ones: int = 0

    def key(self) -> Hashable:
        return (self.parity, self.samples, self.ones)


class ParityCoinProtocol(Protocol[ParityCoinState]):
    """The explicit synthetic-coin construction of [1]/[11].

    Each agent flips its parity on every interaction it participates in.  The
    initiator additionally records the responder's (pre-flip) parity as a
    random-bit sample.  The output of an agent is the fraction of ones among
    its samples, which should concentrate around 1/2.
    """

    name = "parity-coin"
    deterministic_transitions = True

    def initial_state(self, agent_id: int) -> ParityCoinState:
        # Half the agents start with parity 1, matching the standard warm start
        # that removes the initial all-zero bias; this is part of the input
        # configuration, not of the transition function.
        return ParityCoinState(parity=agent_id % 2)

    def transition(
        self, initiator: ParityCoinState, responder: ParityCoinState, rng: random.Random
    ) -> None:
        observed = responder.parity
        initiator.samples += 1
        initiator.ones += observed
        initiator.parity ^= 1
        responder.parity ^= 1

    def output(self, state: ParityCoinState) -> float:
        if state.samples == 0:
            return 0.5
        return state.ones / state.samples

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        parity_a, samples_a, ones_a = key_a  # type: ignore[misc]
        parity_b, samples_b, ones_b = key_b  # type: ignore[misc]
        return (
            (parity_a ^ 1, samples_a + 1, ones_a + parity_b),
            (parity_b ^ 1, samples_b, ones_b),
        )

    def output_key(self, key: Hashable) -> float:
        _parity, samples, ones = key  # type: ignore[misc]
        if samples == 0:
            return 0.5
        return ones / samples

    def initial_key_counts(self, n: int) -> Counter:
        counts = Counter({(0, 0, 0): (n + 1) // 2})
        if n >= 2:
            counts[(1, 0, 0)] = n // 2
        return counts

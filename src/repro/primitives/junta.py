"""The junta process — Section 2, Lemma 4 (following [18] and [8]).

The junta process marks ``Theta(n^epsilon)`` agents — the *junta* — which
subsequently drive the phase clocks.  Each agent holds a triple
``(level, active, junta)`` initialised to ``(0, True, True)``:

* an **active** agent that meets another active agent *on the same level*
  increases its level; if it meets anything else it becomes inactive;
* any agent that meets an agent on a **higher level** clears its junta bit;
* an **inactive** agent adopts the partner's level if that level is higher.

The process stabilises when every agent is inactive; the junta consists of
the agents that reached the maximal level with their junta bit still set.
Lemma 4 states that w.h.p. all agents become inactive within ``O(n log n)``
interactions, the maximal level lies in ``[log log n - 4, log log n + 8]``,
and the number of agents on the maximal level is ``O(sqrt(n) * log n)``.
Experiment E5 measures all three quantities.

Besides driving the clocks, the maximal level doubles as a coarse size
estimate: ``2^(2^level) ≈ n``, which protocol ``CountExact`` exploits to
choose how many tokens/random bits to use (see
:mod:`repro.counting.params`).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from ..engine.protocol import Protocol

__all__ = [
    "JuntaState",
    "junta_update",
    "junta_update_pair",
    "JuntaProtocol",
    "junta_summary",
]


@dataclass(slots=True)
class JuntaState:
    """Per-agent state of the junta process.

    Attributes:
        level: Highest level reached or adopted so far.
        active: Whether the agent is still actively climbing levels.
        junta: Whether the agent still believes it belongs to the junta of
            its current level (cleared on meeting a higher level).
        reached_level: Highest level the agent attained *actively* (by
            climbing, not by adopting a partner's level).  Lemma 4's bound on
            the number of agents "on the maximal level" refers to this
            quantity; ``level`` itself is eventually adopted by everyone via
            the epidemic so that all agents agree on the maximal level.
    """

    level: int = 0
    active: bool = True
    junta: bool = True
    reached_level: int = 0

    def key(self) -> Hashable:
        return (self.level, self.active, self.junta, self.reached_level)


def junta_update(u: JuntaState, v: JuntaState) -> bool:
    """Apply the one-way junta transition to initiator ``u`` given responder ``v``.

    Returns ``True`` when the initiator observed a strictly higher level, the
    event on which the composed protocols re-initialise their downstream
    state (Algorithm 2 / Algorithm 3, line 1).
    """
    saw_higher = v.level > u.level
    if u.active:
        if v.active and v.level == u.level:
            u.level += 1
            u.reached_level = u.level
        else:
            u.active = False
    if saw_higher:
        u.junta = False
        if not u.active:
            u.level = v.level
    return saw_higher


def junta_update_pair(u: JuntaState, v: JuntaState) -> Tuple[bool, bool]:
    """Apply the symmetric junta transition to both interaction partners.

    This is the reading used by the composed protocols (Algorithms 2 and 3
    update the junta variables of both agents): two active agents on the same
    level *both* climb to the next level, every other active participant
    becomes inactive, both agents clear their junta bit when the partner's
    (pre-interaction) level is higher, and inactive agents adopt a higher
    partner level.

    Returns a pair ``(u_saw_higher, v_saw_higher)`` indicating which agents
    observed a strictly higher pre-interaction level — the event that makes
    the composed protocols re-initialise that agent's downstream state.
    """
    u_level, v_level = u.level, v.level
    u_saw_higher = v_level > u_level
    v_saw_higher = u_level > v_level

    if u.active and v.active and u_level == v_level:
        u.level += 1
        v.level += 1
        u.reached_level = u.level
        v.reached_level = v.level
    else:
        if u.active:
            u.active = False
        if v.active:
            v.active = False

    if u_saw_higher:
        u.junta = False
        if not u.active:
            u.level = max(u.level, v_level)
    if v_saw_higher:
        v.junta = False
        if not v.active:
            v.level = max(v.level, u_level)
    return u_saw_higher, v_saw_higher


class JuntaProtocol(Protocol[JuntaState]):
    """Standalone junta process for isolated measurement (experiment E5)."""

    name = "junta-process"
    deterministic_transitions = True

    def initial_state(self, agent_id: int) -> JuntaState:
        return JuntaState()

    def transition(
        self, initiator: JuntaState, responder: JuntaState, rng: random.Random
    ) -> None:
        junta_update_pair(initiator, responder)

    def output(self, state: JuntaState) -> Tuple[int, bool, bool]:
        return (state.level, state.active, state.junta)

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        level_a, active_a, _junta_a, _reached_a = key_a  # type: ignore[misc]
        level_b, active_b, _junta_b, _reached_b = key_b  # type: ignore[misc]
        # A symmetric junta interaction is a no-op exactly when both agents
        # are inactive and on the same level: any active participant changes
        # (climbs or deactivates), and a level difference clears a junta bit
        # and/or makes the lower agent adopt the higher level.
        return bool(active_a or active_b or level_a != level_b)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        # Pure-key transcription of :func:`junta_update_pair`.
        level_a0, active_a, junta_a, reached_a = key_a  # type: ignore[misc]
        level_b0, active_b, junta_b, reached_b = key_b  # type: ignore[misc]
        level_a, level_b = level_a0, level_b0
        a_saw_higher = level_b0 > level_a0
        b_saw_higher = level_a0 > level_b0
        if active_a and active_b and level_a0 == level_b0:
            level_a += 1
            level_b += 1
            reached_a = level_a
            reached_b = level_b
        else:
            active_a = False
            active_b = False
        if a_saw_higher:
            junta_a = False
            if not active_a:
                level_a = max(level_a, level_b0)
        if b_saw_higher:
            junta_b = False
            if not active_b:
                level_b = max(level_b, level_a0)
        return (
            (level_a, active_a, junta_a, reached_a),
            (level_b, active_b, junta_b, reached_b),
        )

    def output_key(self, key: Hashable) -> Tuple[int, bool, bool]:
        level, active, junta, _reached = key  # type: ignore[misc]
        return (level, active, junta)

    def initial_key_counts(self, n: int) -> Counter:
        return Counter({(0, True, True, 0): n})


def junta_summary(states: Sequence[JuntaState]) -> dict:
    """Summarise a final junta-process configuration.

    Returns a dictionary with the maximal level, the number of agents on the
    maximal level, the junta size (maximal level *and* junta bit set), and
    the number of still-active agents — the quantities bounded by Lemma 4.
    """
    if not states:
        return {
            "max_level": 0,
            "agents_on_max_level": 0,
            "agents_reached_max_level": 0,
            "junta_size": 0,
            "active_agents": 0,
        }
    max_level = max(state.level for state in states)
    on_max = sum(1 for state in states if state.level == max_level)
    reached_max = sum(1 for state in states if state.reached_level == max_level)
    junta_size = sum(1 for state in states if state.level == max_level and state.junta)
    active = sum(1 for state in states if state.active)
    return {
        "max_level": max_level,
        "agents_on_max_level": on_max,
        "agents_reached_max_level": reached_max,
        "junta_size": junta_size,
        "active_agents": active,
    }

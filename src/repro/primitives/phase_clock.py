"""Junta-driven phase clocks — Section 2, Lemma 5 (following [6] and [18]).

A phase clock lets all agents divide time into *phases* of ``Theta(n log n)``
interactions without knowing ``n``.  Every agent keeps a clock value in
``{0, ..., m-1}`` ("hours on a clock face"); on an interaction the agent
adopts the larger value w.r.t. the circular order modulo ``m``, and members
of the junta additionally advance by one step when they meet an agent showing
the same hour.  An agent enters a new phase whenever its clock value crosses
the ``m-1 -> 0`` boundary; we then say its clock *ticks*.

Two bookkeeping fields accompany the clock (Section 2): ``phase`` counts
completed ticks, and ``first_tick`` is set when the phase counter increments
and cleared once the agent *initiates* its first interaction of the new phase
— the composed protocols use it to run once-per-phase actions such as the
leader's load infusion.

Lemma 5: for any constant ``c`` there is an ``m = m(c) = O(1)`` such that
w.h.p. every phase lasts between ``c n log n`` and ``c n log n +
Theta(n log n)`` interactions.  Experiment E6 measures phase lengths as a
function of ``m`` and ``n``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Tuple

from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol
from .junta import JuntaState, junta_update_pair

__all__ = [
    "PhaseClockState",
    "phase_clock_update",
    "JuntaPhaseClockState",
    "JuntaPhaseClockProtocol",
    "DEFAULT_CLOCK_MODULUS",
]

#: Default number of clock "hours".  Calibrated (experiment E6) so that one
#: full revolution (one phase) comfortably exceeds one maximum-broadcast plus
#: one load-balancing window at simulation scales up to a few hundred agents;
#: larger populations should use :func:`repro.counting.params.recommended_clock_modulus`.
DEFAULT_CLOCK_MODULUS = 16


@dataclass(slots=True)
class PhaseClockState:
    """Per-agent phase-clock bookkeeping.

    Attributes:
        clock: Current hour in ``{0, ..., m-1}``.
        phase: Number of completed ticks (phases entered) since (re)initialisation.
        first_tick: Pending "first interaction I initiate this phase" flag.
    """

    clock: int = 0
    phase: int = 0
    first_tick: bool = False

    def key(self) -> Hashable:
        return (self.clock, self.phase, self.first_tick)

    def reset(self) -> None:
        """Re-initialise the clock (used when an agent meets a higher junta level)."""
        self.clock = 0
        self.phase = 0
        self.first_tick = False


def phase_clock_update(
    state: PhaseClockState,
    partner_clock: int,
    is_junta: bool,
    modulus: int = DEFAULT_CLOCK_MODULUS,
) -> bool:
    """Advance ``state`` against an observed ``partner_clock``.

    The agent adopts the larger hour w.r.t. the circular order modulo
    ``modulus`` (i.e. when the partner is ahead by at most ``modulus // 2``);
    a junta member additionally advances one step when the hours are equal.
    Returns ``True`` when the update made the clock tick (cross the
    ``m-1 -> 0`` boundary), in which case the phase counter is incremented
    and ``first_tick`` is set.
    """
    if modulus < 4:
        raise ConfigurationError("phase-clock modulus must be at least 4")
    ahead_by = (partner_clock - state.clock) % modulus
    ticked = False
    if 0 < ahead_by <= modulus // 2:
        ticked = partner_clock < state.clock
        state.clock = partner_clock
    elif ahead_by == 0 and is_junta:
        state.clock = (state.clock + 1) % modulus
        ticked = state.clock == 0
    if ticked:
        state.phase += 1
        state.first_tick = True
    return ticked


@dataclass(slots=True)
class JuntaPhaseClockState:
    """Combined junta + phase-clock state used by the standalone clock protocol."""

    junta: JuntaState
    clock: PhaseClockState

    def key(self) -> Hashable:
        return (self.junta.key(), self.clock.key())


class JuntaPhaseClockProtocol(Protocol[JuntaPhaseClockState]):
    """Standalone phase clock driven by its own junta process.

    This is the construction the composed protocols rely on, isolated so that
    experiment E6 can measure tick spacing.  The output of an agent is its
    current phase counter.

    Args:
        modulus: Number of hours ``m`` on the clock face.
    """

    name = "junta-phase-clock"

    def __init__(self, modulus: int = DEFAULT_CLOCK_MODULUS) -> None:
        if modulus < 4:
            raise ConfigurationError("phase-clock modulus must be at least 4")
        self.modulus = modulus

    def initial_state(self, agent_id: int) -> JuntaPhaseClockState:
        return JuntaPhaseClockState(junta=JuntaState(), clock=PhaseClockState())

    def transition(
        self,
        initiator: JuntaPhaseClockState,
        responder: JuntaPhaseClockState,
        rng: random.Random,
    ) -> None:
        u_saw_higher, v_saw_higher = junta_update_pair(initiator.junta, responder.junta)
        if u_saw_higher:
            # Re-initialise the clock when a higher junta level is discovered so
            # that the final clock is the one driven by the maximal-level junta.
            initiator.clock.reset()
        if v_saw_higher:
            responder.clock.reset()
        phase_clock_update(
            initiator.clock,
            responder.clock.clock,
            is_junta=initiator.junta.junta,
            modulus=self.modulus,
        )
        # The standalone protocol has no once-per-phase consumer, so the
        # pending flag is cleared immediately after the initiated interaction.
        initiator.clock.first_tick = False

    def output(self, state: JuntaPhaseClockState) -> int:
        return state.clock.phase

    def state_key(self, state: JuntaPhaseClockState) -> Hashable:
        return state.key()

    def copy_state(self, state: JuntaPhaseClockState) -> JuntaPhaseClockState:
        return JuntaPhaseClockState(
            junta=JuntaState(
                level=state.junta.level,
                active=state.junta.active,
                junta=state.junta.junta,
                reached_level=state.junta.reached_level,
            ),
            clock=PhaseClockState(
                clock=state.clock.clock,
                phase=state.clock.phase,
                first_tick=state.clock.first_tick,
            ),
        )

"""Tunable constants for the auxiliary protocols.

The paper's constructions use constants tied to asymptotic proofs (e.g.
``2^(level - 8)`` random bits in fast leader election, ``2^13`` phases,
junta levels ``log log n ± 8``).  At laptop-simulation scales
(``n <= 2^13`` so ``log log n <= 4``) those literal constants degenerate
(``2^(level - 8) < 1``), so every such constant is exposed here as a
parameter with a default calibrated for simulation scales.  The *structure*
of the protocols — what is stored, which rule fires when, how quantities are
derived from the junta level — is unchanged; see DESIGN.md §2.

The helper :func:`level_scaled` implements the recurring pattern
``factor * 2^(level - offset)``: because the junta level concentrates around
``log log n`` (Lemma 4), ``2^level`` is a coarse stand-in for ``log n`` and
``2^(2^level)`` for ``n``, which is how the paper derives population-size
dependent quantities *uniformly* (from the protocol's own state, never from
``n`` itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.errors import ConfigurationError

__all__ = [
    "level_scaled",
    "LeaderElectionParameters",
    "FastLeaderElectionParameters",
]


def level_scaled(level: int, factor: float = 1.0, offset: int = 0, minimum: int = 1) -> int:
    """Return ``max(minimum, round(factor * 2^(level - offset)))``.

    ``level`` is a junta level, so ``2^level`` tracks ``log2 n`` up to
    constants (Lemma 4); this helper is the uniform way the protocols derive
    "about ``log n``"-sized quantities.  Negative exponents are clamped to
    zero so small populations degrade gracefully instead of collapsing to
    fractional values.
    """
    if minimum < 0:
        raise ConfigurationError("minimum must be non-negative")
    exponent = max(0, level - offset)
    return max(minimum, int(round(factor * (1 << exponent))))


@dataclass(frozen=True)
class LeaderElectionParameters:
    """Constants of the slow/stable leader-election protocol (Lemma 6, [18]).

    Attributes:
        phase_factor: Multiplier applied to ``2^level`` to obtain the number
            of coin-halving phases a contender completes before declaring
            ``leaderDone`` (the paper uses an outer phase clock for the same
            purpose; see DESIGN.md §2 for the substitution).
        level_offset: Offset subtracted from the junta level in the phase
            threshold.
        min_phases: Lower bound on the number of phases regardless of level.
        signal_tag_modulus: Modulus of the phase tag attached to the
            "some contender flipped heads" epidemic, protecting it against
            stale values from earlier phases.
    """

    phase_factor: float = 6.0
    level_offset: int = 0
    min_phases: int = 8
    signal_tag_modulus: int = 4

    def phase_threshold(self, level: int) -> int:
        """Number of completed phases after which a contender sets leaderDone."""
        return level_scaled(
            level, factor=self.phase_factor, offset=self.level_offset, minimum=self.min_phases
        )


@dataclass(frozen=True)
class FastLeaderElectionParameters:
    """Constants of `FastLeaderElection` (Lemma 7, [8], Appendix D).

    Attributes:
        rounds: Number of (draw phase, broadcast phase) pairs before
            ``leaderDone`` is declared.  The paper uses a large constant
            number of phases (``2^13``); a handful of rounds with enough bits
            per round achieves the same uniqueness probability at simulation
            scales.
        bits_factor: Multiplier applied to ``2^level`` for the number of
            random bits drawn per round (the paper's ``2^(level - 8)``).
        bits_level_offset: Offset in the exponent of the bit-count formula.
        bits_extra: Additional bits added on top of the level-derived count,
            so that even tiny populations draw enough bits to avoid ties.
        tag_modulus: Modulus of the phase tag attached to the broadcast
            maxima (stale-value protection).
    """

    rounds: int = 3
    bits_factor: float = 1.0
    bits_level_offset: int = 0
    bits_extra: int = 6
    tag_modulus: int = 8

    def bits(self, level: int) -> int:
        """Number of random bits a contender draws per round at a given level."""
        return (
            level_scaled(level, factor=self.bits_factor, offset=self.bits_level_offset, minimum=1)
            + self.bits_extra
        )

    @property
    def total_phases(self) -> int:
        """Total number of phases (draw + broadcast) before leaderDone."""
        return 2 * self.rounds

"""Load balancing — classical [10] and powers-of-two (Section 3.1, Lemma 8).

Two token-balancing processes appear in the paper:

* **Classical load balancing** ([10], used by `CountExact`): when agents with
  loads ``l_u`` and ``l_v`` interact they split the total evenly,
  ``(l_u, l_v) <- (floor((l_u + l_v)/2), ceil((l_u + l_v)/2))``.  After
  ``O(n log n)`` interactions the discrepancy (max - min load) is constant
  w.h.p.
* **Powers-of-two load balancing** (used by the Search Protocol): agents
  store only the *logarithm* ``k`` of their load (``-1`` encodes an empty
  agent); a balancing step is permitted only when exactly one of the two
  agents is empty, and then both end up with half of the loaded agent's
  tokens: ``(k, -1) -> (k-1, k-1)`` for ``k > 0``.  Lemma 8: if a single
  agent starts with ``2^kappa <= (3/4) n`` tokens and everyone else is empty,
  then w.h.p. after ``16 n log n`` interactions the maximum logarithmic load
  is ``0`` (i.e. every loaded agent holds exactly one token).

Both processes conserve the total number of tokens — the key invariant the
property-based tests check.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from ..engine.errors import ConfigurationError
from ..engine.protocol import Protocol

__all__ = [
    "split_evenly",
    "balance_powers_of_two",
    "EMPTY",
    "load_from_log",
    "total_load_from_logs",
    "discrepancy",
    "ClassicalLoadState",
    "ClassicalLoadBalancing",
    "PowersOfTwoState",
    "PowersOfTwoLoadBalancing",
]

#: Logarithmic-load value encoding an empty agent (no tokens).
EMPTY = -1


def split_evenly(load_u: int, load_v: int) -> Tuple[int, int]:
    """Classical balancing step: split ``load_u + load_v`` as evenly as possible.

    Returns ``(floor(total/2), ceil(total/2))`` following [10]; the initiator
    receives the floor.
    """
    total = load_u + load_v
    half = total // 2
    return half, total - half


def balance_powers_of_two(k_u: int, k_v: int) -> Tuple[int, int]:
    """Powers-of-two balancing step on logarithmic loads (Equation (1)).

    A balancing action is permitted only when exactly one agent is empty
    (``EMPTY``) and the other holds more than one token (``k > 0``); both
    agents then end up with ``2^(k-1)`` tokens.  In every other case the
    loads are unchanged.
    """
    if k_u > 0 and k_v == EMPTY:
        return k_u - 1, k_u - 1
    if k_u == EMPTY and k_v > 0:
        return k_v - 1, k_v - 1
    return k_u, k_v


def load_from_log(k: int) -> int:
    """Return the token count encoded by logarithmic load ``k`` (``EMPTY`` -> 0)."""
    return 0 if k == EMPTY else 1 << k


def total_load_from_logs(ks: Sequence[int]) -> int:
    """Total number of tokens in a logarithmic load vector."""
    return sum(load_from_log(k) for k in ks)


def discrepancy(loads: Sequence[int]) -> int:
    """Difference between the maximum and minimum load in a load vector."""
    if not loads:
        return 0
    return max(loads) - min(loads)


# --------------------------------------------------------------------------
# Classical load balancing (tokens stored explicitly)
# --------------------------------------------------------------------------


@dataclass(slots=True)
class ClassicalLoadState:
    """State of an agent in the classical load-balancing protocol."""

    load: int = 0

    def key(self) -> Hashable:
        return self.load


class ClassicalLoadBalancing(Protocol[ClassicalLoadState]):
    """Standalone classical load balancing of [10].

    The input configuration is an arbitrary distribution of ``m``
    indistinguishable tokens over the agents, supplied as ``initial_loads``
    (agents beyond the list start empty).  The output of an agent is its
    current load.  [10] shows the discrepancy drops to ``O(1)`` within
    ``O(n log n)`` interactions w.h.p.
    """

    name = "classical-load-balancing"
    deterministic_transitions = True

    def __init__(self, initial_loads: Sequence[int]) -> None:
        if any(load < 0 for load in initial_loads):
            raise ConfigurationError("loads must be non-negative")
        self.initial_loads: List[int] = list(initial_loads)

    def initial_state(self, agent_id: int) -> ClassicalLoadState:
        if agent_id < len(self.initial_loads):
            return ClassicalLoadState(load=self.initial_loads[agent_id])
        return ClassicalLoadState(load=0)

    def transition(
        self, initiator: ClassicalLoadState, responder: ClassicalLoadState, rng: random.Random
    ) -> None:
        initiator.load, responder.load = split_evenly(initiator.load, responder.load)

    def output(self, state: ClassicalLoadState) -> int:
        return state.load

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        # An even split leaves the *multiset* {floor, ceil} unchanged when the
        # loads differ by at most one, even though the agents may swap values.
        return abs(int(key_a) - int(key_b)) > 1  # type: ignore[arg-type]

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return split_evenly(key_a, key_b)  # type: ignore[arg-type]

    def output_key(self, key: Hashable) -> int:
        return key  # type: ignore[return-value]

    def initial_key_counts(self, n: int) -> Counter:
        counts = Counter(self.initial_loads[:n])
        if n > len(self.initial_loads):
            counts[0] += n - len(self.initial_loads)
        return counts

    @property
    def total_tokens(self) -> int:
        """Total number of tokens in the input configuration."""
        return sum(self.initial_loads)


# --------------------------------------------------------------------------
# Powers-of-two load balancing (logarithmic loads)
# --------------------------------------------------------------------------


@dataclass(slots=True)
class PowersOfTwoState:
    """State of an agent in the powers-of-two load-balancing protocol."""

    k: int = EMPTY

    def key(self) -> Hashable:
        return self.k


class PowersOfTwoLoadBalancing(Protocol[PowersOfTwoState]):
    """Standalone powers-of-two balancing as analysed in Lemma 8.

    One designated agent starts with ``2^kappa`` tokens (logarithmic load
    ``kappa``); every other agent starts empty.  The output of an agent is
    its logarithmic load.  Lemma 8: when ``2^kappa <= (3/4) n`` the maximum
    logarithmic load reaches ``0`` within ``16 n log n`` interactions w.h.p.

    Args:
        kappa: Logarithm of the initial token pile (``>= 0``).
        loaded_agents: Number of agents that start with ``2^kappa`` tokens
            each (the lemma uses 1; the generalisation is exercised in tests).
    """

    name = "powers-of-two-load-balancing"
    deterministic_transitions = True

    def __init__(self, kappa: int, loaded_agents: int = 1) -> None:
        if kappa < 0:
            raise ConfigurationError("kappa must be non-negative")
        if loaded_agents < 1:
            raise ConfigurationError("at least one agent must carry load")
        self.kappa = kappa
        self.loaded_agents = loaded_agents

    def initial_state(self, agent_id: int) -> PowersOfTwoState:
        if agent_id < self.loaded_agents:
            return PowersOfTwoState(k=self.kappa)
        return PowersOfTwoState(k=EMPTY)

    def transition(
        self, initiator: PowersOfTwoState, responder: PowersOfTwoState, rng: random.Random
    ) -> None:
        initiator.k, responder.k = balance_powers_of_two(initiator.k, responder.k)

    def output(self, state: PowersOfTwoState) -> int:
        return state.k

    def can_interaction_change(self, key_a: Hashable, key_b: Hashable) -> bool:
        k_a, k_b = int(key_a), int(key_b)  # type: ignore[arg-type]
        return (k_a > 0 and k_b == EMPTY) or (k_a == EMPTY and k_b > 0)

    def delta_key(
        self, key_a: Hashable, key_b: Hashable, rng: random.Random
    ) -> Tuple[Hashable, Hashable]:
        return balance_powers_of_two(key_a, key_b)  # type: ignore[arg-type]

    def output_key(self, key: Hashable) -> int:
        return key  # type: ignore[return-value]

    def initial_key_counts(self, n: int) -> Counter:
        loaded = min(self.loaded_agents, n)
        counts = Counter({self.kappa: loaded})
        if n > loaded:
            counts[EMPTY] += n - loaded
        return counts

    @property
    def total_tokens(self) -> int:
        """Total number of tokens in the input configuration."""
        return self.loaded_agents * (1 << self.kappa)

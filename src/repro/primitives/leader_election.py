"""Stable-style leader election — Section 2, Lemma 6 (following [18]).

Protocol ``leader_elect`` of Gasieniec and Stachowiak runs on top of the
junta process and the junta-driven phase clock.  Every agent starts as a
leader contender; in each phase every remaining contender flips a coin, the
fact "some contender flipped heads" is spread by a one-way epidemic, and at
the start of the next phase every contender that flipped tails while some
other contender flipped heads withdraws.  The set of contenders therefore
halves (in expectation) each phase while never becoming empty, so after
``Theta(log n)`` phases exactly one contender remains w.h.p.

``leaderDone`` marks the end of the election.  The paper derives the
``Theta(log n)``-phase horizon from an *outer* phase clock; this
implementation derives it uniformly from the junta level instead
(``phase_factor * 2^level ~ Theta(log n)`` phases, see
:class:`~repro.primitives.params.LeaderElectionParameters` and DESIGN.md §2),
which preserves uniformity and the ``O(n log^2 n)`` interaction bound.

The module provides the component update used inside protocol `Approximate`
(Algorithm 2, Stage 1) and a standalone protocol for experiment E7.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Tuple

from ..engine.protocol import Protocol
from .junta import JuntaState, junta_update_pair
from .params import LeaderElectionParameters
from .phase_clock import DEFAULT_CLOCK_MODULUS, PhaseClockState, phase_clock_update
from .synthetic_coin import flip

__all__ = [
    "LeaderElectionState",
    "leader_election_update",
    "LeaderElectionProtocol",
    "LeaderElectionAgent",
]


@dataclass(slots=True)
class LeaderElectionState:
    """Per-agent leader-election bookkeeping.

    Attributes:
        leader: Whether the agent is still a leader contender.
        leader_done: Whether the election horizon has been reached (spread to
            all agents by one-way epidemics).
        coin: The contender's coin flip for the current phase.
        signal: Relay bit of the "some contender flipped heads" epidemic.
        signal_tag: Phase tag (mod ``signal_tag_modulus``) the relay bit
            belongs to, protecting against stale signals from past phases.
        phases_completed: Number of election phases this contender finished
            (contenders only; reset when the agent withdraws).
    """

    leader: bool = True
    leader_done: bool = False
    coin: int = 0
    signal: bool = False
    signal_tag: int = 0
    phases_completed: int = 0

    def key(self) -> Hashable:
        return (
            self.leader,
            self.leader_done,
            self.coin,
            self.signal,
            self.signal_tag,
            self.phases_completed,
        )

    def reset(self) -> None:
        """Re-initialise (used when the agent meets a higher junta level)."""
        self.leader = True
        self.leader_done = False
        self.coin = 0
        self.signal = False
        self.signal_tag = 0
        self.phases_completed = 0


def leader_election_update(
    u: LeaderElectionState,
    v: LeaderElectionState,
    u_phase: int,
    u_first_tick: bool,
    u_level: int,
    rng: random.Random,
    params: LeaderElectionParameters = LeaderElectionParameters(),
) -> None:
    """One-way leader-election update for initiator ``u`` against responder ``v``.

    Args:
        u: Initiator's leader-election state (mutated in place).
        v: Responder's leader-election state (read only).
        u_phase: The initiator's current phase-clock phase counter.
        u_first_tick: Whether this is the first interaction the initiator
            initiates in its current phase.
        u_level: The initiator's junta level (drives the phase horizon).
        rng: Synthetic-coin randomness.
        params: Tunable constants.
    """
    tag_mod = params.signal_tag_modulus
    current_tag = u_phase % tag_mod

    # Epidemic relays: leaderDone always spreads; the heads-signal spreads
    # only when it belongs to the phase the initiator is currently in.
    if v.leader_done:
        u.leader_done = True
    if v.signal and v.signal_tag == current_tag and u.signal_tag == current_tag:
        u.signal = True

    if not u_first_tick or u.leader_done:
        return

    previous_tag = (u_phase - 1) % tag_mod
    if u.leader:
        # Resolve the previous phase: withdraw if I flipped tails while some
        # contender flipped heads (the signal carries the previous phase's tag).
        if u.coin == 0 and u.signal and u.signal_tag == previous_tag and u.phases_completed > 0:
            u.leader = False
            u.phases_completed = 0
    if u.leader:
        u.phases_completed += 1
        u.coin = flip(rng)
        u.signal = bool(u.coin)
        u.signal_tag = current_tag
        if u.phases_completed >= params.phase_threshold(u_level):
            u.leader_done = True
    else:
        # Followers reset their relay bit for the new phase.
        u.signal = False
        u.signal_tag = current_tag


@dataclass(slots=True)
class LeaderElectionAgent:
    """Full agent state of the standalone leader-election protocol."""

    junta: JuntaState
    clock: PhaseClockState
    election: LeaderElectionState

    def key(self) -> Hashable:
        return (self.junta.key(), self.clock.key(), self.election.key())


class LeaderElectionProtocol(Protocol[LeaderElectionAgent]):
    """Standalone leader election (junta + phase clock + coin halving).

    The output of an agent is ``True`` when it currently considers itself a
    leader contender.  Experiment E7 checks that exactly one agent outputs
    ``True`` once every agent has ``leaderDone`` set, and measures the number
    of interactions that takes.

    Args:
        params: Leader-election constants.
        clock_modulus: Phase-clock modulus ``m``.
    """

    name = "leader-election"

    def __init__(
        self,
        params: LeaderElectionParameters = LeaderElectionParameters(),
        clock_modulus: int = DEFAULT_CLOCK_MODULUS,
    ) -> None:
        self.params = params
        self.clock_modulus = clock_modulus

    def initial_state(self, agent_id: int) -> LeaderElectionAgent:
        return LeaderElectionAgent(
            junta=JuntaState(), clock=PhaseClockState(), election=LeaderElectionState()
        )

    def transition(
        self,
        initiator: LeaderElectionAgent,
        responder: LeaderElectionAgent,
        rng: random.Random,
    ) -> None:
        u_saw_higher, v_saw_higher = junta_update_pair(initiator.junta, responder.junta)
        if u_saw_higher:
            initiator.clock.reset()
            initiator.election.reset()
        if v_saw_higher:
            responder.clock.reset()
            responder.election.reset()
        phase_clock_update(
            initiator.clock,
            responder.clock.clock,
            is_junta=initiator.junta.junta,
            modulus=self.clock_modulus,
        )
        leader_election_update(
            initiator.election,
            responder.election,
            u_phase=initiator.clock.phase,
            u_first_tick=initiator.clock.first_tick,
            u_level=initiator.junta.level,
            rng=rng,
            params=self.params,
        )
        initiator.clock.first_tick = False

    def output(self, state: LeaderElectionAgent) -> bool:
        return state.election.leader

    def state_key(self, state: LeaderElectionAgent) -> Hashable:
        return state.key()

    def copy_state(self, state: LeaderElectionAgent) -> LeaderElectionAgent:
        return LeaderElectionAgent(
            junta=JuntaState(
                level=state.junta.level,
                active=state.junta.active,
                junta=state.junta.junta,
                reached_level=state.junta.reached_level,
            ),
            clock=PhaseClockState(
                clock=state.clock.clock,
                phase=state.clock.phase,
                first_tick=state.clock.first_tick,
            ),
            election=LeaderElectionState(
                leader=state.election.leader,
                leader_done=state.election.leader_done,
                coin=state.election.coin,
                signal=state.election.signal,
                signal_tag=state.election.signal_tag,
                phases_completed=state.election.phases_completed,
            ),
        )

    @staticmethod
    def leader_count(outputs) -> int:
        """Number of agents currently claiming leadership."""
        return sum(1 for value in outputs if value)

"""The HTTP JSON API over :class:`~repro.server.jobs.JobManager`.

Stdlib only: a :class:`~http.server.ThreadingHTTPServer` whose handler
threads merely translate requests into (thread-safe) manager calls — every
simulation runs on the manager's worker pool, never on a request thread,
so the API stays responsive while jobs grind.

Routes:

============================  =============================================
``GET /healthz``              liveness, version, fingerprint, job counts
``GET /metrics``              Prometheus text exposition (jobs, cells,
                              cache, pool; see ``JobManager.metrics``)
``GET /cache/stats``          result-cache hit/miss accounting
``POST /jobs``                submit ``{"kind": ..., "spec": {...}}`` → 201
``GET /jobs``                 every job's status, submission order
``GET /jobs/<id>``            one job's status + per-cell progress
``GET /jobs/<id>/artifact``   the finished document (409 until done)
``GET /jobs/<id>/events``     live server-sent-event stream of the job's
                              lifecycle (replayable; ``Last-Event-ID``
                              resumes; closes after the ``end`` event)
``DELETE /jobs/<id>``         cancel (immediate if queued)
``POST /work/lease``          ``{"worker": id}`` → one leased cell of the
                              running batch (payload + lease id + TTL), or
                              204 when nothing is leasable right now
``POST /work/<lease>/heartbeat``  extend the lease's TTL (404 once the
                              lease expired or the batch ended)
``POST /work/<lease>/result`` push the executed cell record back;
                              response says whether it was the first
                              (``accepted``) or a dedup'd duplicate
============================  =============================================

The three ``/work`` routes are the pull protocol ``repro-worker`` speaks —
see :mod:`repro.server.worker`.

Errors are JSON too: 400 carries the spec-validation message, 404 an
unknown job id or route, 409 an artifact requested before the job is done.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse

from ..engine.errors import ConfigurationError
from ..fingerprint import PACKAGE_VERSION, code_fingerprint
from .jobs import JobManager, JobNotReady, UnknownJob

__all__ = ["ReproServer", "ReproRequestHandler", "make_server"]

#: Upper bound on request bodies; a spec is a few KB, so anything near this
#: is garbage (and an unbounded read would let one request exhaust memory).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: How long one SSE wait blocks before emitting a keepalive comment; also
#: bounds how quickly a streaming thread notices the client went away.
SSE_KEEPALIVE_S = 10.0


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobManager`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        quiet: bool = True,
    ) -> None:
        self.manager = manager
        self.quiet = quiet
        super().__init__(address, ReproRequestHandler)


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Translate HTTP requests into :class:`JobManager` calls."""

    server_version = f"repro-serve/{PACKAGE_VERSION}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """The request body as JSON, or ``None`` after a 400 was sent."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "a JSON body with a valid Content-Length is required")
            return None
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._error(400, f"request body is not valid JSON: {error}")
            return None
        if not isinstance(body, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return body

    @property
    def _manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def _route(self) -> Tuple[str, ...]:
        path = urlparse(self.path).path
        return tuple(part for part in path.split("/") if part)

    # --------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        route = self._route()
        manager = self._manager
        try:
            if route == ("healthz",):
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "version": PACKAGE_VERSION,
                        "code_fingerprint": code_fingerprint(),
                        "workers": manager.workers,
                        "max_inflight": manager.max_inflight,
                        "jobs": manager.counts(),
                    },
                )
            elif route == ("metrics",):
                self._send_metrics()
            elif route == ("cache", "stats"):
                self._send_json(200, manager.cache.stats())
            elif route == ("jobs",):
                self._send_json(200, {"jobs": manager.jobs()})
            elif len(route) == 2 and route[0] == "jobs":
                self._send_json(200, manager.status(route[1]))
            elif len(route) == 3 and route[:1] == ("jobs",) and route[2] == "artifact":
                self._send_json(200, manager.artifact(route[1]))
            elif len(route) == 3 and route[:1] == ("jobs",) and route[2] == "events":
                self._stream_events(route[1])
            else:
                self._error(404, f"no such route: GET {self.path}")
        except UnknownJob as error:
            self._error(404, f"no such job: {error.args[0]}")
        except JobNotReady as error:
            self._error(409, str(error))

    def _send_metrics(self) -> None:
        body = self._manager.render_metrics().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_events(self, job_id: str) -> None:
        """``GET /jobs/<id>/events``: server-sent events until ``end``.

        The job's event log is append-only and replayable, so a fresh
        stream starts from the beginning (or from ``Last-Event-ID`` on
        reconnect) and then follows live.  Keepalive comments flow while
        the job is quiet; the response has no ``Content-Length``, so the
        connection closes with the stream (``Connection: close``).
        """
        manager = self._manager
        last = -1
        raw = self.headers.get("Last-Event-ID")
        if raw is not None:
            try:
                last = int(raw)
            except ValueError:
                last = -1
        manager.status(job_id)  # raises UnknownJob → 404 before headers
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            while True:
                events, ended = manager.events_after(
                    job_id, last, wait_s=SSE_KEEPALIVE_S
                )
                if not events:
                    if ended:
                        return
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                for record in events:
                    frame = (
                        f"id: {record['seq']}\n"
                        f"event: {record['event']}\n"
                        f"data: {json.dumps(record['data'], sort_keys=True)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                    last = record["seq"]
                self.wfile.flush()
                if events[-1]["event"] == "end":
                    return
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        route = self._route()
        if route == ("jobs",):
            self._submit_job()
        elif route == ("work", "lease"):
            self._lease_work()
        elif len(route) == 3 and route[0] == "work" and route[2] == "heartbeat":
            self._heartbeat_work(route[1])
        elif len(route) == 3 and route[0] == "work" and route[2] == "result":
            self._push_result(route[1])
        else:
            self._error(404, f"no such route: POST {self.path}")

    def _submit_job(self) -> None:
        body = self._read_json_body()
        if body is None:
            return
        kind = body.get("kind")
        spec = body.get("spec")
        if not isinstance(kind, str) or spec is None:
            self._error(400, 'a job is {"kind": "sweep|scenario|search", "spec": {...}}')
            return
        try:
            status = self._manager.submit(kind, spec)
        except ConfigurationError as error:
            self._error(400, str(error))
            return
        self._send_json(201, status)

    # ------------------------------------------- worker pull protocol routes
    def _lease_work(self) -> None:
        body = self._read_json_body()
        if body is None:
            return
        lease = self._manager.lease_work(body.get("worker") or "anonymous")
        if lease is None:
            # Nothing leasable right now; the worker polls again shortly.
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self._send_json(200, lease)

    def _heartbeat_work(self, lease_id: str) -> None:
        body = self._read_json_body()
        if body is None:
            return
        extended = self._manager.heartbeat_work(lease_id)
        if extended is None:
            self._error(404, f"no active lease {lease_id!r} (expired or batch over)")
            return
        self._send_json(200, extended)

    def _push_result(self, lease_id: str) -> None:
        body = self._read_json_body()
        if body is None:
            return
        self._send_json(200, self._manager.complete_work(lease_id, body))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        route = self._route()
        if len(route) != 2 or route[0] != "jobs":
            self._error(404, f"no such route: DELETE {self.path}")
            return
        try:
            self._send_json(200, self._manager.cancel(route[1]))
        except UnknownJob as error:
            self._error(404, f"no such job: {error.args[0]}")


def make_server(
    host: str,
    port: int,
    manager: JobManager,
    quiet: bool = True,
) -> ReproServer:
    """Bind a :class:`ReproServer`; ``port=0`` picks an ephemeral port.

    The caller owns both the server (``serve_forever``/``shutdown``) and the
    manager (``close``); the bound port is ``server.server_address[1]``.
    """
    return ReproServer((host, port), manager, quiet=quiet)

"""Content-addressed result cache for per-cell simulation records.

A cell's worker payload is already a complete, canonical description of the
computation: protocol name, population size, parameters, derived seeds,
backend/sampler/accel knobs, budget, and check cadence — all plain JSON.
Hashing that canonical JSON together with the package's code fingerprint
yields a content address: two jobs that would run the identical simulation
produce the identical key, whatever their job names or submission order,
while any code change or reseeding changes the key.

The cache stores finished cell *records* (the dicts embedded in artifact
documents).  Hits are merged into a job's document by the same shared
helper ``--resume`` uses (:func:`repro.resume.merge_cells`), so a served
artifact is indistinguishable from a freshly computed one —
:func:`stable_document` makes that claim checkable by stripping the only
legitimately varying fields (timestamps, wall times, worker counts).
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

from ..fingerprint import canonical_json, code_fingerprint, sha256_hex

__all__ = ["VOLATILE_KEYS", "ResultCache", "cache_key", "stable_document"]

#: Document/record keys that legitimately differ between two executions of
#: the same computation; everything else must match bit for bit.
VOLATILE_KEYS = frozenset({"generated_unix", "workers", "wall_time_s"})


def cache_key(payload: Dict[str, Any], fingerprint: Optional[str] = None) -> str:
    """The content address of one cell computation.

    ``payload`` is the picklable worker payload (canonical spec-cell JSON,
    including the derived seeds); ``fingerprint`` defaults to the current
    :func:`~repro.fingerprint.code_fingerprint`.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    return sha256_hex(canonical_json({"cell": payload, "code": fingerprint}))


def stable_document(value: Any) -> Any:
    """A deep copy of ``value`` with every volatile field removed.

    Two artifact documents for the same spec and seeds — one computed by
    workers, one assembled from cache hits, one written by the CLI — must
    be equal under this projection; the CI smoke asserts exactly that.
    """
    if isinstance(value, dict):
        return {
            key: stable_document(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [stable_document(item) for item in value]
    return value


class ResultCache:
    """Thread-safe LRU cache of finished cell records, content-addressed.

    Args:
        max_entries: Bound on stored records; the least recently used entry
            is evicted beyond it.  Cell records are small (run summaries,
            not trajectories), so the default comfortably covers thousands
            of grid cells.

    Records are deep-copied on both :meth:`put` and :meth:`get` so cached
    data can never be mutated through a served document (or vice versa).
    Only *successful* records are cached — a failed cell must re-run.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return a copy of the record stored under ``key``, or ``None``."""
        with self._lock:
            record = self._entries.get(key)
            if record is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(record)

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Store a *successful* cell record; failed records are refused."""
        if not record or record.get("error"):
            return False
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._entries[key] = copy.deepcopy(record)
            self._entries.move_to_end(key)
            self._puts += 1
            return True

    def stats(self) -> Dict[str, Any]:
        """Hit/miss accounting for the ``/cache/stats`` endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / total, 4) if total else None,
                "code_fingerprint": code_fingerprint(),
            }

    def clear(self) -> None:
        """Drop every entry (accounting is preserved)."""
        with self._lock:
            self._entries.clear()

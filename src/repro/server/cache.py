"""Content-addressed result cache for per-cell simulation records.

A cell's worker payload is already a complete, canonical description of the
computation: protocol name, population size, parameters, derived seeds,
backend/sampler/accel knobs, budget, and check cadence — all plain JSON.
Hashing that canonical JSON together with the package's code fingerprint
yields a content address: two jobs that would run the identical simulation
produce the identical key, whatever their job names or submission order,
while any code change or reseeding changes the key.

The cache stores finished cell *records* (the dicts embedded in artifact
documents).  Hits are merged into a job's document by the same shared
helper ``--resume`` uses (:func:`repro.resume.merge_cells`), so a served
artifact is indistinguishable from a freshly computed one —
:func:`stable_document` makes that claim checkable by stripping the only
legitimately varying fields (timestamps, wall times, worker counts).

Persistence
-----------
With a ``cache_dir`` the cache survives the process: every stored record is
also written to ``<cache_dir>/<key>.json`` as a small self-describing
envelope (format version, key, code fingerprint, the record).  Writes are
atomic — a temporary file in the same directory followed by
``os.replace`` — so concurrent writers and crashes can never leave a
half-written entry behind; at worst a stale temp file lingers, which is
ignored.  Files are loaded *lazily*: startup only scans names and sizes,
and an entry's content is read the first time its key is requested, so a
restarted server serves identical resubmissions from disk without paying
for entries it never needs.  An entry that fails to load — truncated,
corrupt JSON, the wrong key, a foreign code fingerprint, or a failed
record — is treated as a miss and *quarantined* (moved into
``<cache_dir>/quarantine/``) so it is inspected at most once.  An optional
``max_disk_bytes`` budget evicts least-recently-used files.
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..fingerprint import canonical_json, code_fingerprint, sha256_hex

__all__ = [
    "DISK_FORMAT",
    "VOLATILE_KEYS",
    "ResultCache",
    "cache_key",
    "stable_document",
]

#: Version stamp of the on-disk envelope; bump on incompatible layout
#: changes so old files are quarantined instead of misread.
DISK_FORMAT = 1

#: Subdirectory of ``cache_dir`` where unreadable entries are parked.
QUARANTINE_DIR = "quarantine"

#: Document/record keys that legitimately differ between two executions of
#: the same computation; everything else must match bit for bit.
VOLATILE_KEYS = frozenset({"generated_unix", "workers", "wall_time_s"})


def cache_key(payload: Dict[str, Any], fingerprint: Optional[str] = None) -> str:
    """The content address of one cell computation.

    ``payload`` is the picklable worker payload (canonical spec-cell JSON,
    including the derived seeds); ``fingerprint`` defaults to the current
    :func:`~repro.fingerprint.code_fingerprint`.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    return sha256_hex(canonical_json({"cell": payload, "code": fingerprint}))


def stable_document(value: Any) -> Any:
    """A deep copy of ``value`` with every volatile field removed.

    Two artifact documents for the same spec and seeds — one computed by
    workers, one assembled from cache hits, one written by the CLI — must
    be equal under this projection; the CI smoke asserts exactly that.
    """
    if isinstance(value, dict):
        return {
            key: stable_document(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [stable_document(item) for item in value]
    return value


_KEY_CHARS = frozenset("0123456789abcdef")


def _is_cache_key(name: str) -> bool:
    """Whether a filename stem looks like one of our sha256 hex keys."""
    return len(name) == 64 and set(name) <= _KEY_CHARS


class ResultCache:
    """Thread-safe LRU cache of finished cell records, content-addressed.

    Args:
        max_entries: Bound on *in-memory* records; the least recently used
            entry is evicted beyond it.  Cell records are small (run
            summaries, not trajectories), so the default comfortably covers
            thousands of grid cells.
        cache_dir: Optional directory for the persistent layer.  Every
            stored record is also written to ``<key>.json`` (atomically),
            and a key missing from memory is lazily loaded from disk — so
            the cache survives server restarts.
        max_disk_bytes: Optional byte budget for ``cache_dir``; the least
            recently used files are deleted when exceeded (the entry just
            written is never the first victim).

    Records are deep-copied on both :meth:`put` and :meth:`get` so cached
    data can never be mutated through a served document (or vice versa).
    Only *successful* records are cached — a failed cell must re-run.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise ValueError("max_disk_bytes must be at least 1")
        self.max_entries = max_entries
        self.cache_dir = os.path.abspath(cache_dir) if cache_dir else None
        self.max_disk_bytes = max_disk_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._disk_loads = 0
        self._disk_evictions = 0
        self._quarantined = 0
        self._write_seq = 0
        #: key -> file size in bytes, least recently used first.
        self._disk: "OrderedDict[str, int]" = OrderedDict()
        self._disk_bytes = 0
        if self.cache_dir is not None:
            os.makedirs(self.cache_dir, exist_ok=True)
            self._scan_disk()

    # ------------------------------------------------------------ disk layer
    def _path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.json")

    def _scan_disk(self) -> None:
        """Index existing ``<key>.json`` files by name and size only.

        Content is *not* read here — loading is lazy, per key, on first
        :meth:`get`.  Files are indexed oldest-modified first so the LRU
        byte budget keeps recent entries across restarts.
        """
        found: list[Tuple[float, str, int]] = []
        with os.scandir(self.cache_dir) as it:
            for entry in it:
                if not entry.is_file():
                    continue
                stem, ext = os.path.splitext(entry.name)
                if ext != ".json" or not _is_cache_key(stem):
                    continue
                stat = entry.stat()
                found.append((stat.st_mtime, stem, stat.st_size))
        for _mtime, key, size in sorted(found):
            self._disk[key] = size
            self._disk_bytes += size

    def _quarantine(self, key: str, reason: str) -> None:
        """Move an unreadable entry aside so it is inspected at most once."""
        quarantine = os.path.join(self.cache_dir, QUARANTINE_DIR)
        try:
            os.makedirs(quarantine, exist_ok=True)
            os.replace(self._path(key), os.path.join(quarantine, f"{key}.json"))
        except OSError:
            try:
                os.remove(self._path(key))
            except OSError:
                pass
        self._drop_disk_entry(key)
        self._quarantined += 1

    def _drop_disk_entry(self, key: str) -> None:
        size = self._disk.pop(key, None)
        if size is not None:
            self._disk_bytes -= size

    def _load_from_disk(self, key: str) -> Optional[Dict[str, Any]]:
        """Read and validate one entry; quarantine anything untrustworthy.

        Called with the lock held.  The envelope must round-trip JSON, be
        for this exact key, carry the current code fingerprint, and hold a
        successful record — anything else (truncation, corruption, a file
        copied in from another code version) is a miss.
        """
        if key not in self._disk and not os.path.exists(self._path(key)):
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self._drop_disk_entry(key)
            return None
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self._quarantine(key, "unreadable")
            return None
        record = envelope.get("record") if isinstance(envelope, dict) else None
        valid = (
            isinstance(envelope, dict)
            and envelope.get("format") == DISK_FORMAT
            and envelope.get("key") == key
            and envelope.get("code_fingerprint") == code_fingerprint()
            and isinstance(record, dict)
            and record
            and not record.get("error")
        )
        if not valid:
            self._quarantine(key, "invalid envelope")
            return None
        if key in self._disk:
            self._disk.move_to_end(key)
        else:
            # Written by another process sharing the directory after our
            # startup scan: index it so the byte budget stays honest.
            try:
                self._disk[key] = os.path.getsize(self._path(key))
                self._disk_bytes += self._disk[key]
            except OSError:
                pass
        self._disk_loads += 1
        return record

    def _write_to_disk(self, key: str, record: Dict[str, Any]) -> None:
        """Persist one entry via tmp file + atomic rename (lock held).

        The temp name embeds pid and a per-cache sequence number so
        concurrent writers — including a second server process sharing the
        directory — never collide; ``os.replace`` makes the publish atomic,
        so readers only ever see complete files.
        """
        self._write_seq += 1
        envelope = {
            "format": DISK_FORMAT,
            "key": key,
            "code_fingerprint": code_fingerprint(),
            "saved_unix": time.time(),
            "record": record,
        }
        data = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        tmp_path = os.path.join(
            self.cache_dir,
            f".{key}.{os.getpid()}.{self._write_seq}.tmp",
        )
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(tmp_path, self._path(key))
        except OSError:
            # Disk trouble must never fail the put: the in-memory layer
            # still has the record; persistence is best-effort.
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            return
        self._drop_disk_entry(key)
        self._disk[key] = len(data.encode("utf-8"))
        self._disk_bytes += self._disk[key]
        if self.max_disk_bytes is not None:
            while self._disk_bytes > self.max_disk_bytes and len(self._disk) > 1:
                victim, size = self._disk.popitem(last=False)
                self._disk_bytes -= size
                try:
                    os.remove(self._path(victim))
                except OSError:
                    pass
                self._disk_evictions += 1

    # ---------------------------------------------------------------- lookup
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Return a copy of the record stored under ``key``, or ``None``.

        Falls back to the persistent layer on a memory miss (when a
        ``cache_dir`` is configured); a successful disk load promotes the
        record into the in-memory LRU so repeated hits stay cheap.
        """
        with self._lock:
            record = self._entries.get(key)
            if record is None and self.cache_dir is not None:
                record = self._load_from_disk(key)
                if record is not None:
                    self._store_in_memory(key, record)
            if record is None:
                self._misses += 1
                return None
            if key in self._entries:
                self._entries.move_to_end(key)
            self._hits += 1
            return copy.deepcopy(record)

    def _store_in_memory(self, key: str, record: Dict[str, Any]) -> None:
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1
        self._entries[key] = copy.deepcopy(record)
        self._entries.move_to_end(key)

    def put(self, key: str, record: Dict[str, Any]) -> bool:
        """Store a *successful* cell record; failed records are refused."""
        if not record or record.get("error"):
            return False
        with self._lock:
            self._store_in_memory(key, record)
            if self.cache_dir is not None:
                self._write_to_disk(key, self._entries[key])
            self._puts += 1
            return True

    def stats(self) -> Dict[str, Any]:
        """Hit/miss accounting for the ``/cache/stats`` endpoint."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "evictions": self._evictions,
                "hit_rate": round(self._hits / total, 4) if total else None,
                "cache_dir": self.cache_dir,
                "disk_entries": len(self._disk),
                "disk_bytes": self._disk_bytes,
                "max_disk_bytes": self.max_disk_bytes,
                "disk_loads": self._disk_loads,
                "disk_evictions": self._disk_evictions,
                "quarantined": self._quarantined,
                "code_fingerprint": code_fingerprint(),
            }

    def clear(self) -> None:
        """Drop every in-memory entry (disk files and accounting persist)."""
        with self._lock:
            self._entries.clear()

"""``repro-worker``: a remote execution process for the job server.

The other half of the pull protocol (see :mod:`repro.server.app` and
:class:`~repro.server.work.WorkQueue`): a stdlib-only process that

1. polls ``POST /work/lease`` until the server hands it a cell of the
   currently running batch (the canonical worker payload — the same JSON
   the local pool pickles),
2. executes it with the same entry point the pool uses
   (:data:`~repro.server.jobs.EXECUTOR_KINDS`: ``execute_cell`` for sweep
   cells, ``execute_scenario_cell`` for scenario cells and search probes),
   heartbeating the lease from a side thread the whole time,
3. pushes the record back via ``POST /work/<lease>/result`` and loops.

Run any number of these against one server — ``repro-serve`` fans cells to
its local pool and every attached worker simultaneously.  Dying is safe by
design: a worker that is SIGKILLed mid-cell simply stops heartbeating, the
server expires the lease at its TTL and requeues the cell, and should the
zombie somehow finish anyway, its late push is deduplicated first-wins.
Results land in the server's content-addressed cache under the same key a
local execution would use, so the artifact is identical either way.

A cell that raises locally is pushed back as a failed record (same shape
the pool synthesises) rather than swallowed — the server should learn the
cell is poisoned now, not after ``max_lease_attempts`` TTLs.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import traceback
from typing import Any, Dict, Optional

from ..fingerprint import PACKAGE_VERSION, code_fingerprint
from .client import ReproClient, ServerError
from .jobs import EXECUTOR_KINDS

__all__ = ["Worker", "execute_lease", "main"]

#: Heartbeats per lease TTL; 3 gives two retries' worth of slack before
#: the server declares the worker dead.
HEARTBEATS_PER_TTL = 3.0

#: Floor on the heartbeat interval so a tiny test TTL cannot spin.
MIN_HEARTBEAT_S = 0.05


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique per process, stable for its lifetime."""
    return f"{socket.gethostname()}-{os.getpid()}"


def failure_record(payload: Dict[str, Any], error: str) -> Dict[str, Any]:
    """A failed cell record for an execution that raised on this worker.

    Mirrors the synthetic records :class:`~repro.experiments.runner.
    PoolExecutor` and :func:`~repro.server.work.give_up_record` produce, so
    artifact consumers see one failure vocabulary regardless of where the
    cell died.
    """
    return {
        "cell_id": payload.get("cell_id"),
        "n": payload.get("n"),
        "params": payload.get("params"),
        "seeds": payload.get("seeds"),
        "runs": [],
        "stats": None,
        "error": error,
        "wall_time_s": None,
    }


def execute_lease(lease: Dict[str, Any]) -> Dict[str, Any]:
    """Run one leased cell with the pool's own entry point.

    Never raises: an unknown ``kind`` or a crashing executor comes back as
    a failed record (the server wants *an answer* for the lease; silence
    just burns a TTL).
    """
    payload = lease.get("payload") or {}
    executor = EXECUTOR_KINDS.get(lease.get("kind"))
    if executor is None:
        return failure_record(
            payload,
            f"worker does not understand lease kind {lease.get('kind')!r} "
            f"(knows {tuple(EXECUTOR_KINDS)})",
        )
    try:
        return executor(payload)
    except Exception:  # noqa: BLE001 - the record carries the traceback
        return failure_record(payload, traceback.format_exc())


class _Heartbeat:
    """Keep one lease alive from a daemon thread while the cell runs."""

    def __init__(self, client: ReproClient, lease: Dict[str, Any]) -> None:
        self._client = client
        self._lease_id = lease["lease_id"]
        ttl = float(lease.get("ttl_s") or 60.0)
        self._interval = max(MIN_HEARTBEAT_S, ttl / HEARTBEATS_PER_TTL)
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{self._lease_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat(self._lease_id)
            except ServerError as error:
                if error.status == 404:
                    # Expired (or the batch ended).  Finish the cell and
                    # push anyway: an unresolved item still accepts the
                    # first result, even from an expired lease.
                    self.lost = True
                    return
                # Transient transport trouble: keep trying until stopped.

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class Worker:
    """The lease → execute → push loop of one ``repro-worker`` process.

    Args:
        client: Connection to the server.
        worker_id: Identity reported with every lease (shows up in the
            server's per-worker metrics and lifecycle events).
        poll_s: Sleep between empty lease polls.
        max_idle_s: Exit once this long passes without the server granting
            a lease *and* without it being reachable trouble-free
            (``None``: run until killed — the systemd/daemon mode).
        progress: Line-oriented log callback (``None``: silent).
    """

    def __init__(
        self,
        client: ReproClient,
        worker_id: Optional[str] = None,
        poll_s: float = 0.2,
        max_idle_s: Optional[float] = None,
        progress: Optional[Any] = None,
    ) -> None:
        self.client = client
        self.worker_id = worker_id or default_worker_id()
        self.poll_s = poll_s
        self.max_idle_s = max_idle_s
        self.progress = progress
        self.executed = 0
        self.accepted = 0

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(f"repro-worker {self.worker_id}: {line}")

    def run_one(self) -> bool:
        """Lease, execute, and push one cell; False when none was granted."""
        lease = self.client.lease(self.worker_id)
        if lease is None:
            return False
        # Announce *before* executing: the distributed smoke kills a worker
        # on this line to prove mid-cell death is survivable.
        self._report(
            f"leased {lease['lease_id']} cell {lease.get('cell_id')} "
            f"(kind {lease.get('kind')}, attempt {lease.get('attempt')})"
        )
        with _Heartbeat(self.client, lease) as heartbeat:
            record = execute_lease(lease)
        self.executed += 1
        outcome = self.client.push_result(lease["lease_id"], record)
        if outcome.get("accepted"):
            self.accepted += 1
        self._report(
            f"pushed {lease['lease_id']} -> {outcome.get('outcome')}"
            + (" (lease had expired)" if heartbeat.lost else "")
        )
        return True

    def run(self) -> int:
        """Loop until idle timeout (if any); returns cells executed."""
        fingerprint = code_fingerprint()
        self._report(
            f"polling {self.client.base_url} "
            f"(version {PACKAGE_VERSION}, fingerprint {fingerprint[:12]})"
        )
        idle_s = 0.0
        while True:
            try:
                worked = self.run_one()
            except ServerError as error:
                if error.status != 0:
                    # The server answered with an error we cannot fix by
                    # retrying the same request (bad route/version skew).
                    self._report(f"giving up: {error}")
                    raise
                worked = False  # unreachable: poll again, count as idle
            if worked:
                idle_s = 0.0
                continue
            idle_s += self.poll_s
            if self.max_idle_s is not None and idle_s >= self.max_idle_s:
                self._report(
                    f"idle for {idle_s:.1f}s, exiting "
                    f"({self.executed} cells executed, {self.accepted} accepted)"
                )
                return self.executed
            threading.Event().wait(self.poll_s)


def main(argv: Optional[Any] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description=(
            "Pull cells from a repro-serve instance over HTTP, execute them "
            "locally, and push the results back."
        ),
    )
    parser.add_argument(
        "--server",
        default="http://127.0.0.1:8765",
        help="base URL of the repro-serve instance (default %(default)s)",
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="identity reported to the server (default <hostname>-<pid>)",
    )
    parser.add_argument(
        "--poll-s",
        type=float,
        default=0.2,
        help="sleep between empty lease polls (default %(default)s)",
    )
    parser.add_argument(
        "--max-idle-s",
        type=float,
        default=None,
        help=(
            "exit after this long without work (default: run until killed)"
        ),
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=30.0,
        help="per-request HTTP timeout (default %(default)s)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-lease log lines"
    )
    args = parser.parse_args(argv)

    def progress(line: str) -> None:
        print(line, flush=True)

    worker = Worker(
        ReproClient(args.server, timeout_s=args.timeout_s),
        worker_id=args.worker_id,
        poll_s=args.poll_s,
        max_idle_s=args.max_idle_s,
        progress=None if args.quiet else progress,
    )
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    except ServerError as error:
        print(f"repro-worker: {error}", file=sys.stderr, flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""End-to-end smoke for the job server; the CI demo.

Two modes, both booting real ``repro-serve`` subprocesses on ephemeral
ports and asserting the service contract from outside.

**Single-host mode** (default) submits a builtin sweep **twice**:

* the first job computes every cell on the workers, and a live
  ``/jobs/<id>/events`` stream opened at submission delivers at least one
  ``cell`` event per grid cell, in strictly increasing sequence order,
  with the ``end`` event last,
* the second identical job is served *entirely* from the result cache
  (``executed_cells == 0``) — and with ``--cache-dir`` the server is
  **restarted between the two submissions**, so the 100%-hit assertion
  proves the on-disk cache (``disk_loads >= grid``), not process memory,
* ``/metrics`` parses as Prometheus text exposition, its cache counters
  equal ``/cache/stats`` exactly, and every counter is monotone within
  each server's lifetime,
* both served artifacts agree under
  :func:`~repro.server.cache.stable_document`,
* and, with ``--compare``, the served artifact equals the document the
  batch CLI wrote for the same spec — cache, server, and CLI are three
  routes to one byte-identical (modulo timestamps) result.

**Distributed mode** (``--distributed``) boots the server with
``--remote-only`` (it schedules but never executes), attaches two external
``repro-worker`` subprocesses, submits the sweep once, and SIGKILLs the
first worker the moment it announces a lease — mid-cell, by construction.
The job must still complete: the dead worker's lease expires at its TTL,
the cell is requeued, and the surviving worker finishes it.  The served
artifact must equal the single-host CLI artifact modulo volatile keys, and
``/metrics`` must show the expiry and requeue.

Usage (CI runs exactly these)::

    python -m repro.server.smoke --workers 2 \\
        --cache-dir reports/smoke-cache \\
        --compare reports/SWEEP_counting-smoke.json \\
        --output reports/SERVED_counting-smoke.json

    python -m repro.server.smoke --distributed --lease-ttl-s 10 \\
        --compare reports/SWEEP_counting-smoke.json \\
        --output reports/SERVED_distributed-smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from ..experiments.builtin import resolve_builtin
from ..obs.metrics import counter_value, parse_exposition
from .cache import stable_document
from .client import ReproClient

__all__ = ["main"]

_LISTENING = re.compile(r"repro-serve listening on http://([^:\s]+):(\d+)")


class SmokeFailure(Exception):
    """An assertion of the service contract did not hold."""


def _drain(stream, sink: List[str]) -> None:
    for line in stream:
        sink.append(line)


def _start_server(
    workers: int, extra_args: Optional[List[str]] = None
) -> "tuple[subprocess.Popen, str, List[str]]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--quiet",
            *(extra_args or []),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base_url = None
    log: List[str] = []
    assert process.stdout is not None
    for line in process.stdout:
        log.append(line)
        match = _LISTENING.search(line)
        if match:
            base_url = f"http://{match.group(1)}:{match.group(2)}"
            break
    if base_url is None:
        process.wait(timeout=10)
        raise SmokeFailure(
            "server never announced its address; output:\n" + "".join(log)
        )
    # Keep the pipe drained so the server can never block on a full buffer.
    threading.Thread(
        target=_drain, args=(process.stdout, log), daemon=True
    ).start()
    return process, base_url, log


def _stop_server(process: Optional[subprocess.Popen]) -> None:
    if process is None:
        return
    process.terminate()
    try:
        process.wait(timeout=15)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=15)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _watch_into(client: ReproClient, job_id: str, sink: List[dict], errors: List[str]) -> None:
    """Drain a live SSE stream into ``sink`` (runs on a watcher thread)."""
    try:
        for record in client.watch(job_id):
            sink.append(record)
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        errors.append(f"{type(error).__name__}: {error}")


def _check_metrics_contract(
    client: ReproClient,
    metrics_before: Dict[str, Dict[Any, float]],
    jobs_done: int,
) -> None:
    """Cache counters match ``/cache/stats``; counters monotone; jobs land."""
    stats = client.cache_stats()
    metrics_after = parse_exposition(client.metrics())
    for field in ("hits", "misses", "puts", "evictions"):
        exposed = counter_value(metrics_after, f"repro_cache_{field}_total")
        _expect(
            exposed == stats[field],
            f"/metrics repro_cache_{field}_total={exposed} disagrees with "
            f"/cache/stats {field}={stats[field]}",
        )
    for name, samples in metrics_before.items():
        if not name.endswith("_total"):
            continue
        for labels, value in samples.items():
            now = metrics_after.get(name, {}).get(labels, 0.0)
            _expect(
                now >= value,
                f"counter {name}{dict(labels)} went backwards: {value} -> {now}",
            )
    finished = counter_value(
        metrics_after, "repro_jobs_finished_total", kind="sweep", state="done"
    )
    _expect(
        finished == jobs_done,
        f'repro_jobs_finished_total{{kind="sweep",state="done"}} should be '
        f"{jobs_done}, got {finished}",
    )
    print(
        f"metrics: {len(metrics_after)} families parsed, cache counters match "
        "/cache/stats, counters monotone"
    )


def _compare_and_write(
    artifact: Dict[str, Any],
    compare: Optional[str],
    output: Optional[str],
) -> None:
    if compare:
        with open(compare, "r", encoding="utf-8") as handle:
            cli_document = json.load(handle)
        _expect(
            stable_document(cli_document) == stable_document(artifact),
            f"served artifact differs from CLI artifact {compare} "
            f"beyond volatile fields",
        )
        print(f"artifact equivalence: served == CLI ({compare})")
    if output:
        directory = os.path.dirname(output)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"served artifact written to {output}")


# --------------------------------------------------------------------------
# Single-host flow (optionally with a restart between the two submissions)
# --------------------------------------------------------------------------


def _single_host_flow(args: argparse.Namespace) -> int:
    spec = resolve_builtin(args.sweep)
    spec_dict = spec.to_dict()
    grid = len(spec.cells())
    server_args: List[str] = []
    if args.cache_dir:
        server_args += ["--cache-dir", args.cache_dir]
    process = None
    log: List[str] = []
    try:
        process, base_url, log = _start_server(args.workers, server_args)
        client = ReproClient(base_url)

        health = client.healthz()
        print(f"healthz: version {health['version']}, {health['workers']} worker(s)")

        metrics_before = parse_exposition(client.metrics())

        first = client.submit("sweep", spec_dict)
        # Attach a live event stream while the job runs; the watcher thread
        # drains SSE frames until the terminal ``end`` event arrives.
        events: List[dict] = []
        watch_errors: List[str] = []
        watcher = threading.Thread(
            target=_watch_into,
            args=(client, first["job_id"], events, watch_errors),
            daemon=True,
        )
        watcher.start()
        done_first = client.wait(first["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_first["state"] == "done",
            f"first job finished {done_first['state']}: {done_first['error']}",
        )
        progress = done_first["progress"]
        _expect(
            progress["executed_cells"] == grid and progress["cached_cells"] == 0,
            f"first job should compute all {grid} cells, got {progress}",
        )
        artifact_first = client.artifact(first["job_id"])
        print(f"job 1 ({first['job_id']}): computed {grid}/{grid} cells")

        watcher.join(timeout=30.0)
        _expect(not watcher.is_alive(), "event stream never delivered the end event")
        _expect(not watch_errors, f"event stream failed: {watch_errors}")
        cell_ids = {
            record["data"]["cell_id"]
            for record in events
            if record["event"] == "cell"
        }
        _expect(
            len(cell_ids) >= grid,
            f"expected a cell event for each of {grid} cells, saw {sorted(cell_ids)}",
        )
        seqs = [int(record["id"]) for record in events if record["id"] is not None]
        _expect(
            all(later > earlier for earlier, later in zip(seqs, seqs[1:])),
            f"event sequence numbers are not strictly increasing: {seqs}",
        )
        _expect(
            events and events[-1]["event"] == "end",
            f"the stream must close with an end event, got {[e['event'] for e in events]}",
        )
        print(
            f"events: {len(events)} frames, {len(cell_ids)} cell(s), "
            "ordered, end-terminated"
        )

        if args.cache_dir:
            # Restart the server: the second submission can only be served
            # from disk, so the 100%-hit assertion below proves persistence.
            _check_metrics_contract(client, metrics_before, jobs_done=1)
            _stop_server(process)
            process = None
            print(f"server restarted over cache dir {args.cache_dir}")
            process, base_url, log = _start_server(args.workers, server_args)
            client = ReproClient(base_url)
            metrics_before = parse_exposition(client.metrics())

        second = client.submit("sweep", spec_dict)
        done_second = client.wait(second["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_second["state"] == "done",
            f"second job finished {done_second['state']}: {done_second['error']}",
        )
        progress = done_second["progress"]
        _expect(
            progress["cached_cells"] == grid and progress["executed_cells"] == 0,
            f"second job should be fully cached, got {progress}",
        )
        artifact_second = client.artifact(second["job_id"])
        print(f"job 2 ({second['job_id']}): served {grid}/{grid} cells from cache")

        stats = client.cache_stats()
        _expect(
            stats["hits"] >= grid,
            f"expected at least {grid} cache hits, got {stats}",
        )
        if args.cache_dir:
            _expect(
                stats["disk_loads"] >= grid,
                f"expected at least {grid} disk loads after the restart, "
                f"got {stats}",
            )
            print(
                f"cache: {stats['hits']} hits, {stats['disk_loads']} loaded "
                f"from disk ({stats['disk_entries']} files, "
                f"{stats['disk_bytes']} bytes on disk)"
            )
        else:
            print(
                f"cache: {stats['hits']} hits / {stats['misses']} misses "
                f"({stats['entries']} entries)"
            )

        _check_metrics_contract(
            client, metrics_before, jobs_done=1 if args.cache_dir else 2
        )

        _expect(
            stable_document(artifact_first) == stable_document(artifact_second),
            "computed and cache-served artifacts differ beyond volatile fields",
        )
        print("artifact equivalence: computed == cache-served"
              + (" (across a restart)" if args.cache_dir else ""))

        _compare_and_write(artifact_second, args.compare, args.output)
        print("server smoke: PASS")
        return 0
    except SmokeFailure as failure:
        print(f"server smoke: FAIL - {failure}", file=sys.stderr)
        if log:
            print("server output:\n" + "".join(log), file=sys.stderr)
        return 1
    finally:
        _stop_server(process)


# --------------------------------------------------------------------------
# Distributed flow: two external workers, one SIGKILLed mid-cell
# --------------------------------------------------------------------------


class _WorkerProcess:
    """One external ``repro-worker`` subprocess with a watched log."""

    def __init__(self, base_url: str, worker_id: str) -> None:
        self.worker_id = worker_id
        self.log: List[str] = []
        self.leased = threading.Event()
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.server.worker",
                "--server",
                base_url,
                "--worker-id",
                worker_id,
                "--poll-s",
                "0.1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        threading.Thread(target=self._watch, daemon=True).start()

    def _watch(self) -> None:
        assert self.process.stdout is not None
        for line in self.process.stdout:
            self.log.append(line)
            # The worker prints its "leased" line *before* executing, so a
            # kill on this signal is guaranteed to land mid-cell.
            if " leased " in line:
                self.leased.set()

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait(timeout=15)


def _distributed_flow(args: argparse.Namespace) -> int:
    spec = resolve_builtin(args.sweep)
    spec_dict = spec.to_dict()
    grid = len(spec.cells())
    process = None
    log: List[str] = []
    workers: List[_WorkerProcess] = []
    try:
        process, base_url, log = _start_server(
            2, ["--remote-only", "--lease-ttl-s", str(args.lease_ttl_s)]
        )
        client = ReproClient(base_url)
        health = client.healthz()
        print(
            f"healthz: version {health['version']} (remote-only scheduler, "
            f"lease TTL {args.lease_ttl_s:g}s)"
        )

        workers = [
            _WorkerProcess(base_url, "smoke-victim"),
            _WorkerProcess(base_url, "smoke-survivor"),
        ]
        print("attached 2 repro-worker processes")

        job = client.submit("sweep", spec_dict)
        job_id = job["job_id"]

        # SIGKILL the victim the instant it announces its first lease —
        # before the cell finishes, so its lease must expire and requeue.
        deadline = time.monotonic() + args.timeout_s
        while not workers[0].leased.is_set():
            _expect(
                time.monotonic() < deadline,
                "the victim worker never leased a cell; server log:\n"
                + "".join(workers[0].log),
            )
            _expect(
                workers[0].process.poll() is None,
                "the victim worker exited before leasing:\n"
                + "".join(workers[0].log),
            )
            time.sleep(0.02)
        workers[0].process.kill()
        workers[0].process.wait(timeout=15)
        print("SIGKILLed smoke-victim mid-cell (after its first lease)")

        done = client.wait(job_id, timeout_s=args.timeout_s)
        _expect(
            done["state"] == "done",
            f"job finished {done['state']} despite the surviving worker: "
            f"{done['error']}",
        )
        progress = done["progress"]
        _expect(
            progress["failed_cells"] == [],
            f"no cell may fail over a worker death, got {progress}",
        )
        _expect(
            progress["executed_cells"] == grid,
            f"all {grid} cells should execute remotely, got {progress}",
        )
        print(
            f"job {job_id}: done, {progress['remote_cells']} cells via "
            "remote workers"
        )

        metrics = parse_exposition(client.metrics())
        expired = counter_value(metrics, "repro_leases_expired_total")
        requeued = counter_value(metrics, "repro_leases_requeued_total")
        _expect(
            expired >= 1 and requeued >= 1,
            f"the killed worker's lease must expire and requeue, got "
            f"expired={expired} requeued={requeued}",
        )
        survivor_cells = counter_value(
            metrics, "repro_worker_results_total", worker="smoke-survivor"
        )
        _expect(
            survivor_cells >= 1,
            f"the surviving worker should finish cells, got {survivor_cells}",
        )
        print(
            f"leases: {expired:g} expired, {requeued:g} requeued, "
            f"{survivor_cells:g} cells by the survivor"
        )

        artifact = client.artifact(job_id)
        _compare_and_write(artifact, args.compare, args.output)
        print("distributed smoke: PASS")
        return 0
    except SmokeFailure as failure:
        print(f"distributed smoke: FAIL - {failure}", file=sys.stderr)
        if log:
            print("server output:\n" + "".join(log), file=sys.stderr)
        for worker in workers:
            if worker.log:
                print(
                    f"{worker.worker_id} output:\n" + "".join(worker.log),
                    file=sys.stderr,
                )
        return 1
    finally:
        for worker in workers:
            try:
                worker.stop()
            except subprocess.TimeoutExpired:
                pass
        _stop_server(process)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="Boot repro-serve and prove the submit/cache/serve contract.",
    )
    parser.add_argument(
        "--sweep",
        default="counting-smoke",
        help="builtin sweep to submit (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker processes"
    )
    parser.add_argument(
        "--timeout-s", type=float, default=600.0, help="per-job wait budget"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persist the result cache here and restart the server between "
            "the two submissions, proving the on-disk cache"
        ),
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help=(
            "remote-only mode: attach two repro-worker processes, SIGKILL "
            "one mid-cell, and require the job to complete anyway"
        ),
    )
    parser.add_argument(
        "--lease-ttl-s",
        type=float,
        default=10.0,
        help="lease TTL for --distributed (default: %(default)s)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="CLI-written SWEEP_*.json to compare the served artifact against",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the served artifact document",
    )
    args = parser.parse_args(argv)
    if args.distributed:
        return _distributed_flow(args)
    return _single_host_flow(args)


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end smoke for the job server; the CI demo.

Boots ``repro-serve`` as a subprocess on an ephemeral port, submits a
builtin sweep **twice**, and asserts the service contract:

* the first job computes every cell on the workers, and a live
  ``/jobs/<id>/events`` stream opened at submission delivers at least one
  ``cell`` event per grid cell, in strictly increasing sequence order,
  with the ``end`` event last,
* the second identical job is served *entirely* from the result cache
  (``executed_cells == 0``, ``/cache/stats`` hits >= grid size),
* ``/metrics`` parses as Prometheus text exposition, its cache counters
  equal ``/cache/stats`` exactly, every counter is monotone across the
  run, and ``repro_jobs_finished_total{kind="sweep",state="done"}`` lands
  on 2,
* both served artifacts agree under :func:`~repro.server.cache.stable_document`,
* and, with ``--compare``, the served artifact equals the document the
  batch CLI wrote for the same spec — cache, server, and CLI are three
  routes to one byte-identical (modulo timestamps) result.

Usage (CI runs exactly this)::

    python -m repro.server.smoke --workers 2 \\
        --compare reports/SWEEP_counting-smoke.json \\
        --output reports/SERVED_counting-smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import threading
from typing import List, Optional

from ..experiments.builtin import resolve_builtin
from ..obs.metrics import counter_value, parse_exposition
from .cache import stable_document
from .client import ReproClient

__all__ = ["main"]

_LISTENING = re.compile(r"repro-serve listening on http://([^:\s]+):(\d+)")


class SmokeFailure(Exception):
    """An assertion of the service contract did not hold."""


def _drain(stream, sink: List[str]) -> None:
    for line in stream:
        sink.append(line)


def _start_server(workers: int) -> "tuple[subprocess.Popen, str, List[str]]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base_url = None
    log: List[str] = []
    assert process.stdout is not None
    for line in process.stdout:
        log.append(line)
        match = _LISTENING.search(line)
        if match:
            base_url = f"http://{match.group(1)}:{match.group(2)}"
            break
    if base_url is None:
        process.wait(timeout=10)
        raise SmokeFailure(
            "server never announced its address; output:\n" + "".join(log)
        )
    # Keep the pipe drained so the server can never block on a full buffer.
    threading.Thread(
        target=_drain, args=(process.stdout, log), daemon=True
    ).start()
    return process, base_url, log


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _watch_into(client: ReproClient, job_id: str, sink: List[dict], errors: List[str]) -> None:
    """Drain a live SSE stream into ``sink`` (runs on a watcher thread)."""
    try:
        for record in client.watch(job_id):
            sink.append(record)
    except Exception as error:  # noqa: BLE001 - surfaced by the main thread
        errors.append(f"{type(error).__name__}: {error}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="Boot repro-serve and prove the submit/cache/serve contract.",
    )
    parser.add_argument(
        "--sweep",
        default="counting-smoke",
        help="builtin sweep to submit (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker processes"
    )
    parser.add_argument(
        "--timeout-s", type=float, default=600.0, help="per-job wait budget"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="CLI-written SWEEP_*.json to compare the served artifact against",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the served artifact document",
    )
    args = parser.parse_args(argv)

    spec = resolve_builtin(args.sweep)
    spec_dict = spec.to_dict()
    grid = len(spec.cells())
    process = base_url = None
    log: List[str] = []
    try:
        process, base_url, log = _start_server(args.workers)
        client = ReproClient(base_url)

        health = client.healthz()
        print(f"healthz: version {health['version']}, {health['workers']} worker(s)")

        metrics_before = parse_exposition(client.metrics())

        first = client.submit("sweep", spec_dict)
        # Attach a live event stream while the job runs; the watcher thread
        # drains SSE frames until the terminal ``end`` event arrives.
        events: List[dict] = []
        watch_errors: List[str] = []
        watcher = threading.Thread(
            target=_watch_into,
            args=(client, first["job_id"], events, watch_errors),
            daemon=True,
        )
        watcher.start()
        done_first = client.wait(first["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_first["state"] == "done",
            f"first job finished {done_first['state']}: {done_first['error']}",
        )
        progress = done_first["progress"]
        _expect(
            progress["executed_cells"] == grid and progress["cached_cells"] == 0,
            f"first job should compute all {grid} cells, got {progress}",
        )
        artifact_first = client.artifact(first["job_id"])
        print(f"job 1 ({first['job_id']}): computed {grid}/{grid} cells")

        watcher.join(timeout=30.0)
        _expect(not watcher.is_alive(), "event stream never delivered the end event")
        _expect(not watch_errors, f"event stream failed: {watch_errors}")
        cell_ids = {
            record["data"]["cell_id"]
            for record in events
            if record["event"] == "cell"
        }
        _expect(
            len(cell_ids) >= grid,
            f"expected a cell event for each of {grid} cells, saw {sorted(cell_ids)}",
        )
        seqs = [int(record["id"]) for record in events if record["id"] is not None]
        _expect(
            all(later > earlier for earlier, later in zip(seqs, seqs[1:])),
            f"event sequence numbers are not strictly increasing: {seqs}",
        )
        _expect(
            events and events[-1]["event"] == "end",
            f"the stream must close with an end event, got {[e['event'] for e in events]}",
        )
        print(
            f"events: {len(events)} frames, {len(cell_ids)} cell(s), "
            "ordered, end-terminated"
        )

        second = client.submit("sweep", spec_dict)
        done_second = client.wait(second["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_second["state"] == "done",
            f"second job finished {done_second['state']}: {done_second['error']}",
        )
        progress = done_second["progress"]
        _expect(
            progress["cached_cells"] == grid and progress["executed_cells"] == 0,
            f"second job should be fully cached, got {progress}",
        )
        artifact_second = client.artifact(second["job_id"])
        print(f"job 2 ({second['job_id']}): served {grid}/{grid} cells from cache")

        stats = client.cache_stats()
        _expect(
            stats["hits"] >= grid,
            f"expected at least {grid} cache hits, got {stats}",
        )
        print(
            f"cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({stats['entries']} entries)"
        )

        metrics_after = parse_exposition(client.metrics())
        for field in ("hits", "misses", "puts", "evictions"):
            exposed = counter_value(metrics_after, f"repro_cache_{field}_total")
            _expect(
                exposed == stats[field],
                f"/metrics repro_cache_{field}_total={exposed} disagrees with "
                f"/cache/stats {field}={stats[field]}",
            )
        for name, samples in metrics_before.items():
            if not name.endswith("_total"):
                continue
            for labels, value in samples.items():
                now = metrics_after.get(name, {}).get(labels, 0.0)
                _expect(
                    now >= value,
                    f"counter {name}{dict(labels)} went backwards: {value} -> {now}",
                )
        finished = counter_value(
            metrics_after, "repro_jobs_finished_total", kind="sweep", state="done"
        )
        _expect(
            finished == 2,
            f'repro_jobs_finished_total{{kind="sweep",state="done"}} should be 2, '
            f"got {finished}",
        )
        print(
            f"metrics: {len(metrics_after)} families parsed, cache counters match "
            "/cache/stats, counters monotone"
        )

        _expect(
            stable_document(artifact_first) == stable_document(artifact_second),
            "computed and cache-served artifacts differ beyond volatile fields",
        )
        print("artifact equivalence: computed == cache-served")

        if args.compare:
            with open(args.compare, "r", encoding="utf-8") as handle:
                cli_document = json.load(handle)
            _expect(
                stable_document(cli_document) == stable_document(artifact_second),
                f"served artifact differs from CLI artifact {args.compare} "
                f"beyond volatile fields",
            )
            print(f"artifact equivalence: served == CLI ({args.compare})")

        if args.output:
            directory = os.path.dirname(args.output)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(artifact_second, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"served artifact written to {args.output}")

        print("server smoke: PASS")
        return 0
    except SmokeFailure as failure:
        print(f"server smoke: FAIL - {failure}", file=sys.stderr)
        if log:
            print("server output:\n" + "".join(log), file=sys.stderr)
        return 1
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)


if __name__ == "__main__":
    sys.exit(main())

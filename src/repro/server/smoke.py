"""End-to-end smoke for the job server; the CI demo.

Boots ``repro-serve`` as a subprocess on an ephemeral port, submits a
builtin sweep **twice**, and asserts the service contract:

* the first job computes every cell on the workers,
* the second identical job is served *entirely* from the result cache
  (``executed_cells == 0``, ``/cache/stats`` hits >= grid size),
* both served artifacts agree under :func:`~repro.server.cache.stable_document`,
* and, with ``--compare``, the served artifact equals the document the
  batch CLI wrote for the same spec — cache, server, and CLI are three
  routes to one byte-identical (modulo timestamps) result.

Usage (CI runs exactly this)::

    python -m repro.server.smoke --workers 2 \\
        --compare reports/SWEEP_counting-smoke.json \\
        --output reports/SERVED_counting-smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import threading
from typing import List, Optional

from ..experiments.builtin import resolve_builtin
from .cache import stable_document
from .client import ReproClient

__all__ = ["main"]

_LISTENING = re.compile(r"repro-serve listening on http://([^:\s]+):(\d+)")


class SmokeFailure(Exception):
    """An assertion of the service contract did not hold."""


def _drain(stream, sink: List[str]) -> None:
    for line in stream:
        sink.append(line)


def _start_server(workers: int) -> "tuple[subprocess.Popen, str, List[str]]":
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.cli",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    base_url = None
    log: List[str] = []
    assert process.stdout is not None
    for line in process.stdout:
        log.append(line)
        match = _LISTENING.search(line)
        if match:
            base_url = f"http://{match.group(1)}:{match.group(2)}"
            break
    if base_url is None:
        process.wait(timeout=10)
        raise SmokeFailure(
            "server never announced its address; output:\n" + "".join(log)
        )
    # Keep the pipe drained so the server can never block on a full buffer.
    threading.Thread(
        target=_drain, args=(process.stdout, log), daemon=True
    ).start()
    return process, base_url, log


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.smoke",
        description="Boot repro-serve and prove the submit/cache/serve contract.",
    )
    parser.add_argument(
        "--sweep",
        default="counting-smoke",
        help="builtin sweep to submit (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="server worker processes"
    )
    parser.add_argument(
        "--timeout-s", type=float, default=600.0, help="per-job wait budget"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="CLI-written SWEEP_*.json to compare the served artifact against",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the served artifact document",
    )
    args = parser.parse_args(argv)

    spec = resolve_builtin(args.sweep)
    spec_dict = spec.to_dict()
    grid = len(spec.cells())
    process = base_url = None
    log: List[str] = []
    try:
        process, base_url, log = _start_server(args.workers)
        client = ReproClient(base_url)

        health = client.healthz()
        print(f"healthz: version {health['version']}, {health['workers']} worker(s)")

        first = client.submit("sweep", spec_dict)
        done_first = client.wait(first["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_first["state"] == "done",
            f"first job finished {done_first['state']}: {done_first['error']}",
        )
        progress = done_first["progress"]
        _expect(
            progress["executed_cells"] == grid and progress["cached_cells"] == 0,
            f"first job should compute all {grid} cells, got {progress}",
        )
        artifact_first = client.artifact(first["job_id"])
        print(f"job 1 ({first['job_id']}): computed {grid}/{grid} cells")

        second = client.submit("sweep", spec_dict)
        done_second = client.wait(second["job_id"], timeout_s=args.timeout_s)
        _expect(
            done_second["state"] == "done",
            f"second job finished {done_second['state']}: {done_second['error']}",
        )
        progress = done_second["progress"]
        _expect(
            progress["cached_cells"] == grid and progress["executed_cells"] == 0,
            f"second job should be fully cached, got {progress}",
        )
        artifact_second = client.artifact(second["job_id"])
        print(f"job 2 ({second['job_id']}): served {grid}/{grid} cells from cache")

        stats = client.cache_stats()
        _expect(
            stats["hits"] >= grid,
            f"expected at least {grid} cache hits, got {stats}",
        )
        print(
            f"cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({stats['entries']} entries)"
        )

        _expect(
            stable_document(artifact_first) == stable_document(artifact_second),
            "computed and cache-served artifacts differ beyond volatile fields",
        )
        print("artifact equivalence: computed == cache-served")

        if args.compare:
            with open(args.compare, "r", encoding="utf-8") as handle:
                cli_document = json.load(handle)
            _expect(
                stable_document(cli_document) == stable_document(artifact_second),
                f"served artifact differs from CLI artifact {args.compare} "
                f"beyond volatile fields",
            )
            print(f"artifact equivalence: served == CLI ({args.compare})")

        if args.output:
            directory = os.path.dirname(args.output)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(artifact_second, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"served artifact written to {args.output}")

        print("server smoke: PASS")
        return 0
    except SmokeFailure as failure:
        print(f"server smoke: FAIL - {failure}", file=sys.stderr)
        if log:
            print("server output:\n" + "".join(log), file=sys.stderr)
        return 1
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)


if __name__ == "__main__":
    sys.exit(main())

"""Asynchronous job scheduling over the shared experiment worker pool.

A *job* is one spec of any of the three existing kinds — a sweep, a chaos
scenario, or a frontier search — submitted as JSON.  The
:class:`JobManager` owns a single spawn-safe
:class:`~repro.experiments.runner.PoolExecutor` shared by every job and
kind (the per-batch executor override routes each cell to the right worker
entry point), a FIFO dispatch queue, and the content-addressed
:class:`~repro.server.cache.ResultCache`.

Scheduling model:

* Jobs run strictly FIFO, one at a time, on a background dispatcher
  thread; their *cells* fan out across the pool's worker processes in
  bounded chunks of at most ``max_inflight`` — the knob that keeps one
  giant grid from monopolising the pool unboundedly and gives
  cancellation its granularity.
* While a batch runs, its unscheduled cells are also *leasable* by remote
  ``repro-worker`` processes through the HTTP pull protocol
  (:meth:`JobManager.lease_work` / :meth:`JobManager.complete_work`, backed
  by :class:`~repro.server.work.WorkQueue`): the manager is a scheduler
  over the local pool *plus* any number of worker hosts.  Leases carry a
  TTL kept alive by heartbeats; a lease whose worker dies is expired and
  its cell requeued (at-least-once, first result wins, replays dedup'd by
  the content-addressed cache key).  With ``local_execution=False`` the
  server computes nothing itself and remote workers do all the work.
* Before a cell is scheduled its cache key is looked up; a hit reuses the
  stored record and the cell never reaches a worker.  Hits and fresh runs
  are merged by :func:`repro.resume.merge_cells` — the exact helper
  ``--resume`` uses — so a cache-assembled document is indistinguishable
  from a computed one.
* Cancellation (``DELETE /jobs/<id>``) is immediate for queued jobs and
  takes effect at the next chunk boundary (or, for searches, the next
  probe) for running ones; in-flight cells finish and still populate the
  cache.

Search jobs schedule their probes through the same pool and cache via
:class:`CachingPool`, so a resubmitted search replays its probe history
for free; probe batches flow through the same lease machinery, so remote
workers serve searches too.
"""

from __future__ import annotations

import queue
import re
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..engine.errors import ConfigurationError
from ..experiments.artifacts import build_document as _build_sweep_document
from ..obs.metrics import MetricsRegistry
from ..experiments.runner import PoolExecutor, cell_payload, execute_cell
from ..experiments.spec import SweepSpec
from ..fingerprint import code_fingerprint
from ..resume import merge_cells
from ..scenarios.artifacts import build_document as _build_scenario_document
from ..scenarios.artifacts import build_frontier_document
from ..scenarios.runner import execute_scenario_cell, scenario_cell_payload
from ..scenarios.search import FrontierRunner, SearchSpec
from ..scenarios.spec import ScenarioSpec
from .cache import ResultCache, cache_key
from .work import WorkItem, WorkQueue

__all__ = [
    "EXECUTOR_KINDS",
    "JOB_KINDS",
    "JOB_STATES",
    "CachingPool",
    "JobKind",
    "JobManager",
    "JobNotReady",
    "UnknownJob",
]

#: The worker entry point behind each lease ``kind`` — the vocabulary the
#: pull protocol and ``repro-worker`` share (search probes are scenario
#: cells, so two entries cover all three job kinds).
EXECUTOR_KINDS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "sweep": execute_cell,
    "scenario": execute_scenario_cell,
}

Progress = Optional[Callable[[str], None]]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
_TERMINAL_STATES = ("done", "failed", "cancelled")


class UnknownJob(KeyError):
    """No job with the requested id exists."""


class JobNotReady(Exception):
    """The job exists but has no artifact (not done, failed, or cancelled)."""

    def __init__(self, job_id: str, state: str) -> None:
        super().__init__(f"job {job_id!r} has no artifact (state: {state})")
        self.job_id = job_id
        self.state = state


@dataclass(frozen=True)
class JobKind:
    """How one spec kind plugs into the job machinery.

    Grid kinds (sweep, scenario) declare the cell payload builder, worker
    entry point, and document builder; the search kind drives
    :class:`~repro.scenarios.search.FrontierRunner` instead and leaves the
    grid fields ``None``.
    """

    kind: str
    artifact: str
    load_spec: Callable[[Dict[str, Any]], Any]
    executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    payloads: Optional[Callable[[Any, List[Any]], List[Dict[str, Any]]]] = None
    build_document: Optional[Callable[[Any, List[Dict[str, Any]], int], Dict[str, Any]]] = None


def _sweep_payloads(spec: SweepSpec, cells: List[Any]) -> List[Dict[str, Any]]:
    return [cell_payload(spec, cell) for cell in cells]


def _scenario_payloads(spec: ScenarioSpec, cells: List[Any]) -> List[Dict[str, Any]]:
    spec_dict = spec.to_dict()
    return [scenario_cell_payload(spec_dict, cell) for cell in cells]


JOB_KINDS: Dict[str, JobKind] = {
    kind.kind: kind
    for kind in (
        JobKind(
            kind="sweep",
            artifact="sweep",
            load_spec=SweepSpec.from_dict,
            executor=execute_cell,
            payloads=_sweep_payloads,
            build_document=_build_sweep_document,
        ),
        JobKind(
            kind="scenario",
            artifact="scenario",
            load_spec=ScenarioSpec.from_dict,
            executor=execute_scenario_cell,
            payloads=_scenario_payloads,
            build_document=_build_scenario_document,
        ),
        JobKind(
            kind="search",
            artifact="frontier",
            load_spec=SearchSpec.from_dict,
        ),
    )
}


class CachingPool:
    """A :class:`PoolExecutor` facade that consults the result cache first.

    Payload-shaped batches pass through unchanged, except that payloads
    whose content address is already cached return their stored record
    without touching a worker.  Fresh successful records are stored on the
    way out.  Used to route search probes (scheduled internally by
    :class:`~repro.scenarios.search.FrontierRunner`) through the shared
    cache; the pool itself is borrowed, so :meth:`close` is a no-op.
    """

    def __init__(
        self,
        pool: PoolExecutor,
        cache: ResultCache,
        on_hit: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_fresh: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self._pool = pool
        self._cache = cache
        self._on_hit = on_hit
        self._on_fresh = on_fresh
        self.workers = pool.workers

    def map(
        self,
        payloads: List[Dict[str, Any]],
        timeout_s: Optional[float] = None,
        on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        fingerprint = code_fingerprint()
        results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        misses: List[Any] = []
        for index, payload in enumerate(payloads):
            key = cache_key(payload, fingerprint)
            record = self._cache.get(key)
            if record is not None:
                results[index] = record
                if self._on_hit:
                    self._on_hit(record)
                if on_result:
                    on_result(record)
            else:
                misses.append((index, key, payload))
        if misses:
            fresh = self._pool.map(
                [payload for _, _, payload in misses],
                timeout_s=timeout_s,
                on_result=on_result,
                executor=executor,
            )
            for (index, key, _payload), record in zip(misses, fresh):
                results[index] = record
                if record is not None:
                    self._cache.put(key, record)
                    if self._on_fresh:
                        self._on_fresh(record)
        return [record for record in results if record is not None]

    def close(self) -> None:
        """No-op: the underlying pool belongs to the job manager."""


class Job:
    """One submitted spec and its lifecycle bookkeeping (manager-internal)."""

    def __init__(self, job_id: str, kind: str, spec: Any, spec_dict: Dict[str, Any]) -> None:
        self.id = job_id
        self.kind = kind
        self.spec = spec
        self.spec_dict = spec_dict
        self.state = "queued"
        self.error: Optional[str] = None
        self.document: Optional[Dict[str, Any]] = None
        self.cancel = threading.Event()
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.cached = 0
        self.executed = 0
        self.remote = 0
        self.runner: Optional[FrontierRunner] = None
        #: Append-only lifecycle event log for ``GET /jobs/<id>/events``:
        #: each entry is ``{"seq": i, "event": kind, "data": {...}}`` with
        #: ``seq == index``, so SSE replay and ``Last-Event-ID`` resume are
        #: exact.  Guarded by :attr:`events_cond` (never by the manager
        #: lock), which is also how streaming readers block for news.
        self.events: List[Dict[str, Any]] = []
        self.events_cond = threading.Condition()
        if kind == "search":
            self.cells: Dict[str, str] = {}
            self.total_cells: Optional[int] = None
        else:
            self.cells = {cell.cell_id: "pending" for cell in spec.cells()}
            self.total_cells = len(self.cells)


@dataclass
class _ActiveBatch:
    """The one batch currently exposing leasable work (manager-internal)."""

    job: Job
    queue: WorkQueue
    exec_kind: str
    on_result: Callable[[Dict[str, Any], str], None]
    cache_results: bool


_ID_SANITISER = re.compile(r"[^A-Za-z0-9._-]+")


class JobManager:
    """Schedule submitted jobs on one shared worker pool, FIFO, cache-first.

    Args:
        workers: Worker process count for the shared pool (``None``: all
            cores; below 2 executes cells serially on the dispatcher
            thread, the mode the test suite uses).
        max_inflight: Upper bound on cells handed to the pool per batch;
            also the cancellation granularity.  Defaults to twice the
            worker count (at least 4).
        cache: The shared :class:`ResultCache`; a fresh default-sized one
            when omitted.
        progress: Optional line-oriented progress callback (server log).
        executor_overrides: Test seam — per-kind replacement worker entry
            points (e.g. an instrumented slow executor for cancellation
            tests).  Only safe with in-process execution or picklable
            callables.
        retries: Lost-worker re-submissions, forwarded to the pool.
        lease_ttl_s: Remote lease time-to-live.  A ``repro-worker`` that
            stops heartbeating for this long is presumed dead and its cell
            is requeued.
        local_execution: When ``False`` the server never runs cells on its
            own pool — every cell waits for a remote worker to lease it
            (the pure scheduler mode the distributed CI smoke uses).
        max_lease_attempts: How many leases one cell may burn through
            before the manager gives up on it with a synthetic error
            record.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Progress = None,
        executor_overrides: Optional[Dict[str, Callable]] = None,
        retries: int = 1,
        lease_ttl_s: float = 60.0,
        local_execution: bool = True,
        max_lease_attempts: int = 5,
    ) -> None:
        self.progress = progress
        self.cache = cache if cache is not None else ResultCache()
        self._overrides = dict(executor_overrides or {})
        self._pool = PoolExecutor(
            execute_cell, workers=workers, retries=retries, progress=progress
        )
        self.workers = self._pool.workers
        self.max_inflight = (
            max_inflight if max_inflight is not None else max(4, 2 * self.workers)
        )
        if self.max_inflight < 1:
            raise ConfigurationError("max_inflight must be at least 1")
        if lease_ttl_s <= 0:
            raise ConfigurationError("lease_ttl_s must be positive")
        self.lease_ttl_s = lease_ttl_s
        self.local_execution = local_execution
        self.max_lease_attempts = max_lease_attempts
        # The lease table of the currently running batch (jobs run FIFO,
        # so at most one batch exposes work at a time).
        self._work_lock = threading.Lock()
        self._active: Optional[_ActiveBatch] = None
        self._known_workers: "set[str]" = set()
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._seq = 0
        self._stop = threading.Event()
        # ------------------------------------------------ metrics (/metrics)
        self.metrics = MetricsRegistry()
        self._jobs_submitted = self.metrics.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted for scheduling, by kind.",
            labelnames=("kind",),
        )
        self._jobs_finished = self.metrics.counter(
            "repro_jobs_finished_total",
            "Jobs that reached a terminal state, by kind and state.",
            labelnames=("kind", "state"),
        )
        self._job_seconds = self.metrics.histogram(
            "repro_job_duration_seconds",
            "Job wall-clock from dispatch to terminal state.",
            labelnames=("kind",),
        )
        self._cells_finished = self.metrics.counter(
            "repro_cells_total",
            "Cell and probe completions, by job kind and outcome "
            "(cached / executed / failed).",
            labelnames=("kind", "outcome"),
        )
        self._cell_seconds = self.metrics.histogram(
            "repro_cell_duration_seconds",
            "Per-cell wall-clock as reported by the worker record.",
            labelnames=("kind",),
        )
        self._events_emitted = self.metrics.counter(
            "repro_job_events_total",
            "Lifecycle events appended to job event logs.",
            labelnames=("kind",),
        )
        self._cache_hits = self.metrics.counter(
            "repro_cache_hits_total", "Result-cache hits (mirrors /cache/stats)."
        )
        self._cache_misses = self.metrics.counter(
            "repro_cache_misses_total", "Result-cache misses (mirrors /cache/stats)."
        )
        self._cache_puts = self.metrics.counter(
            "repro_cache_puts_total", "Result-cache stores (mirrors /cache/stats)."
        )
        self._cache_evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            "Result-cache evictions (mirrors /cache/stats).",
        )
        self._cache_entries = self.metrics.gauge(
            "repro_cache_entries", "Result-cache entries currently stored."
        )
        self._jobs_by_state = self.metrics.gauge(
            "repro_jobs", "Jobs currently known to the manager, by state.",
            labelnames=("state",),
        )
        self._leases_granted = self.metrics.counter(
            "repro_leases_granted_total",
            "Work leases granted to remote workers, by worker id.",
            labelnames=("worker",),
        )
        self._leases_expired = self.metrics.counter(
            "repro_leases_expired_total",
            "Leases that outlived their TTL without a result (worker "
            "presumed dead).",
        )
        self._leases_requeued = self.metrics.counter(
            "repro_leases_requeued_total",
            "Cells put back on the queue after their lease expired.",
        )
        self._lease_results = self.metrics.counter(
            "repro_lease_results_total",
            "Results pushed by remote workers, by outcome "
            "(accepted / duplicate / rejected / gone / unknown).",
            labelnames=("outcome",),
        )
        self._worker_results = self.metrics.counter(
            "repro_worker_results_total",
            "Accepted remote results, by worker id.",
            labelnames=("worker",),
        )
        self._work_pending = self.metrics.gauge(
            "repro_work_pending",
            "Cells of the running batch awaiting a lease or local slot.",
        )
        self._worker_leases = self.metrics.gauge(
            "repro_worker_active_leases",
            "Outstanding (unexpired, unfinished) leases per worker id.",
            labelnames=("worker",),
        )
        self.metrics.gauge(
            "repro_pool_workers", "Worker processes in the shared pool."
        ).set(self.workers)
        self.metrics.gauge(
            "repro_pool_max_inflight",
            "Upper bound on cells handed to the pool per batch.",
        ).set(self.max_inflight)
        self.metrics.add_collector(self._collect_live_metrics)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-job-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the dispatcher and shut the pool down (idempotent)."""
        self._stop.set()
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=10.0)
        self._pool.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    # ------------------------------------------------------------ telemetry
    def _collect_live_metrics(self) -> None:
        """Refresh collector-driven series at scrape time.

        The cache counters are copied from :meth:`ResultCache.stats` — the
        exact numbers ``/cache/stats`` serves — so the two endpoints can
        never disagree about hits and misses.
        """
        stats = self.cache.stats()
        self._cache_hits.set_total(stats["hits"])
        self._cache_misses.set_total(stats["misses"])
        self._cache_puts.set_total(stats["puts"])
        self._cache_evictions.set_total(stats["evictions"])
        self._cache_entries.set(stats["entries"])
        for state, count in self.counts().items():
            self._jobs_by_state.set(count, state=state)
        with self._work_lock:
            active = self._active
            workers = set(self._known_workers)
        snapshot = active.queue.snapshot() if active is not None else None
        self._work_pending.set(snapshot["pending"] if snapshot else 0)
        per_worker = snapshot["active_leases"] if snapshot else {}
        for worker_id in workers:
            self._worker_leases.set(per_worker.get(worker_id, 0), worker=worker_id)

    def render_metrics(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``."""
        return self.metrics.render()

    def _emit(self, job: Job, event: str, data: Dict[str, Any]) -> None:
        """Append one lifecycle event to the job's log and wake streamers."""
        payload = {"job_id": job.id, **data}
        with job.events_cond:
            job.events.append(
                {"seq": len(job.events), "event": event, "data": payload}
            )
            job.events_cond.notify_all()
        self._events_emitted.inc(kind=job.kind)

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        """Move a job to a terminal state (single funnel for all paths).

        Emits the terminal ``job`` event plus the stream-closing ``end``
        event — every terminal transition goes through here, which is what
        guarantees SSE consumers always receive exactly one ``end``.
        """
        with self._lock:
            job.state = state
            if error is not None:
                job.error = error
            job.finished_unix = time.time()
            duration = job.finished_unix - (job.started_unix or job.submitted_unix)
        self._jobs_finished.inc(kind=job.kind, state=state)
        self._job_seconds.observe(duration, kind=job.kind)
        self._emit(job, "job", {"state": state, "error": job.error})
        self._emit(job, "end", {"state": state, "error": job.error})

    def events_after(
        self,
        job_id: str,
        after: int,
        wait_s: Optional[float] = None,
    ) -> "tuple[List[Dict[str, Any]], bool]":
        """Events with ``seq > after``, and whether the stream has ended.

        Blocks up to ``wait_s`` when nothing new is pending.  ``ended`` is
        true once the terminal ``end`` event has been appended; a caller
        resuming past it gets ``([], True)`` immediately instead of waiting
        forever.
        """
        job = self._get(job_id)
        start = after + 1
        with job.events_cond:
            if (
                wait_s is not None
                and len(job.events) <= start
                and not (job.events and job.events[-1]["event"] == "end")
            ):
                job.events_cond.wait(wait_s)
            events = list(job.events[start:])
            ended = bool(job.events) and job.events[-1]["event"] == "end"
        return events, ended

    # ------------------------------------------------------- worker protocol
    def _active_batch(self) -> Optional[_ActiveBatch]:
        with self._work_lock:
            return self._active

    def _reap_batch(self, active: _ActiveBatch) -> None:
        """Expire overdue leases of ``active``; requeue or give up.

        Called from the dispatch loop every tick *and* from
        :meth:`lease_work`, so a polling worker re-leases an expired cell
        promptly even while the dispatcher is blocked on a local chunk.
        """
        expired, gave_up = active.queue.reap()
        for lease in expired:
            self._leases_expired.inc()
            requeued = lease.item.attempts < active.queue.max_attempts
            if requeued:
                self._leases_requeued.inc()
            self._emit(
                active.job,
                "lease",
                {
                    "lease_id": lease.lease_id,
                    "worker": lease.worker_id,
                    "cell_id": lease.item.payload.get("cell_id"),
                    "state": "expired",
                    "requeued": requeued,
                },
            )
            self._report(
                f"job {active.job.id}: lease {lease.lease_id} "
                f"(worker {lease.worker_id}, cell "
                f"{lease.item.payload.get('cell_id')}) expired"
                + (" -> requeued" if requeued else " -> giving up")
            )
        for item, record in gave_up:
            active.on_result(record, "lease-expired")

    def lease_work(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """Grant one cell of the running batch to a remote worker.

        Returns the lease as a JSON-ready dict (``lease_id``, ``kind``,
        the canonical worker ``payload``, ``ttl_s``), or ``None`` when
        nothing is leasable right now — no running batch, or every cell is
        taken (the worker should poll again shortly).
        """
        worker_id = str(worker_id or "anonymous")[:128]
        active = self._active_batch()
        if active is None:
            return None
        self._reap_batch(active)
        lease = active.queue.lease(worker_id, ttl_s=self.lease_ttl_s)
        if lease is None:
            return None
        with self._work_lock:
            self._known_workers.add(worker_id)
        self._leases_granted.inc(worker=worker_id)
        self._emit(
            active.job,
            "lease",
            {
                "lease_id": lease.lease_id,
                "worker": worker_id,
                "cell_id": lease.item.payload.get("cell_id"),
                "state": "granted",
            },
        )
        return {
            "lease_id": lease.lease_id,
            "job_id": active.job.id,
            "kind": lease.item.exec_kind,
            "cell_id": lease.item.payload.get("cell_id"),
            "payload": lease.item.payload,
            "ttl_s": lease.ttl_s,
            "attempt": lease.item.attempts,
        }

    def heartbeat_work(self, lease_id: str) -> Optional[Dict[str, Any]]:
        """Extend a lease's TTL; ``None`` when the lease is gone/expired."""
        active = self._active_batch()
        if active is None:
            return None
        lease = active.queue.heartbeat(lease_id)
        if lease is None:
            return None
        return {"lease_id": lease.lease_id, "ttl_s": lease.ttl_s}

    def complete_work(self, lease_id: str, record: Any) -> Dict[str, Any]:
        """Accept a pushed result for a leased cell.

        Outcomes mirror :meth:`WorkQueue.complete`, plus ``"rejected"``
        for a malformed record (not a dict, or for the wrong cell).  Only
        the first result per cell is used; duplicates — e.g. a worker that
        lost its lease to a timeout but finished anyway, racing the
        requeued execution — are acknowledged and dropped.
        """
        active = self._active_batch()
        if active is None:
            self._lease_results.inc(outcome="gone")
            return {"lease_id": lease_id, "outcome": "gone", "accepted": False}
        if not isinstance(record, dict) or not record:
            self._lease_results.inc(outcome="rejected")
            return {
                "lease_id": lease_id,
                "outcome": "rejected",
                "accepted": False,
                "error": "the result must be a non-empty cell record object",
            }
        lease = active.queue.peek(lease_id)
        if lease is not None and record.get("cell_id") != lease.item.payload.get(
            "cell_id"
        ):
            # A record for the wrong cell is useless; leave the lease to
            # expire (and the cell to requeue) on its own TTL.
            self._lease_results.inc(outcome="rejected")
            return {
                "lease_id": lease_id,
                "outcome": "rejected",
                "accepted": False,
                "error": (
                    f"result is for cell {record.get('cell_id')!r} but the "
                    f"lease is for {lease.item.payload.get('cell_id')!r}"
                ),
            }
        outcome, lease = active.queue.complete(lease_id, record)
        self._lease_results.inc(outcome=outcome)
        if outcome == "accepted":
            self._worker_results.inc(worker=lease.worker_id)
            if active.cache_results:
                self.cache.put(lease.item.cache_key, record)
            active.on_result(record, f"worker:{lease.worker_id}")
        return {
            "lease_id": lease_id,
            "outcome": outcome,
            "accepted": outcome == "accepted",
        }

    def _run_batch(
        self,
        job: Job,
        exec_kind: str,
        payloads: List[Dict[str, Any]],
        executor: Callable[[Dict[str, Any]], Dict[str, Any]],
        timeout_s: Optional[float],
        on_result: Callable[[Dict[str, Any], str], None],
        cache_results: bool = True,
    ) -> List[Optional[Dict[str, Any]]]:
        """Drain one batch through the local pool and/or remote workers.

        The mixed-dispatch core: items are leasable by remote workers the
        whole time, while (with :attr:`local_execution`) the dispatcher
        concurrently feeds ``max_inflight``-sized chunks to the local pool.
        Returns per-payload records in payload order (``None`` only where
        cancellation aborted the batch first).  ``on_result(record,
        source)`` fires exactly once per resolved item, tagged ``"local"``,
        ``"worker:<id>"``, or ``"lease-expired"``.
        """
        fingerprint = code_fingerprint()
        items = [
            WorkItem(
                item_id=f"item-{index:05d}",
                exec_kind=exec_kind,
                payload=payload,
                cache_key=cache_key(payload, fingerprint),
            )
            for index, payload in enumerate(payloads)
        ]
        work_queue = WorkQueue(
            items,
            ttl_s=self.lease_ttl_s,
            max_attempts=self.max_lease_attempts,
        )
        active = _ActiveBatch(
            job=job,
            queue=work_queue,
            exec_kind=exec_kind,
            on_result=on_result,
            cache_results=cache_results,
        )
        with self._work_lock:
            self._active = active
        try:
            while True:
                self._reap_batch(active)
                if job.cancel.is_set():
                    work_queue.abort()
                    break
                if work_queue.finished:
                    break
                chunk = (
                    work_queue.take_local(self.max_inflight)
                    if self.local_execution
                    else []
                )
                if not chunk:
                    work_queue.wait(0.2)
                    continue
                by_cell = {
                    item.payload.get("cell_id"): item for item in chunk
                }

                def note(record: Dict[str, Any]) -> None:
                    item = by_cell.get((record or {}).get("cell_id"))
                    if item is not None and work_queue.resolve_local(
                        item.item_id, record
                    ):
                        if cache_results:
                            self.cache.put(item.cache_key, record)
                        on_result(record, "local")

                records = self._pool.map(
                    [item.payload for item in chunk],
                    timeout_s=timeout_s,
                    on_result=note,
                    executor=executor,
                )
                # Safety net for records the callback could not attribute
                # (e.g. a missing cell_id): resolve by position.
                for item, record in zip(chunk, records):
                    if record is not None and work_queue.resolve_local(
                        item.item_id, record
                    ):
                        if cache_results:
                            self.cache.put(item.cache_key, record)
                        on_result(record, "local")
        finally:
            with self._work_lock:
                self._active = None
            work_queue.abort()
        return work_queue.results_in_order()

    # ------------------------------------------------------------ submission
    def submit(self, kind: str, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and enqueue one job; returns its status snapshot.

        Raises :class:`~repro.engine.errors.ConfigurationError` for an
        unknown kind or an invalid spec — the HTTP layer maps that to a
        400 with the validation message.
        """
        job_kind = JOB_KINDS.get(kind)
        if job_kind is None:
            raise ConfigurationError(
                f"unknown job kind {kind!r}; expected one of {tuple(JOB_KINDS)}"
            )
        if not isinstance(spec_dict, dict):
            raise ConfigurationError("the job spec must be a JSON object")
        spec = job_kind.load_spec(spec_dict)
        with self._lock:
            self._seq += 1
            name = _ID_SANITISER.sub("-", str(spec.name)) or "unnamed"
            job_id = f"{kind}-{self._seq:04d}-{name}"
            job = Job(job_id, kind, spec, spec.to_dict())
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._jobs_submitted.inc(kind=kind)
        self._emit(job, "job", {"state": "queued", "total_cells": job.total_cells})
        self._queue.put(job_id)
        self._report(f"job {job_id}: queued ({job.total_cells or '?'} cells)")
        return self.status(job_id)

    # ---------------------------------------------------------------- access
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """A JSON-ready snapshot of one job's state and per-cell progress."""
        job = self._get(job_id)
        with self._lock:
            if job.kind == "search":
                history = job.runner.history if job.runner is not None else []
                progress = {
                    "total_cells": None,
                    "max_probes": job.spec.max_probes,
                    "completed_cells": len(history),
                    "cached_cells": job.cached,
                    "executed_cells": job.executed,
                    "remote_cells": job.remote,
                    "failed_cells": [],
                }
            else:
                cells = dict(job.cells)
                progress = {
                    "total_cells": job.total_cells,
                    "completed_cells": job.cached + job.executed,
                    "cached_cells": job.cached,
                    "executed_cells": job.executed,
                    "remote_cells": job.remote,
                    "failed_cells": sorted(
                        cell_id for cell_id, state in cells.items() if state == "failed"
                    ),
                    "cells": cells,
                }
            return {
                "job_id": job.id,
                "kind": job.kind,
                "name": job.spec.name,
                "state": job.state,
                "cancel_requested": job.cancel.is_set(),
                "submitted_unix": job.submitted_unix,
                "started_unix": job.started_unix,
                "finished_unix": job.finished_unix,
                "error": job.error,
                "progress": progress,
            }

    def jobs(self) -> List[Dict[str, Any]]:
        """Status snapshots of every job, in submission order."""
        with self._lock:
            order = list(self._order)
        return [self.status(job_id) for job_id in order]

    def counts(self) -> Dict[str, int]:
        """Job counts per state (for ``/healthz``)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def artifact(self, job_id: str) -> Dict[str, Any]:
        """The finished document of a done job.

        Raises :class:`JobNotReady` while the job is queued/running and for
        failed or cancelled jobs (their error travels in the status).
        """
        job = self._get(job_id)
        with self._lock:
            if job.state != "done" or job.document is None:
                raise JobNotReady(job_id, job.state)
            return job.document

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; immediate for queued jobs.

        Running jobs stop at the next chunk boundary (grid kinds) or probe
        (searches); already-finished jobs are left untouched.
        """
        job = self._get(job_id)
        with self._lock:
            if job.state in _TERMINAL_STATES:
                return {"job_id": job.id, "state": job.state, "cancelled": False}
            job.cancel.set()
            if job.state == "queued":
                self._finish(job, "cancelled", "cancelled while queued")
                self._report(f"job {job.id}: cancelled while queued")
                return {"job_id": job.id, "state": job.state, "cancelled": True}
        self._report(f"job {job.id}: cancellation requested")
        return {"job_id": job.id, "state": "running", "cancelled": True}

    # ------------------------------------------------------------ dispatcher
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue
            with self._lock:
                if job.state != "queued":
                    continue  # cancelled while waiting in the queue
                job.state = "running"
                job.started_unix = time.time()
            self._emit(job, "job", {"state": "running"})
            self._report(f"job {job.id}: running")
            try:
                if job.kind == "search":
                    self._run_search_job(job)
                else:
                    self._run_grid_job(job)
            except Exception:  # noqa: BLE001 - job must fail, not the server
                self._finish(job, "failed", traceback.format_exc())
                self._report(f"job {job.id}: FAILED (internal error)")

    def _executor_for(self, kind: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
        override = self._overrides.get(kind)
        if override is not None:
            return override
        job_kind = JOB_KINDS[kind]
        return job_kind.executor if job_kind.executor else execute_scenario_cell

    def _note_cell_result(
        self, job: Job, record: Dict[str, Any], source: str = "local"
    ) -> None:
        state = "failed" if record.get("error") else "done"
        with self._lock:
            cell_id = record.get("cell_id")
            if cell_id in job.cells:
                job.cells[cell_id] = state
            job.executed += 1
            if source.startswith("worker:"):
                job.remote += 1
            completed = job.cached + job.executed
        self._cells_finished.inc(
            kind=job.kind, outcome="failed" if state == "failed" else "executed"
        )
        wall = record.get("wall_time_s")
        if isinstance(wall, (int, float)):
            self._cell_seconds.observe(float(wall), kind=job.kind)
        self._emit(
            job,
            "cell",
            {
                "cell_id": cell_id,
                "state": state,
                "source": source,
                "completed": completed,
                "total": job.total_cells,
            },
        )

    def _run_grid_job(self, job: Job) -> None:
        kind = JOB_KINDS[job.kind]
        spec = job.spec
        cells = spec.cells()
        payloads = kind.payloads(spec, cells)
        fingerprint = code_fingerprint()

        cached_records: List[Dict[str, Any]] = []
        pending: List[Dict[str, Any]] = []
        for cell, payload in zip(cells, payloads):
            record = self.cache.get(cache_key(payload, fingerprint))
            if record is not None:
                cached_records.append(record)
                with self._lock:
                    job.cells[cell.cell_id] = "cached"
                    job.cached += 1
                    completed = job.cached + job.executed
                self._cells_finished.inc(kind=job.kind, outcome="cached")
                self._emit(
                    job,
                    "cell",
                    {
                        "cell_id": cell.cell_id,
                        "state": "cached",
                        "completed": completed,
                        "total": job.total_cells,
                    },
                )
            else:
                pending.append(payload)
        if cached_records:
            self._report(
                f"job {job.id}: {len(cached_records)} of {len(cells)} cells "
                f"served from cache"
            )

        timeout = None
        if spec.cell_timeout_s is not None:
            # Grace over the in-worker budget so the worker's own timeout
            # record (which preserves completed runs) wins when possible.
            timeout = spec.cell_timeout_s + 30.0
        results = self._run_batch(
            job,
            job.kind,  # grid kinds ("sweep"/"scenario") name their entry point
            pending,
            self._executor_for(job.kind),
            timeout,
            lambda record, source: self._note_cell_result(job, record, source),
        )
        fresh = [record for record in results if record is not None]

        if job.cancel.is_set():
            self._finish(
                job,
                "cancelled",
                f"cancelled after {len(fresh)} of {len(pending)} pending cells ran",
            )
            self._report(f"job {job.id}: cancelled")
            return

        # Cache hits merge with fresh runs through the exact helper
        # --resume uses; fresh failures never displace cached successes.
        merged = merge_cells(
            {"cells": cached_records, "code_fingerprint": fingerprint}, fresh, spec
        )
        document = kind.build_document(spec, merged, self.workers)
        with self._lock:
            job.document = document
        self._finish(job, "done")
        failed = document.get("failed_cells") or []
        self._report(
            f"job {job.id}: done ({len(merged)} cells, {job.cached} cached, "
            f"{job.remote} remote, {len(failed)} failed)"
        )

    def _run_search_job(self, job: Job) -> None:
        spec = job.spec
        caching_pool = CachingPool(
            _BatchPool(self, job),  # type: ignore[arg-type] - duck-typed
            self.cache,
            on_hit=lambda record: self._note_probe(job, cached=True),
            on_fresh=lambda record: self._note_probe(job, cached=False),
        )
        runner = FrontierRunner(
            spec,
            progress=self.progress,
            executor=self._executor_for("search"),
            pool=caching_pool,  # type: ignore[arg-type] - duck-typed facade
            should_abort=job.cancel.is_set,
        )
        with self._lock:
            job.runner = runner
        try:
            result = runner.run()
        except Exception as error:  # noqa: BLE001 - abort and probe failures
            self._finish(
                job, "cancelled" if job.cancel.is_set() else "failed", str(error)
            )
            self._report(f"job {job.id}: {job.state} ({job.error})")
            return
        document = build_frontier_document(spec, result, runner.history, self.workers)
        with self._lock:
            job.document = document
        self._finish(job, "done")
        self._report(
            f"job {job.id}: done ({len(runner.history)} probes, "
            f"{job.cached} cached)"
        )

    # --------------------------------------------------------------- search
    def _note_probe(self, job: Job, cached: bool) -> None:
        with self._lock:
            if cached:
                job.cached += 1
            else:
                job.executed += 1
            completed = job.cached + job.executed
        self._cells_finished.inc(
            kind=job.kind, outcome="cached" if cached else "executed"
        )
        self._emit(
            job, "probe", {"cached": cached, "completed": completed}
        )


class _BatchPool:
    """A pool facade that routes search probe batches through
    :meth:`JobManager._run_batch`, so probes are leasable by remote
    workers exactly like grid cells.  Handed to :class:`CachingPool` in
    place of the raw :class:`PoolExecutor` (which handles the cache, so
    ``cache_results=False`` here avoids double puts).  Probes are always
    scenario cells, hence ``exec_kind="scenario"``.
    """

    def __init__(self, manager: JobManager, job: Job) -> None:
        self._manager = manager
        self._job = job
        self.workers = manager.workers

    def map(
        self,
        payloads: List[Dict[str, Any]],
        timeout_s: Optional[float] = None,
        on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> List[Optional[Dict[str, Any]]]:
        def note(record: Dict[str, Any], _source: str) -> None:
            if on_result:
                on_result(record)

        return self._manager._run_batch(
            self._job,
            "scenario",
            list(payloads),
            executor if executor is not None else execute_scenario_cell,
            timeout_s,
            note,
            cache_results=False,
        )

    def close(self) -> None:
        """No-op: the underlying pool belongs to the job manager."""

"""Asynchronous job scheduling over the shared experiment worker pool.

A *job* is one spec of any of the three existing kinds — a sweep, a chaos
scenario, or a frontier search — submitted as JSON.  The
:class:`JobManager` owns a single spawn-safe
:class:`~repro.experiments.runner.PoolExecutor` shared by every job and
kind (the per-batch executor override routes each cell to the right worker
entry point), a FIFO dispatch queue, and the content-addressed
:class:`~repro.server.cache.ResultCache`.

Scheduling model:

* Jobs run strictly FIFO, one at a time, on a background dispatcher
  thread; their *cells* fan out across the pool's worker processes in
  bounded chunks of at most ``max_inflight`` — the knob that keeps one
  giant grid from monopolising the pool unboundedly and gives
  cancellation its granularity.
* Before a cell is scheduled its cache key is looked up; a hit reuses the
  stored record and the cell never reaches a worker.  Hits and fresh runs
  are merged by :func:`repro.resume.merge_cells` — the exact helper
  ``--resume`` uses — so a cache-assembled document is indistinguishable
  from a computed one.
* Cancellation (``DELETE /jobs/<id>``) is immediate for queued jobs and
  takes effect at the next chunk boundary (or, for searches, the next
  probe) for running ones; in-flight cells finish and still populate the
  cache.

Search jobs schedule their probes through the same pool and cache via
:class:`CachingPool`, so a resubmitted search replays its probe history
for free.
"""

from __future__ import annotations

import queue
import re
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..engine.errors import ConfigurationError
from ..experiments.artifacts import build_document as _build_sweep_document
from ..obs.metrics import MetricsRegistry
from ..experiments.runner import PoolExecutor, cell_payload, execute_cell
from ..experiments.spec import SweepSpec
from ..fingerprint import code_fingerprint
from ..resume import merge_cells
from ..scenarios.artifacts import build_document as _build_scenario_document
from ..scenarios.artifacts import build_frontier_document
from ..scenarios.runner import execute_scenario_cell, scenario_cell_payload
from ..scenarios.search import FrontierRunner, SearchSpec
from ..scenarios.spec import ScenarioSpec
from .cache import ResultCache, cache_key

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "CachingPool",
    "JobKind",
    "JobManager",
    "JobNotReady",
    "UnknownJob",
]

Progress = Optional[Callable[[str], None]]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
_TERMINAL_STATES = ("done", "failed", "cancelled")


class UnknownJob(KeyError):
    """No job with the requested id exists."""


class JobNotReady(Exception):
    """The job exists but has no artifact (not done, failed, or cancelled)."""

    def __init__(self, job_id: str, state: str) -> None:
        super().__init__(f"job {job_id!r} has no artifact (state: {state})")
        self.job_id = job_id
        self.state = state


@dataclass(frozen=True)
class JobKind:
    """How one spec kind plugs into the job machinery.

    Grid kinds (sweep, scenario) declare the cell payload builder, worker
    entry point, and document builder; the search kind drives
    :class:`~repro.scenarios.search.FrontierRunner` instead and leaves the
    grid fields ``None``.
    """

    kind: str
    artifact: str
    load_spec: Callable[[Dict[str, Any]], Any]
    executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    payloads: Optional[Callable[[Any, List[Any]], List[Dict[str, Any]]]] = None
    build_document: Optional[Callable[[Any, List[Dict[str, Any]], int], Dict[str, Any]]] = None


def _sweep_payloads(spec: SweepSpec, cells: List[Any]) -> List[Dict[str, Any]]:
    return [cell_payload(spec, cell) for cell in cells]


def _scenario_payloads(spec: ScenarioSpec, cells: List[Any]) -> List[Dict[str, Any]]:
    spec_dict = spec.to_dict()
    return [scenario_cell_payload(spec_dict, cell) for cell in cells]


JOB_KINDS: Dict[str, JobKind] = {
    kind.kind: kind
    for kind in (
        JobKind(
            kind="sweep",
            artifact="sweep",
            load_spec=SweepSpec.from_dict,
            executor=execute_cell,
            payloads=_sweep_payloads,
            build_document=_build_sweep_document,
        ),
        JobKind(
            kind="scenario",
            artifact="scenario",
            load_spec=ScenarioSpec.from_dict,
            executor=execute_scenario_cell,
            payloads=_scenario_payloads,
            build_document=_build_scenario_document,
        ),
        JobKind(
            kind="search",
            artifact="frontier",
            load_spec=SearchSpec.from_dict,
        ),
    )
}


class CachingPool:
    """A :class:`PoolExecutor` facade that consults the result cache first.

    Payload-shaped batches pass through unchanged, except that payloads
    whose content address is already cached return their stored record
    without touching a worker.  Fresh successful records are stored on the
    way out.  Used to route search probes (scheduled internally by
    :class:`~repro.scenarios.search.FrontierRunner`) through the shared
    cache; the pool itself is borrowed, so :meth:`close` is a no-op.
    """

    def __init__(
        self,
        pool: PoolExecutor,
        cache: ResultCache,
        on_hit: Optional[Callable[[Dict[str, Any]], None]] = None,
        on_fresh: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        self._pool = pool
        self._cache = cache
        self._on_hit = on_hit
        self._on_fresh = on_fresh
        self.workers = pool.workers

    def map(
        self,
        payloads: List[Dict[str, Any]],
        timeout_s: Optional[float] = None,
        on_result: Optional[Callable[[Dict[str, Any]], None]] = None,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> List[Dict[str, Any]]:
        fingerprint = code_fingerprint()
        results: List[Optional[Dict[str, Any]]] = [None] * len(payloads)
        misses: List[Any] = []
        for index, payload in enumerate(payloads):
            key = cache_key(payload, fingerprint)
            record = self._cache.get(key)
            if record is not None:
                results[index] = record
                if self._on_hit:
                    self._on_hit(record)
                if on_result:
                    on_result(record)
            else:
                misses.append((index, key, payload))
        if misses:
            fresh = self._pool.map(
                [payload for _, _, payload in misses],
                timeout_s=timeout_s,
                on_result=on_result,
                executor=executor,
            )
            for (index, key, _payload), record in zip(misses, fresh):
                results[index] = record
                if record is not None:
                    self._cache.put(key, record)
                    if self._on_fresh:
                        self._on_fresh(record)
        return [record for record in results if record is not None]

    def close(self) -> None:
        """No-op: the underlying pool belongs to the job manager."""


class Job:
    """One submitted spec and its lifecycle bookkeeping (manager-internal)."""

    def __init__(self, job_id: str, kind: str, spec: Any, spec_dict: Dict[str, Any]) -> None:
        self.id = job_id
        self.kind = kind
        self.spec = spec
        self.spec_dict = spec_dict
        self.state = "queued"
        self.error: Optional[str] = None
        self.document: Optional[Dict[str, Any]] = None
        self.cancel = threading.Event()
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.cached = 0
        self.executed = 0
        self.runner: Optional[FrontierRunner] = None
        #: Append-only lifecycle event log for ``GET /jobs/<id>/events``:
        #: each entry is ``{"seq": i, "event": kind, "data": {...}}`` with
        #: ``seq == index``, so SSE replay and ``Last-Event-ID`` resume are
        #: exact.  Guarded by :attr:`events_cond` (never by the manager
        #: lock), which is also how streaming readers block for news.
        self.events: List[Dict[str, Any]] = []
        self.events_cond = threading.Condition()
        if kind == "search":
            self.cells: Dict[str, str] = {}
            self.total_cells: Optional[int] = None
        else:
            self.cells = {cell.cell_id: "pending" for cell in spec.cells()}
            self.total_cells = len(self.cells)


def _chunks(items: List[Any], size: int) -> List[List[Any]]:
    return [items[start : start + size] for start in range(0, len(items), size)]


_ID_SANITISER = re.compile(r"[^A-Za-z0-9._-]+")


class JobManager:
    """Schedule submitted jobs on one shared worker pool, FIFO, cache-first.

    Args:
        workers: Worker process count for the shared pool (``None``: all
            cores; below 2 executes cells serially on the dispatcher
            thread, the mode the test suite uses).
        max_inflight: Upper bound on cells handed to the pool per batch;
            also the cancellation granularity.  Defaults to twice the
            worker count (at least 4).
        cache: The shared :class:`ResultCache`; a fresh default-sized one
            when omitted.
        progress: Optional line-oriented progress callback (server log).
        executor_overrides: Test seam — per-kind replacement worker entry
            points (e.g. an instrumented slow executor for cancellation
            tests).  Only safe with in-process execution or picklable
            callables.
        retries: Lost-worker re-submissions, forwarded to the pool.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Progress = None,
        executor_overrides: Optional[Dict[str, Callable]] = None,
        retries: int = 1,
    ) -> None:
        self.progress = progress
        self.cache = cache if cache is not None else ResultCache()
        self._overrides = dict(executor_overrides or {})
        self._pool = PoolExecutor(
            execute_cell, workers=workers, retries=retries, progress=progress
        )
        self.workers = self._pool.workers
        self.max_inflight = (
            max_inflight if max_inflight is not None else max(4, 2 * self.workers)
        )
        if self.max_inflight < 1:
            raise ConfigurationError("max_inflight must be at least 1")
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._seq = 0
        self._stop = threading.Event()
        # ------------------------------------------------ metrics (/metrics)
        self.metrics = MetricsRegistry()
        self._jobs_submitted = self.metrics.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted for scheduling, by kind.",
            labelnames=("kind",),
        )
        self._jobs_finished = self.metrics.counter(
            "repro_jobs_finished_total",
            "Jobs that reached a terminal state, by kind and state.",
            labelnames=("kind", "state"),
        )
        self._job_seconds = self.metrics.histogram(
            "repro_job_duration_seconds",
            "Job wall-clock from dispatch to terminal state.",
            labelnames=("kind",),
        )
        self._cells_finished = self.metrics.counter(
            "repro_cells_total",
            "Cell and probe completions, by job kind and outcome "
            "(cached / executed / failed).",
            labelnames=("kind", "outcome"),
        )
        self._cell_seconds = self.metrics.histogram(
            "repro_cell_duration_seconds",
            "Per-cell wall-clock as reported by the worker record.",
            labelnames=("kind",),
        )
        self._events_emitted = self.metrics.counter(
            "repro_job_events_total",
            "Lifecycle events appended to job event logs.",
            labelnames=("kind",),
        )
        self._cache_hits = self.metrics.counter(
            "repro_cache_hits_total", "Result-cache hits (mirrors /cache/stats)."
        )
        self._cache_misses = self.metrics.counter(
            "repro_cache_misses_total", "Result-cache misses (mirrors /cache/stats)."
        )
        self._cache_puts = self.metrics.counter(
            "repro_cache_puts_total", "Result-cache stores (mirrors /cache/stats)."
        )
        self._cache_evictions = self.metrics.counter(
            "repro_cache_evictions_total",
            "Result-cache evictions (mirrors /cache/stats).",
        )
        self._cache_entries = self.metrics.gauge(
            "repro_cache_entries", "Result-cache entries currently stored."
        )
        self._jobs_by_state = self.metrics.gauge(
            "repro_jobs", "Jobs currently known to the manager, by state.",
            labelnames=("state",),
        )
        self.metrics.gauge(
            "repro_pool_workers", "Worker processes in the shared pool."
        ).set(self.workers)
        self.metrics.gauge(
            "repro_pool_max_inflight",
            "Upper bound on cells handed to the pool per batch.",
        ).set(self.max_inflight)
        self.metrics.add_collector(self._collect_live_metrics)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-job-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the dispatcher and shut the pool down (idempotent)."""
        self._stop.set()
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=10.0)
        self._pool.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _report(self, line: str) -> None:
        if self.progress:
            self.progress(line)

    # ------------------------------------------------------------ telemetry
    def _collect_live_metrics(self) -> None:
        """Refresh collector-driven series at scrape time.

        The cache counters are copied from :meth:`ResultCache.stats` — the
        exact numbers ``/cache/stats`` serves — so the two endpoints can
        never disagree about hits and misses.
        """
        stats = self.cache.stats()
        self._cache_hits.set_total(stats["hits"])
        self._cache_misses.set_total(stats["misses"])
        self._cache_puts.set_total(stats["puts"])
        self._cache_evictions.set_total(stats["evictions"])
        self._cache_entries.set(stats["entries"])
        for state, count in self.counts().items():
            self._jobs_by_state.set(count, state=state)

    def render_metrics(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``."""
        return self.metrics.render()

    def _emit(self, job: Job, event: str, data: Dict[str, Any]) -> None:
        """Append one lifecycle event to the job's log and wake streamers."""
        payload = {"job_id": job.id, **data}
        with job.events_cond:
            job.events.append(
                {"seq": len(job.events), "event": event, "data": payload}
            )
            job.events_cond.notify_all()
        self._events_emitted.inc(kind=job.kind)

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        """Move a job to a terminal state (single funnel for all paths).

        Emits the terminal ``job`` event plus the stream-closing ``end``
        event — every terminal transition goes through here, which is what
        guarantees SSE consumers always receive exactly one ``end``.
        """
        with self._lock:
            job.state = state
            if error is not None:
                job.error = error
            job.finished_unix = time.time()
            duration = job.finished_unix - (job.started_unix or job.submitted_unix)
        self._jobs_finished.inc(kind=job.kind, state=state)
        self._job_seconds.observe(duration, kind=job.kind)
        self._emit(job, "job", {"state": state, "error": job.error})
        self._emit(job, "end", {"state": state, "error": job.error})

    def events_after(
        self,
        job_id: str,
        after: int,
        wait_s: Optional[float] = None,
    ) -> "tuple[List[Dict[str, Any]], bool]":
        """Events with ``seq > after``, and whether the stream has ended.

        Blocks up to ``wait_s`` when nothing new is pending.  ``ended`` is
        true once the terminal ``end`` event has been appended; a caller
        resuming past it gets ``([], True)`` immediately instead of waiting
        forever.
        """
        job = self._get(job_id)
        start = after + 1
        with job.events_cond:
            if (
                wait_s is not None
                and len(job.events) <= start
                and not (job.events and job.events[-1]["event"] == "end")
            ):
                job.events_cond.wait(wait_s)
            events = list(job.events[start:])
            ended = bool(job.events) and job.events[-1]["event"] == "end"
        return events, ended

    # ------------------------------------------------------------ submission
    def submit(self, kind: str, spec_dict: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and enqueue one job; returns its status snapshot.

        Raises :class:`~repro.engine.errors.ConfigurationError` for an
        unknown kind or an invalid spec — the HTTP layer maps that to a
        400 with the validation message.
        """
        job_kind = JOB_KINDS.get(kind)
        if job_kind is None:
            raise ConfigurationError(
                f"unknown job kind {kind!r}; expected one of {tuple(JOB_KINDS)}"
            )
        if not isinstance(spec_dict, dict):
            raise ConfigurationError("the job spec must be a JSON object")
        spec = job_kind.load_spec(spec_dict)
        with self._lock:
            self._seq += 1
            name = _ID_SANITISER.sub("-", str(spec.name)) or "unnamed"
            job_id = f"{kind}-{self._seq:04d}-{name}"
            job = Job(job_id, kind, spec, spec.to_dict())
            self._jobs[job_id] = job
            self._order.append(job_id)
        self._jobs_submitted.inc(kind=kind)
        self._emit(job, "job", {"state": "queued", "total_cells": job.total_cells})
        self._queue.put(job_id)
        self._report(f"job {job_id}: queued ({job.total_cells or '?'} cells)")
        return self.status(job_id)

    # ---------------------------------------------------------------- access
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """A JSON-ready snapshot of one job's state and per-cell progress."""
        job = self._get(job_id)
        with self._lock:
            if job.kind == "search":
                history = job.runner.history if job.runner is not None else []
                progress = {
                    "total_cells": None,
                    "max_probes": job.spec.max_probes,
                    "completed_cells": len(history),
                    "cached_cells": job.cached,
                    "executed_cells": job.executed,
                    "failed_cells": [],
                }
            else:
                cells = dict(job.cells)
                progress = {
                    "total_cells": job.total_cells,
                    "completed_cells": job.cached + job.executed,
                    "cached_cells": job.cached,
                    "executed_cells": job.executed,
                    "failed_cells": sorted(
                        cell_id for cell_id, state in cells.items() if state == "failed"
                    ),
                    "cells": cells,
                }
            return {
                "job_id": job.id,
                "kind": job.kind,
                "name": job.spec.name,
                "state": job.state,
                "cancel_requested": job.cancel.is_set(),
                "submitted_unix": job.submitted_unix,
                "started_unix": job.started_unix,
                "finished_unix": job.finished_unix,
                "error": job.error,
                "progress": progress,
            }

    def jobs(self) -> List[Dict[str, Any]]:
        """Status snapshots of every job, in submission order."""
        with self._lock:
            order = list(self._order)
        return [self.status(job_id) for job_id in order]

    def counts(self) -> Dict[str, int]:
        """Job counts per state (for ``/healthz``)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def artifact(self, job_id: str) -> Dict[str, Any]:
        """The finished document of a done job.

        Raises :class:`JobNotReady` while the job is queued/running and for
        failed or cancelled jobs (their error travels in the status).
        """
        job = self._get(job_id)
        with self._lock:
            if job.state != "done" or job.document is None:
                raise JobNotReady(job_id, job.state)
            return job.document

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; immediate for queued jobs.

        Running jobs stop at the next chunk boundary (grid kinds) or probe
        (searches); already-finished jobs are left untouched.
        """
        job = self._get(job_id)
        with self._lock:
            if job.state in _TERMINAL_STATES:
                return {"job_id": job.id, "state": job.state, "cancelled": False}
            job.cancel.set()
            if job.state == "queued":
                self._finish(job, "cancelled", "cancelled while queued")
                self._report(f"job {job.id}: cancelled while queued")
                return {"job_id": job.id, "state": job.state, "cancelled": True}
        self._report(f"job {job.id}: cancellation requested")
        return {"job_id": job.id, "state": "running", "cancelled": True}

    # ------------------------------------------------------------ dispatcher
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue
            with self._lock:
                if job.state != "queued":
                    continue  # cancelled while waiting in the queue
                job.state = "running"
                job.started_unix = time.time()
            self._emit(job, "job", {"state": "running"})
            self._report(f"job {job.id}: running")
            try:
                if job.kind == "search":
                    self._run_search_job(job)
                else:
                    self._run_grid_job(job)
            except Exception:  # noqa: BLE001 - job must fail, not the server
                self._finish(job, "failed", traceback.format_exc())
                self._report(f"job {job.id}: FAILED (internal error)")

    def _executor_for(self, kind: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
        override = self._overrides.get(kind)
        if override is not None:
            return override
        job_kind = JOB_KINDS[kind]
        return job_kind.executor if job_kind.executor else execute_scenario_cell

    def _note_cell_result(self, job: Job, record: Dict[str, Any]) -> None:
        state = "failed" if record.get("error") else "done"
        with self._lock:
            cell_id = record.get("cell_id")
            if cell_id in job.cells:
                job.cells[cell_id] = state
            job.executed += 1
            completed = job.cached + job.executed
        self._cells_finished.inc(
            kind=job.kind, outcome="failed" if state == "failed" else "executed"
        )
        wall = record.get("wall_time_s")
        if isinstance(wall, (int, float)):
            self._cell_seconds.observe(float(wall), kind=job.kind)
        self._emit(
            job,
            "cell",
            {
                "cell_id": cell_id,
                "state": state,
                "completed": completed,
                "total": job.total_cells,
            },
        )

    def _run_grid_job(self, job: Job) -> None:
        kind = JOB_KINDS[job.kind]
        spec = job.spec
        cells = spec.cells()
        payloads = kind.payloads(spec, cells)
        fingerprint = code_fingerprint()
        keys = [cache_key(payload, fingerprint) for payload in payloads]

        cached_records: List[Dict[str, Any]] = []
        pending: List[Any] = []
        for cell, payload, key in zip(cells, payloads, keys):
            record = self.cache.get(key)
            if record is not None:
                cached_records.append(record)
                with self._lock:
                    job.cells[cell.cell_id] = "cached"
                    job.cached += 1
                    completed = job.cached + job.executed
                self._cells_finished.inc(kind=job.kind, outcome="cached")
                self._emit(
                    job,
                    "cell",
                    {
                        "cell_id": cell.cell_id,
                        "state": "cached",
                        "completed": completed,
                        "total": job.total_cells,
                    },
                )
            else:
                pending.append((cell, payload, key))
        if cached_records:
            self._report(
                f"job {job.id}: {len(cached_records)} of {len(cells)} cells "
                f"served from cache"
            )

        executor = self._executor_for(job.kind)
        timeout = None
        if spec.cell_timeout_s is not None:
            # Grace over the in-worker budget so the worker's own timeout
            # record (which preserves completed runs) wins when possible.
            timeout = spec.cell_timeout_s + 30.0
        fresh: List[Dict[str, Any]] = []
        for chunk in _chunks(pending, self.max_inflight):
            if job.cancel.is_set():
                break
            records = self._pool.map(
                [payload for _cell, payload, _key in chunk],
                timeout_s=timeout,
                on_result=lambda record: self._note_cell_result(job, record),
                executor=executor,
            )
            for (_cell, _payload, key), record in zip(chunk, records):
                fresh.append(record)
                if record is not None:
                    self.cache.put(key, record)

        if job.cancel.is_set():
            self._finish(
                job,
                "cancelled",
                f"cancelled after {len(fresh)} of {len(pending)} pending cells ran",
            )
            self._report(f"job {job.id}: cancelled")
            return

        # Cache hits merge with fresh runs through the exact helper
        # --resume uses; fresh failures never displace cached successes.
        merged = merge_cells(
            {"cells": cached_records, "code_fingerprint": fingerprint}, fresh, spec
        )
        document = kind.build_document(spec, merged, self.workers)
        with self._lock:
            job.document = document
        self._finish(job, "done")
        failed = document.get("failed_cells") or []
        self._report(
            f"job {job.id}: done ({len(merged)} cells, {job.cached} cached, "
            f"{len(failed)} failed)"
        )

    def _run_search_job(self, job: Job) -> None:
        spec = job.spec
        caching_pool = CachingPool(
            self._pool,
            self.cache,
            on_hit=lambda record: self._note_probe(job, cached=True),
            on_fresh=lambda record: self._note_probe(job, cached=False),
        )
        runner = FrontierRunner(
            spec,
            progress=self.progress,
            executor=self._executor_for("search"),
            pool=caching_pool,  # type: ignore[arg-type] - duck-typed facade
            should_abort=job.cancel.is_set,
        )
        with self._lock:
            job.runner = runner
        try:
            result = runner.run()
        except Exception as error:  # noqa: BLE001 - abort and probe failures
            self._finish(
                job, "cancelled" if job.cancel.is_set() else "failed", str(error)
            )
            self._report(f"job {job.id}: {job.state} ({job.error})")
            return
        document = build_frontier_document(spec, result, runner.history, self.workers)
        with self._lock:
            job.document = document
        self._finish(job, "done")
        self._report(
            f"job {job.id}: done ({len(runner.history)} probes, "
            f"{job.cached} cached)"
        )

    def _note_probe(self, job: Job, cached: bool) -> None:
        with self._lock:
            if cached:
                job.cached += 1
            else:
                job.executed += 1
            completed = job.cached + job.executed
        self._cells_finished.inc(
            kind=job.kind, outcome="cached" if cached else "executed"
        )
        self._emit(
            job, "probe", {"cached": cached, "completed": completed}
        )

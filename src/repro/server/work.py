"""The lease table behind the multi-host worker pull protocol.

One :class:`WorkQueue` holds one batch of cells awaiting execution — the
pending cells of a grid job, or one probe batch of a frontier search.  Two
kinds of consumers drain it concurrently:

* the *local* dispatcher, which takes chunks of items for the server's own
  worker pool (:meth:`WorkQueue.take_local`), and
* any number of *remote* ``repro-worker`` processes, which pull one item at
  a time over HTTP (:meth:`WorkQueue.lease`), heartbeat while executing,
  and push a result back (:meth:`WorkQueue.complete`).

Remote workers can die without warning — that is the whole point of the
protocol — so every lease carries a TTL.  A lease whose worker stops
heartbeating past its deadline is *expired* by :meth:`WorkQueue.reap` and
its item is requeued for someone else (at-least-once semantics; results
are deduplicated first-wins per item, and identical payloads replay for
free through the content-addressed result cache anyway).  An item whose
leases keep expiring is eventually given up on with a synthetic error
record, mirroring what :class:`~repro.experiments.runner.PoolExecutor`
does for repeatedly lost local tasks, so one black-hole worker cannot wedge
a job forever.

Everything is guarded by a single condition variable; completions and
requeues notify it, which is what lets the dispatcher sleep while remote
workers grind and wake the moment the batch finishes.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Lease", "WorkItem", "WorkQueue", "give_up_record"]

#: Lease lifecycle states.
LEASE_STATES = ("active", "expired", "completed")


@dataclass
class WorkItem:
    """One executable cell: a worker payload plus routing metadata.

    ``item_id`` is unique within its queue (cell ids may collide across
    probe batches, so the queue keys results on its own ids).  ``exec_kind``
    names the worker entry point — ``"sweep"`` for
    :func:`~repro.experiments.runner.execute_cell`, ``"scenario"`` for
    :func:`~repro.scenarios.runner.execute_scenario_cell` (searches probe
    scenario cells) — which is how a remote worker knows what to run.
    ``cache_key`` is the content address the result is stored under.
    """

    item_id: str
    exec_kind: str
    payload: Dict[str, Any]
    cache_key: str
    attempts: int = 0


@dataclass
class Lease:
    """One grant of one item to one remote worker, with a deadline."""

    lease_id: str
    item: WorkItem
    worker_id: str
    ttl_s: float
    granted_at: float
    expires_at: float
    state: str = "active"
    completed_at: Optional[float] = None


def give_up_record(item: WorkItem, reason: str) -> Dict[str, Any]:
    """The synthetic failed record for an item no worker could finish.

    Mirrors the shape :class:`~repro.experiments.runner.PoolExecutor`
    synthesises for repeatedly lost tasks, so artifact consumers see one
    failure vocabulary.
    """
    payload = item.payload
    return {
        "cell_id": payload.get("cell_id"),
        "n": payload.get("n"),
        "params": payload.get("params"),
        "seeds": payload.get("seeds"),
        "runs": [],
        "stats": None,
        "error": reason,
        "wall_time_s": None,
    }


class WorkQueue:
    """One batch of work items, drained by local chunks and remote leases.

    Args:
        items: The batch, in result order.
        ttl_s: Default lease time-to-live; heartbeats extend it by the
            lease's own TTL each time.
        max_attempts: How many times one item may be *leased* before an
            expiry gives up on it with a synthetic error record.
        clock: Monotonic time source (test seam).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        items: List[WorkItem],
        ttl_s: float = 60.0,
        max_attempts: int = 5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.ttl_s = ttl_s
        self.max_attempts = max_attempts
        self._clock = clock
        self._cond = threading.Condition()
        self._items = list(items)
        self._pending: List[WorkItem] = list(items)
        self._leases: Dict[str, Lease] = {}
        self._results: Dict[str, Dict[str, Any]] = {}
        self._local: set = set()
        self._aborted = False
        self.requeues = 0

    # ------------------------------------------------------------ inspection
    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def finished(self) -> bool:
        """All items resolved (every item has a result), or aborted."""
        with self._cond:
            return self._aborted or len(self._results) == len(self._items)

    def result(self, item_id: str) -> Optional[Dict[str, Any]]:
        with self._cond:
            return self._results.get(item_id)

    def results_in_order(self) -> List[Optional[Dict[str, Any]]]:
        """Per-item records in submission order (``None`` where unresolved)."""
        with self._cond:
            return [self._results.get(item.item_id) for item in self._items]

    def snapshot(self) -> Dict[str, Any]:
        """Live counts for metrics collectors and progress endpoints."""
        with self._cond:
            per_worker: Dict[str, int] = {}
            for lease in self._leases.values():
                if lease.state == "active":
                    per_worker[lease.worker_id] = (
                        per_worker.get(lease.worker_id, 0) + 1
                    )
            return {
                "items": len(self._items),
                "pending": len(self._pending),
                "local": len(self._local),
                "resolved": len(self._results),
                "active_leases": per_worker,
                "requeues": self.requeues,
            }

    # -------------------------------------------------------------- remote
    def lease(self, worker_id: str, ttl_s: Optional[float] = None) -> Optional[Lease]:
        """Grant the oldest pending item to ``worker_id``, or ``None``."""
        ttl = self.ttl_s if ttl_s is None else ttl_s
        with self._cond:
            if self._aborted or not self._pending:
                return None
            item = self._pending.pop(0)
            item.attempts += 1
            now = self._clock()
            lease = Lease(
                lease_id=f"lease-{next(self._ids):06d}-{uuid.uuid4().hex[:8]}",
                item=item,
                worker_id=worker_id,
                ttl_s=ttl,
                granted_at=now,
                expires_at=now + ttl,
            )
            self._leases[lease.lease_id] = lease
            return lease

    def peek(self, lease_id: str) -> Optional[Lease]:
        """The lease with this id, in whatever state, or ``None``."""
        with self._cond:
            return self._leases.get(lease_id)

    def heartbeat(self, lease_id: str) -> Optional[Lease]:
        """Extend an active lease's deadline; ``None`` if it is gone.

        A lease that already expired stays expired — its item may be in
        someone else's hands — but the original worker may still push its
        result (see :meth:`complete`), it just can no longer *reserve* the
        item.
        """
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None or lease.state != "active" or self._aborted:
                return None
            lease.expires_at = self._clock() + lease.ttl_s
            return lease

    def complete(
        self, lease_id: str, record: Dict[str, Any]
    ) -> Tuple[str, Optional[Lease]]:
        """Accept a remote result; returns ``(outcome, lease)``.

        Outcomes: ``"accepted"`` (first result for the item — even from an
        *expired* lease, as long as nobody else resolved the item first),
        ``"duplicate"`` (item already resolved; the record is discarded),
        ``"gone"`` (queue aborted), ``"unknown"`` (no such lease).
        First-wins is the whole dedup story: at-least-once execution plus
        idempotent, content-addressed records.
        """
        with self._cond:
            lease = self._leases.get(lease_id)
            if lease is None:
                return "unknown", None
            if self._aborted:
                return "gone", lease
            item = lease.item
            if lease.state != "completed":
                lease.state = "completed"
                lease.completed_at = self._clock()
            if item.item_id in self._results:
                return "duplicate", lease
            # The item may have been requeued after this lease expired and
            # be sitting in pending (or running locally): claim it back.
            self._pending = [p for p in self._pending if p.item_id != item.item_id]
            self._local.discard(item.item_id)
            self._results[item.item_id] = record
            self._cond.notify_all()
            return "accepted", lease

    # --------------------------------------------------------------- local
    def take_local(self, max_items: int) -> List[WorkItem]:
        """Reserve up to ``max_items`` pending items for the local pool."""
        with self._cond:
            if self._aborted:
                return []
            taken = self._pending[:max_items]
            del self._pending[: len(taken)]
            for item in taken:
                self._local.add(item.item_id)
            return taken

    def resolve_local(self, item_id: str, record: Dict[str, Any]) -> bool:
        """Record a locally computed result; False if already resolved."""
        with self._cond:
            self._local.discard(item_id)
            if item_id in self._results:
                return False
            self._results[item_id] = record
            self._cond.notify_all()
            return True

    # ------------------------------------------------------------ lifecycle
    def reap(self) -> Tuple[List[Lease], List[Tuple[WorkItem, Dict[str, Any]]]]:
        """Expire overdue leases; requeue their items or give up.

        Returns ``(expired, gave_up)`` where ``gave_up`` pairs each
        abandoned item with the synthetic error record just recorded for
        it (the caller reports those like any other completion).
        """
        now = self._clock()
        expired: List[Lease] = []
        gave_up: List[Tuple[WorkItem, Dict[str, Any]]] = []
        with self._cond:
            if self._aborted:
                return [], []
            for lease in self._leases.values():
                if lease.state != "active" or now < lease.expires_at:
                    continue
                lease.state = "expired"
                expired.append(lease)
                item = lease.item
                unresolved = (
                    item.item_id not in self._results
                    and item.item_id not in self._local
                    and all(p.item_id != item.item_id for p in self._pending)
                )
                if not unresolved:
                    continue
                if item.attempts >= self.max_attempts:
                    record = give_up_record(
                        item,
                        f"lease expired {item.attempts} time(s) "
                        f"(worker {lease.worker_id!r} lost); giving up",
                    )
                    self._results[item.item_id] = record
                    gave_up.append((item, record))
                else:
                    self._pending.append(item)
                    self.requeues += 1
            if expired:
                self._cond.notify_all()
        return expired, gave_up

    def abort(self) -> None:
        """Stop handing out work; late results are answered ``"gone"``."""
        with self._cond:
            self._aborted = True
            self._pending = []
            self._cond.notify_all()

    def wait(self, timeout_s: float) -> None:
        """Block until something changes (completion/requeue/abort)."""
        with self._cond:
            if self._aborted or len(self._results) == len(self._items):
                return
            self._cond.wait(timeout_s)

"""Simulation-as-a-service: an async job server over the experiment engine.

The batch CLIs (``repro-sweep``, ``repro-chaos``, ``repro-chaos search``)
run one spec per process.  This package turns the same machinery into a
long-lived HTTP service: ``repro-serve`` accepts any of the three spec
kinds as JSON jobs, schedules their cells on one shared spawn-safe worker
pool, deduplicates identical cells across jobs through a content-addressed
result cache, and serves the finished ``SWEEP_``/``SCENARIO_``/``FRONTIER_``
documents back over HTTP.

Layers (stdlib only — no new required dependencies):

* :mod:`repro.server.cache` — :class:`ResultCache`, keyed on the canonical
  cell payload JSON (which embeds the derived seeds) plus the code
  fingerprint, and :func:`stable_document` for artifact comparison.
* :mod:`repro.server.jobs` — :class:`JobManager`: FIFO queue, bounded
  in-flight cell scheduling, cancellation, per-cell progress.
* :mod:`repro.server.app` — the ``http.server`` JSON API.
* :mod:`repro.server.client` — :class:`ReproClient`, a thin stdlib HTTP
  client for tests, scripts, and the CI smoke.
* :mod:`repro.server.cli` — the ``repro-serve`` console entry point.
"""

from .cache import ResultCache, cache_key, stable_document
from .client import ReproClient, ServerError
from .jobs import JOB_KINDS, JobManager, JobNotReady, UnknownJob

__all__ = [
    "JOB_KINDS",
    "JobManager",
    "JobNotReady",
    "ReproClient",
    "ResultCache",
    "ServerError",
    "UnknownJob",
    "cache_key",
    "stable_document",
]

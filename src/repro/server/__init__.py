"""Simulation-as-a-service: an async job server over the experiment engine.

The batch CLIs (``repro-sweep``, ``repro-chaos``, ``repro-chaos search``)
run one spec per process.  This package turns the same machinery into a
long-lived HTTP service: ``repro-serve`` accepts any of the three spec
kinds as JSON jobs, schedules their cells on one shared spawn-safe worker
pool, deduplicates identical cells across jobs through a content-addressed
result cache, and serves the finished ``SWEEP_``/``SCENARIO_``/``FRONTIER_``
documents back over HTTP.

The service also scales past one host: any number of ``repro-worker``
processes can attach over the same HTTP API and pull cells through a
leased work queue (TTL + heartbeat, at-least-once with first-result-wins
dedup), and the result cache can persist to a ``--cache-dir`` of
``<key>.json`` files so a restarted server still serves identical
resubmissions from disk.

Layers (stdlib only — no new required dependencies):

* :mod:`repro.server.cache` — :class:`ResultCache`, keyed on the canonical
  cell payload JSON (which embeds the derived seeds) plus the code
  fingerprint, optionally persistent on disk (atomic writes, quarantine
  for corrupt entries, LRU bytes budget), and :func:`stable_document` for
  artifact comparison.
* :mod:`repro.server.work` — :class:`WorkQueue`, the lease table one
  running batch exposes to remote workers.
* :mod:`repro.server.jobs` — :class:`JobManager`: FIFO queue, mixed
  local/remote cell scheduling, cancellation, per-cell progress.
* :mod:`repro.server.app` — the ``http.server`` JSON API, including the
  ``/work`` pull-protocol routes.
* :mod:`repro.server.client` — :class:`ReproClient`, a thin stdlib HTTP
  client for tests, scripts, workers, and the CI smoke.
* :mod:`repro.server.cli` — the ``repro-serve`` console entry point.
* :mod:`repro.server.worker` — the ``repro-worker`` console entry point
  (lease → execute → push loop).
"""

# NOTE: repro.server.worker is deliberately NOT imported here — the package
# must stay importable without it so ``python -m repro.server.worker`` does
# not trip runpy's already-in-sys.modules warning.  Import Worker from
# :mod:`repro.server.worker` directly.
from .cache import ResultCache, cache_key, stable_document
from .client import ReproClient, ServerError
from .jobs import JOB_KINDS, JobManager, JobNotReady, UnknownJob
from .work import WorkQueue

__all__ = [
    "JOB_KINDS",
    "JobManager",
    "JobNotReady",
    "ReproClient",
    "ResultCache",
    "ServerError",
    "UnknownJob",
    "WorkQueue",
    "cache_key",
    "stable_document",
]

"""A thin stdlib HTTP client for the job server.

:class:`ReproClient` wraps :mod:`urllib.request` so tests, scripts, and the
CI smoke can drive ``repro-serve`` without any HTTP dependency.  Error
responses (the server's JSON ``{"error": ...}`` bodies) surface as
:class:`ServerError` with the HTTP status attached, so callers can branch
on 409 (artifact not ready) versus 400/404 (caller bugs).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = ["ReproClient", "ServerError", "parse_sse"]

#: Job states that will never change again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServerError(Exception):
    """A non-2xx response from the job server.

    Attributes:
        status: The HTTP status code (0 when the server was unreachable).
        message: The server's ``error`` message, or the transport failure.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


def parse_sse(lines: Iterable[bytes]) -> Iterator[Dict[str, Any]]:
    """Parse a ``text/event-stream`` byte-line iterable into event dicts.

    Yields ``{"id": str | None, "event": str, "data": parsed JSON}`` per
    frame (blank-line terminated).  Comment lines (``:`` prefixed
    keepalives) are skipped; multi-line ``data:`` fields are joined with
    newlines before JSON decoding, per the SSE specification.
    """
    event_id: Optional[str] = None
    event: Optional[str] = None
    data_lines: List[str] = []
    for raw in lines:
        line = raw.decode("utf-8").rstrip("\r\n")
        if not line:
            if data_lines or event is not None or event_id is not None:
                data = json.loads("\n".join(data_lines)) if data_lines else None
                yield {"id": event_id, "event": event or "message", "data": data}
            event_id = None
            event = None
            data_lines = []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "id":
            event_id = value
        elif field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)


class ReproClient:
    """Talk to one ``repro-serve`` instance.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8765"`` (trailing slash ignored).
        timeout_s: Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------ transport
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                raw = response.read()
                if not raw:  # 204 No Content (e.g. nothing leasable)
                    return {}
                return json.loads(raw.decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or error.reason
            raise ServerError(error.code, str(message)) from None
        except urllib.error.URLError as error:
            raise ServerError(0, f"server unreachable: {error.reason}") from None

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        request = urllib.request.Request(
            f"{self.base_url}/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServerError(
                error.code, error.read().decode("utf-8", errors="replace")
            ) from None
        except urllib.error.URLError as error:
            raise ServerError(0, f"server unreachable: {error.reason}") from None

    def cache_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/cache/stats")

    def submit(self, kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns its initial status (including ``job_id``)."""
        return self._request("POST", "/jobs", {"kind": kind, "spec": spec})

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def artifact(self, job_id: str) -> Dict[str, Any]:
        """The finished document; raises :class:`ServerError` 409 until done."""
        return self._request("GET", f"/jobs/{job_id}/artifact")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    # ------------------------------------------------- worker pull protocol
    def lease(self, worker_id: str) -> Optional[Dict[str, Any]]:
        """``POST /work/lease``: one leased cell, or ``None`` (nothing now).

        The lease dict carries ``lease_id``, the executor ``kind``, the
        canonical worker ``payload``, and ``ttl_s`` — everything a
        ``repro-worker`` needs to execute the cell and push its result.
        """
        lease = self._request("POST", "/work/lease", {"worker": worker_id})
        return lease if lease.get("lease_id") else None

    def heartbeat(self, lease_id: str) -> Dict[str, Any]:
        """Extend a lease's TTL; raises :class:`ServerError` 404 once gone."""
        return self._request("POST", f"/work/{lease_id}/heartbeat", {})

    def push_result(
        self, lease_id: str, record: Dict[str, Any]
    ) -> Dict[str, Any]:
        """``POST /work/<lease>/result``: push one executed cell record.

        The response's ``outcome`` is ``accepted`` for the first result,
        ``duplicate`` when another worker (or a local slot) got there
        first, ``gone`` once the batch ended — all fine for the worker,
        which just moves on to its next lease.
        """
        return self._request("POST", f"/work/{lease_id}/result", record)

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`ServerError` (status 0) if ``timeout_s`` elapses
        first — the job keeps running server-side.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServerError(
                    0,
                    f"job {job_id!r} still {status['state']} after {timeout_s:g}s",
                )
            time.sleep(poll_s)

    def watch(
        self,
        job_id: str,
        reconnect: bool = True,
        max_reconnects: int = 20,
    ) -> Iterator[Dict[str, Any]]:
        """Stream the job's lifecycle events from ``GET /jobs/<id>/events``.

        Yields ``{"id", "event", "data"}`` dicts in sequence order and
        returns after the terminal ``end`` event.  The job's event log is
        replayable server-side, so watching a finished job yields its full
        history.  On a dropped connection (or a server close without
        ``end``) the stream reconnects with ``Last-Event-ID`` and resumes
        where it left off; after ``max_reconnects`` consecutive failures a
        :class:`ServerError` (status 0) is raised.  HTTP errors (e.g. 404
        for an unknown job) are permanent and raised immediately.
        """
        last_id: Optional[str] = None
        failures = 0
        while True:
            headers = {"Accept": "text/event-stream"}
            if last_id is not None:
                headers["Last-Event-ID"] = last_id
            request = urllib.request.Request(
                f"{self.base_url}/jobs/{job_id}/events", headers=headers
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout_s
                ) as response:
                    for record in parse_sse(response):
                        if record["id"] is not None:
                            last_id = record["id"]
                        failures = 0
                        yield record
                        if record["event"] == "end":
                            return
            except urllib.error.HTTPError as error:
                raw = error.read().decode("utf-8", errors="replace")
                try:
                    message = json.loads(raw).get("error", raw)
                except json.JSONDecodeError:
                    message = raw or error.reason
                raise ServerError(error.code, str(message)) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
                failures += 1
                if not reconnect or failures > max_reconnects:
                    raise ServerError(
                        0, f"event stream for {job_id!r} dropped: {error}"
                    ) from None
                time.sleep(min(1.0, 0.05 * failures))
                continue
            # Clean close without the terminal event (server restart or
            # proxy timeout): resume from the last seen sequence number.
            failures += 1
            if not reconnect or failures > max_reconnects:
                raise ServerError(
                    0, f"event stream for {job_id!r} closed before its end event"
                )
            time.sleep(min(1.0, 0.05 * failures))

    def run(
        self,
        kind: str,
        spec: Dict[str, Any],
        timeout_s: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit, wait, and return the artifact (convenience one-shot)."""
        job_id = self.submit(kind, spec)["job_id"]
        status = self.wait(job_id, timeout_s=timeout_s)
        if status["state"] != "done":
            raise ServerError(
                0, f"job {job_id!r} finished {status['state']}: {status['error']}"
            )
        return self.artifact(job_id)

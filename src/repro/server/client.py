"""A thin stdlib HTTP client for the job server.

:class:`ReproClient` wraps :mod:`urllib.request` so tests, scripts, and the
CI smoke can drive ``repro-serve`` without any HTTP dependency.  Error
responses (the server's JSON ``{"error": ...}`` bodies) surface as
:class:`ServerError` with the HTTP status attached, so callers can branch
on 409 (artifact not ready) versus 400/404 (caller bugs).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

__all__ = ["ReproClient", "ServerError"]

#: Job states that will never change again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServerError(Exception):
    """A non-2xx response from the job server.

    Attributes:
        status: The HTTP status code (0 when the server was unreachable).
        message: The server's ``error`` message, or the transport failure.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}" if status else message)
        self.status = status
        self.message = message


class ReproClient:
    """Talk to one ``repro-serve`` instance.

    Args:
        base_url: e.g. ``"http://127.0.0.1:8765"`` (trailing slash ignored).
        timeout_s: Per-request socket timeout.
    """

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------ transport
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw or error.reason
            raise ServerError(error.code, str(message)) from None
        except urllib.error.URLError as error:
            raise ServerError(0, f"server unreachable: {error.reason}") from None

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def cache_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/cache/stats")

    def submit(self, kind: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job; returns its initial status (including ``job_id``)."""
        return self._request("POST", "/jobs", {"kind": kind, "spec": spec})

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def artifact(self, job_id: str) -> Dict[str, Any]:
        """The finished document; raises :class:`ServerError` 409 until done."""
        return self._request("GET", f"/jobs/{job_id}/artifact")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`ServerError` (status 0) if ``timeout_s`` elapses
        first — the job keeps running server-side.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServerError(
                    0,
                    f"job {job_id!r} still {status['state']} after {timeout_s:g}s",
                )
            time.sleep(poll_s)

    def run(
        self,
        kind: str,
        spec: Dict[str, Any],
        timeout_s: float = 300.0,
    ) -> Dict[str, Any]:
        """Submit, wait, and return the artifact (convenience one-shot)."""
        job_id = self.submit(kind, spec)["job_id"]
        status = self.wait(job_id, timeout_s=timeout_s)
        if status["state"] != "done":
            raise ServerError(
                0, f"job {job_id!r} finished {status['state']}: {status['error']}"
            )
        return self.artifact(job_id)
